//! Umbrella crate for the checkpoint-alteration soft-error study.
//!
//! Re-exports the full stack so examples and downstream users can depend
//! on one crate. See README.md for the tour and DESIGN.md for the system
//! inventory.

pub use sefi_core as core;
pub use sefi_data as data;
pub use sefi_experiments as experiments;
pub use sefi_float as float;
pub use sefi_frameworks as frameworks;
pub use sefi_hdf5 as hdf5;
pub use sefi_models as models;
pub use sefi_nn as nn;
pub use sefi_rng as rng;
pub use sefi_tensor as tensor;
