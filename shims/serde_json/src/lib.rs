//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: [`to_string`], [`to_string_pretty`], and
//! [`from_str`], all working through the `serde` shim's content tree.
//!
//! Output conventions match real `serde_json` where the repo depends on
//! them: compact form uses `"key":value` with no spaces, pretty form uses
//! two-space indentation, non-finite floats serialize as `null`, and floats
//! are printed in Rust's shortest round-trip form (always with a decimal
//! point or exponent, so integers and floats stay distinguishable). Parsing
//! `"1e3"`-style exponent literals, escape sequences, and `\uXXXX` (with
//! surrogate pairs) is supported; input depth is capped to keep recursive
//! descent safe on adversarial input.

use serde::{Content, Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Print a float in shortest round-trip form; non-finite values become null.
/// `{:?}` keeps a `.0` on integral floats, so a value written as a float
/// parses back as a float.
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a content tree.
fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.seq(depth),
            Some(b'{') => self.map(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("unpaired surrogate in string"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::msg("invalid low surrogate in string"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(Error::msg(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_matches_serde_json_conventions() {
        let c = Content::Map(vec![
            ("a".into(), Content::I64(1)),
            ("b".into(), Content::Seq(vec![Content::F64(1.5), Content::Null])),
            ("c".into(), Content::Str("x\"y".into())),
        ]);
        let mut out = String::new();
        write_compact(&c, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[1.5,null],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0, -2.5e-8, f64::MAX, f64::MIN_POSITIVE, 1234567890.123] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v: String = from_str(r#""a\n\tA😀b""#).unwrap();
        assert_eq!(v, "a\n\tA\u{1F600}b");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("1 x").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_printer_indents_with_two_spaces() {
        let c = Content::Map(vec![("k".into(), Content::Seq(vec![Content::I64(1)]))]);
        let mut out = String::new();
        write_pretty(&c, 0, &mut out);
        assert_eq!(out, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let s = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str::<Content>(&s).is_err());
    }
}
