//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! groups with `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! and benchers with `iter` / `iter_batched`.
//!
//! Measurement is deliberately simple: a short warm-up sizes the iteration
//! batch, then `sample_size` wall-clock samples are collected and the mean /
//! min / max per-iteration times are printed (plus throughput when
//! configured). There is no statistical outlier analysis, HTML report, or
//! baseline comparison. When invoked with `--test` (as `cargo test` does for
//! bench targets) every benchmark body runs exactly once so the target
//! doubles as a smoke test; any other non-flag CLI argument filters
//! benchmark IDs by substring, mirroring `cargo bench <filter>`.

use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function` or `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after a slash.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units for reporting a rate alongside per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants the
/// same (setup runs untimed before every routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every single call.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                // Flags cargo/libtest pass through that we can ignore.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, smoke, sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        run_one(&id, self.filter.as_deref(), self.smoke, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Report a throughput rate for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(
            &id,
            self.criterion.filter.as_deref(),
            self.criterion.smoke,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark body to time its routine.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    /// (mean, min, max) nanoseconds per iteration, filled by `iter*`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            return;
        }
        // Warm up and size the batch so one sample is >= ~5ms.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((5e6 / per_iter).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.record(&samples);
    }

    /// Time a routine with untimed per-call setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            std::hint::black_box(routine(setup()));
            return;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        self.record(&samples);
    }

    fn record(&mut self, samples: &[f64]) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.result = Some((mean, min, max));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    smoke: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher { smoke, sample_size, result: None };
    f(&mut bencher);
    if smoke {
        println!("{id}: ok (smoke)");
        return;
    }
    match bencher.result {
        Some((mean, min, max)) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / (mean * 1e-9)),
                Throughput::Bytes(n) => {
                    format!("  {:.1} MiB/s", n as f64 / (mean * 1e-9) / (1024.0 * 1024.0))
                }
            });
            println!(
                "{id}: mean {}  [min {}, max {}]{}",
                fmt_ns(mean),
                fmt_ns(min),
                fmt_ns(max),
                rate.unwrap_or_default()
            );
        }
        None => println!("{id}: no measurement recorded"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", 8).id, "encode/8");
        assert_eq!(BenchmarkId::from_parameter("1e-3").id, "1e-3");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { filter: None, smoke: true, sample_size: 10 };
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nope".into()), smoke: true, sample_size: 10 };
        let mut runs = 0;
        let mut g = c.benchmark_group("grp");
        g.bench_function("probe", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 0);
    }
}
