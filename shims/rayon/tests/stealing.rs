//! Order preservation under work stealing.
//!
//! The shim claims items dynamically (grain 1) from a shared cursor, so
//! which worker computes which item — and in what order workers finish —
//! depends on timing. These tests force workers to finish out of input
//! order (early items sleep, late items return instantly) and assert the
//! assembled results still match sequential order exactly.
//!
//! This file is an integration test so it owns its process: it sets
//! `RAYON_NUM_THREADS` (the shim reads it per dispatch) without racing the
//! in-crate unit tests, and a forced thread count is required at all —
//! on a single-core host the dispatcher would otherwise take the
//! sequential path and never steal.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let r = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    r
}

#[test]
fn results_stay_in_input_order_when_workers_finish_out_of_order() {
    // Item 0 is by far the slowest: with static chunking the first worker
    // would hold a whole prefix hostage; with stealing, workers race past
    // it and finish items in a scrambled temporal order. The output must
    // be positionally ordered regardless.
    let completion: Vec<usize> = Vec::new();
    let completion = std::sync::Mutex::new(completion);
    let out: Vec<usize> = with_threads(4, || {
        (0..32usize)
            .into_par_iter()
            .map(|i| {
                if i < 4 {
                    std::thread::sleep(Duration::from_millis(30 - 5 * i as u64));
                }
                completion.lock().unwrap().push(i);
                i * 10
            })
            .collect()
    });
    assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    let completed = completion.into_inner().unwrap();
    assert_eq!(completed.len(), 32);
    // Sanity that stealing actually happened: at 4 threads with item 0
    // sleeping 30ms, some later item must have completed before it.
    assert_ne!(completed, (0..32).collect::<Vec<_>>(), "no out-of-order completion observed");
}

#[test]
fn every_item_is_claimed_exactly_once() {
    let claims = AtomicUsize::new(0);
    let out: Vec<usize> = with_threads(8, || {
        (0..1000usize)
            .into_par_iter()
            .map(|i| {
                claims.fetch_add(1, Ordering::Relaxed);
                i + 1
            })
            .collect()
    });
    assert_eq!(claims.load(Ordering::Relaxed), 1000);
    assert_eq!(out, (1..=1000).collect::<Vec<_>>());
}

#[test]
fn output_is_identical_across_thread_counts() {
    let run = || -> Vec<u64> {
        (0..257u64).into_par_iter().map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7)).collect()
    };
    let reference = with_threads(1, run);
    for threads in [2, 3, 8] {
        assert_eq!(with_threads(threads, run), reference, "threads={threads}");
    }
}

#[test]
fn panicking_item_propagates_after_drain() {
    let result = with_threads(4, || {
        std::panic::catch_unwind(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    if i == 5 {
                        panic!("boom");
                    }
                    i
                })
                .collect::<Vec<_>>()
        })
    });
    assert!(result.is_err());
}
