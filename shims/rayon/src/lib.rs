//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses: `into_par_iter()` on ranges and vectors,
//! `par_chunks_mut` on slices, `current_num_threads`, and the
//! `map`/`enumerate`/`zip`/`for_each`/`sum`/`collect` combinators. Work is
//! fanned out over `RAYON_NUM_THREADS` (falling back to
//! `std::thread::available_parallelism()`) scoped threads; ordering of
//! results matches the sequential iteration order, exactly as rayon's
//! indexed parallel iterators guarantee.
//!
//! # Dynamic chunking (work stealing)
//!
//! Items are *not* pre-partitioned into one static chunk per worker.
//! Instead every worker claims the next unclaimed index from a shared
//! atomic cursor (grain size 1) and writes its result into that index's
//! dedicated output slot. A worker that finishes a cheap item immediately
//! claims the next one, so heterogeneous workloads — one item taking 10×
//! the median is the norm for fault-injection trials, where a collapsed
//! training returns in a fraction of a clean resume's time — keep every
//! thread busy until the input is exhausted, instead of stalling the
//! dispatch on the worker that happened to receive the expensive chunk.
//! Because each claimed index owns exactly one input and one output slot,
//! results are assembled in input order no matter which worker computed
//! them or in what order workers finished: **order preservation is
//! positional, not temporal**, so callers observe byte-identical output at
//! any thread count (see `tests/stealing.rs`).
//!
//! `map` is eager (it runs the closure in parallel immediately), which is
//! observationally equivalent for the pipeline shapes used in this repo
//! (`map` directly followed by a terminal `sum`/`collect`). Nested
//! parallelism executes sequentially inside a worker instead of spawning
//! a second tier of threads. If a worker's closure panics, the remaining
//! items still drain (matching rayon, which does not cancel siblings
//! mid-flight) and the first panic payload is re-raised on the caller.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Worker count: `RAYON_NUM_THREADS` if set to a positive integer, else the
/// machine's available parallelism. Real rayon reads the variable once at
/// global-pool initialization; reading it per dispatch is an intentional
/// superset that lets determinism tests vary the thread count within one
/// process (results must be identical either way).
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Raw slot pointer smuggled into worker threads. Safety rests on the
/// claim protocol in [`execute`]: the atomic cursor hands each index to
/// exactly one worker, so no two threads ever touch the same slot.
struct SlotPtr<V>(*mut Option<V>);

impl<V> Clone for SlotPtr<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for SlotPtr<V> {}
// SAFETY: the pointees are only accessed at indices claimed via the
// cursor's fetch_add, which yields each index to exactly one worker; the
// scope guarantees the backing vectors outlive every worker.
unsafe impl<V: Send> Send for SlotPtr<V> {}
unsafe impl<V: Send> Sync for SlotPtr<V> {}

/// Run `f` over `items` on a scoped thread pool with dynamic (grain-1)
/// chunking, preserving input order positionally: result `i` always lands
/// in output slot `i`, regardless of which worker computed it.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let mut input: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut output: Vec<Option<R>> = Vec::with_capacity(n);
    output.resize_with(n, || None);
    let cursor = &AtomicUsize::new(0);
    let in_ptr = SlotPtr(input.as_mut_ptr());
    let out_ptr = SlotPtr(output.as_mut_ptr());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    // Rebind the wrappers whole: edition-2021 disjoint
                    // capture would otherwise capture only the raw-pointer
                    // fields, which are not Send on their own.
                    let (in_ptr, out_ptr) = (in_ptr, out_ptr);
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // SAFETY: this worker is the unique claimant of
                        // index i (fetch_add returns each value once), so
                        // it has exclusive access to both slots.
                        let item = unsafe { (*in_ptr.0.add(i)).take() }
                            .expect("claimed input slot is populated");
                        let result = f(item);
                        unsafe { *out_ptr.0.add(i) = Some(result) };
                    }
                })
            })
            .collect();
        // Join everything before re-raising so no worker outlives the
        // borrow of input/output, even when one panicked early.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    output.into_iter().map(|slot| slot.expect("every index was claimed and computed")).collect()
}

/// An eager "parallel iterator": a materialized, ordered batch of items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: execute(self.items, f) }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Pair items with another equally sized parallel batch (rayon's
    /// `IndexedParallelIterator::zip`). Used to write two disjoint output
    /// buffers (e.g. maxpool values and argmax indices) from one dispatch.
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        assert_eq!(
            self.items.len(),
            other.items.len(),
            "zip requires equal-length parallel iterators"
        );
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        execute(self.items, f);
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Collect the items in order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize the source as a parallel batch.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel mutable-chunk access on slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// Parallel shared-chunk access on slices (rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Split into shared chunks of `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// The rayon prelude: the traits that put `into_par_iter` and
/// `par_chunks_mut` in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let par: usize = (0..100usize).into_par_iter().map(|i| i * i).sum();
        let seq: usize = (0..100usize).map(|i| i * i).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..37usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v, (1..38).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_sees_every_element_once() {
        let mut data = [0u32; 25];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&v| v >= 1));
        assert_eq!(data[0], 1);
        assert_eq!(data[24], 7);
    }

    #[test]
    fn zip_pairs_in_order() {
        let mut a = [0u32; 10];
        let mut b = [0u32; 10];
        a.par_chunks_mut(3).zip(b.par_chunks_mut(3)).enumerate().for_each(|(i, (ca, cb))| {
            for v in ca.iter_mut() {
                *v = i as u32;
            }
            for v in cb.iter_mut() {
                *v = 10 + i as u32;
            }
        });
        assert_eq!(a[0], 0);
        assert_eq!(a[9], 3);
        assert_eq!(b[0], 10);
        assert_eq!(b[9], 13);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn zip_rejects_length_mismatch() {
        let mut a = [0u32; 10];
        let mut b = [0u32; 7];
        a.par_chunks_mut(3).zip(b.par_chunks_mut(3)).for_each(|_| {});
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let total: usize = (0..8usize)
            .into_par_iter()
            .map(|_| (0..8usize).into_par_iter().map(|j| j).sum::<usize>())
            .sum();
        assert_eq!(total, 8 * 28);
    }
}
