//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`Strategy`] trait
//! with `prop_map`, [`any`] for primitives, range and string-pattern
//! strategies, tuple composition, `prop::collection::{vec, hash_set}`,
//! `prop::array::uniform4`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for this environment:
//! * **No shrinking.** A failing case reports its inputs' debug strings via
//!   the assertion message and the (deterministic) case number instead of a
//!   minimized counterexample.
//! * **Deterministic seeding.** Each test's RNG stream is derived from the
//!   test name, so runs are reproducible without a persistence file.
//! * String strategies support the regex subset the repo uses: literal
//!   characters, `.`, character classes like `[a-z0-9_]`, and `{m}` /
//!   `{m,n}` repetition.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, statistically solid, and fully deterministic.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a string, for per-test seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Core trait + runner
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration (`cases` is the only knob this repo uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drive one property: run case closures until `config.cases` succeed.
/// Called by the `proptest!` macro; not part of real proptest's public API.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name) ^ 0x5EF1_2021_D00D_F00D;
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let mut attempt = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::new(base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > (config.cases as u64) * 16 + 256 {
                    panic!("{name}: too many prop_assume! rejections ({rejects})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed on attempt {attempt}: {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a default "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias 1-in-8 draws toward the special values property tests care
        // about; otherwise uniform over bit patterns (covers NaN/Inf/
        // subnormals naturally, if rarely).
        if rng.below(8) == 0 {
            const SPECIALS: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MAX,
                5e-324, // smallest positive subnormal
            ];
            let idx = rng.below(SPECIALS.len() as u64 + 1) as usize;
            if idx == SPECIALS.len() {
                f64::NAN
            } else {
                SPECIALS[idx]
            }
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// A strategy that always yields a clone of its value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between several strategies with the same value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from boxed options; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Uniform choice between strategies (no weights in the shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($option)),+])
    };
}

// ---------------------------------------------------------------------------
// Collections / arrays / strings
// ---------------------------------------------------------------------------

/// A size specification: an exact length or a half-open range.
#[derive(Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

/// Conversion into [`SizeRange`] (`usize` or `Range<usize>`).
pub trait IntoSizeRange {
    /// Convert.
    fn into_size_range(self) -> SizeRange;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> SizeRange {
        SizeRange { lo: self, hi: self + 1 }
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> SizeRange {
        assert!(self.start < self.end, "empty size range");
        SizeRange { lo: self.start, hi: self.end }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// The `prop::` namespace (collection, array).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<T>` with element strategy and size spec.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy { element, size: size.into_size_range() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `HashSet<T>`.
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::hash_set(element, size)`.
        pub fn hash_set<S>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size: size.into_size_range() }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = self.size.sample(rng);
                let mut set = HashSet::new();
                // Duplicates shrink the set; bound the retries so degenerate
                // element strategies (tiny domains) still terminate.
                for _ in 0..(target * 8 + 8) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.sample(rng));
                }
                set
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::*;

        /// Strategy for `[T; 4]` from one element strategy.
        pub struct Uniform4<S>(S);

        /// `prop::array::uniform4(element)`.
        pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
            Uniform4(element)
        }

        impl<S: Strategy> Strategy for Uniform4<S> {
            type Value = [S::Value; 4];
            fn sample(&self, rng: &mut TestRng) -> [S::Value; 4] {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }
}

/// One element of a compiled string pattern.
enum PatternPart {
    /// `.` — any printable ASCII character.
    AnyChar,
    /// A character class, expanded to its members.
    Class(Vec<char>),
}

struct CompiledPattern {
    parts: Vec<(PatternPart, usize, usize)>, // (part, min, max) inclusive
}

/// Compile the regex subset used by the repo's strategies: literals, `.`,
/// `[...]` classes with ranges, and `{m}` / `{m,n}` repetition.
fn compile_pattern(pattern: &str) -> CompiledPattern {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let part = match chars[i] {
            '.' => {
                i += 1;
                PatternPart::AnyChar
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range in pattern `{pattern}`");
                        for c in lo..=hi {
                            members.push(c);
                        }
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // consume ']'
                PatternPart::Class(members)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in pattern `{pattern}`");
                let c = chars[i];
                i += 1;
                PatternPart::Class(vec![c])
            }
            c => {
                i += 1;
                PatternPart::Class(vec![c])
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push((part, min, max));
    }
    CompiledPattern { parts }
}

impl CompiledPattern {
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (part, min, max) in &self.parts {
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match part {
                    PatternPart::AnyChar => {
                        // Printable ASCII, space through tilde.
                        out.push((b' ' + rng.below(95) as u8) as char);
                    }
                    PatternPart::Class(members) => {
                        assert!(!members.is_empty(), "empty character class");
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        compile_pattern(self).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert a boolean property inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(),
                        format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                        stringify!($left), stringify!($right), file!(), line!(), l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}` at {}:{}: {}",
                        stringify!($left), stringify!($right), file!(), line!(),
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Reject the current inputs, drawing a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors proptest's surface syntax:
/// an optional `#![proptest_config(...)]` header, then `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                let case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                case()
            });
        }
    )*};
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let b = (1u8..=255).sample(&mut rng);
            assert!(b >= 1);
        }
    }

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{1,8}".sample(&mut rng);
            assert!((2..=9).contains(&s.len()), "{s}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let bits = "[01]{1,16}".sample(&mut rng);
            assert!((1..=16).contains(&bits.len()));
            assert!(bits.chars().all(|c| c == '0' || c == '1'));

            let free = ".{0,20}".sample(&mut rng);
            assert!(free.len() <= 20);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = crate::TestRng::new(13);
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut rng = crate::TestRng::new(99);
            (0..10).map(|_| any::<u64>().sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, assume, and assertions all compose.
        #[test]
        fn macro_end_to_end(a in 0u64..100, b in 0u64..100, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_ne!(a, b);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
