//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a compact replacement: instead of serde's visitor-based
//! `Serializer`/`Deserializer` machinery, types convert to and from a
//! [`Content`] tree (the same data model `serde_json::Value` exposes), and
//! the companion `serde_json` shim renders that tree as JSON. The derive
//! macros (`#[derive(Serialize, Deserialize)]`) are provided by the
//! `serde_derive` proc-macro shim and generate the externally-tagged enum
//! representation and field-name struct maps that real serde produces, so
//! the on-disk JSON stays wire-compatible for the shapes this repo uses.
//!
//! Divergences (accepted for the offline build):
//! * Non-finite floats serialize as `null` (matching `serde_json`) and
//!   deserialize back as `NaN`; `Option<f64>` therefore cannot distinguish
//!   `Some(NaN)` from `None` after a round trip.
//! * No `#[serde(...)]` attributes, generics, or borrowed deserialization.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (order preserved for stable output).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// "expected X while deserializing Y" helper.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Convert to a content tree.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Convert from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up and deserialize a struct field by name.
pub fn field<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        // Real serde deserializes a missing `Option<T>` field as `None`;
        // feeding `Null` reproduces that (and schema evolution stays
        // possible: new optional fields read cleanly from old JSON) while
        // every non-nullable type still gets the missing-field error.
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError(format!("missing field `{name}` in {context}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::msg("unsigned value overflows signed target"))?,
                    ref other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(v) => Content::I64(v),
                    Err(_) => Content::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match *c {
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::msg("negative value for unsigned target"))?,
                    Content::U64(v) => v,
                    ref other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // Non-finite floats are serialized as null; restore them as NaN.
            Content::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::expected("2-element sequence", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::expected("map", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::expected("map", other.kind())),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
        assert_eq!(String::from_content(&"x".to_content()).unwrap(), "x");
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_content(&vec![1u8, 2].to_content()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn big_u64_uses_unsigned_content() {
        let c = u64::MAX.to_content();
        assert_eq!(c, Content::U64(u64::MAX));
        assert_eq!(u64::from_content(&c).unwrap(), u64::MAX);
        assert!(i64::from_content(&c).is_err());
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(Vec::<u8>::from_content(&Content::I64(5)).is_err());
        assert!(bool::from_content(&Content::Str("true".into())).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
