//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses. Semantics match
//! `parking_lot` where the repo relies on them: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`), and a poisoned std lock is
//! recovered rather than propagated, mirroring `parking_lot`'s lack of
//! poisoning.

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (no poisoning, guard-returning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with guard-returning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_recovers() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
