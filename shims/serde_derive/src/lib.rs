//! Offline stand-in for the `serde_derive` crate.
//!
//! The build environment has no access to crates.io (so no `syn`/`quote`);
//! these derives parse the item's raw [`TokenStream`] directly and emit the
//! impls as formatted source strings. Supported item shapes — the ones this
//! workspace uses — are named-field structs and enums whose variants are
//! unit, newtype/tuple, or struct-like. Generics, tuple structs, and
//! `#[serde(...)]` customization attributes are rejected with a
//! `compile_error!` rather than silently mis-handled.
//!
//! The generated representation matches real serde's defaults so persisted
//! JSON stays wire-compatible: structs become field-name maps in declaration
//! order; enums are externally tagged (`"Variant"` for unit variants,
//! `{"Variant": payload}` otherwise).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (content-tree flavor; see the `serde` shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (content-tree flavor; see the `serde` shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item).parse().unwrap_or_else(|e| {
            compile_error(&format!("serde shim derive produced invalid code: {e}"))
        }),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Item model + parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// Tuple variant with this many fields (1 == newtype).
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive does not support generic type `{name}`"));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde shim derive supports only brace-bodied structs and enums (`{name}`)"
            ))
        }
    };

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)?),
        "enum" => Kind::Enum(parse_variants(body)?),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    Ok(Item { name, kind })
}

/// Skip any `#[...]` attributes (doc comments included) starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if g.stream()
                    .into_iter()
                    .next()
                    .is_some_and(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "serde"))
                {
                    return Err(
                        "serde shim derive does not support #[serde(...)] attributes".to_string()
                    );
                }
                *i += 2;
            }
            _ => return Err("malformed attribute".to_string()),
        }
    }
    Ok(())
}

/// Skip `pub` / `pub(...)` starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parse `name: Type, ...` named fields from a brace-group stream.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advance past a type, stopping after the top-level `,` that ends the field
/// (or at end of stream). Tracks `<`/`>` depth so commas inside generic
/// arguments (e.g. `HashMap<String, f64>`) don't terminate early.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("expected `,` after variant `{name}`, found {other:?}")),
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Count the fields of a tuple variant from its parenthesized stream.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_type(&tokens, &mut i); // advances past one type + trailing comma
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_content(&self.{f}))"))
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => serde::Content::Str(String::from({vname:?}))"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Content::Map(vec![(String::from({vname:?}), serde::Serialize::to_content(f0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Content::Map(vec![(String::from({vname:?}), serde::Content::Seq(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Content::Map(vec![(String::from({vname:?}), serde::Content::Map(vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::field(map, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let map = c.as_map().ok_or_else(|| serde::DeError::expected(\"map\", {name:?}))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let full = format!("{name}::{vname}");
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({full}(serde::Deserialize::from_content(payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_content(&seq[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let seq = payload.as_seq().ok_or_else(|| serde::DeError::expected(\"sequence\", {full:?}))?;\n\
                                     if seq.len() != {n} {{ return Err(serde::DeError::expected(\"{n}-element sequence\", {full:?})); }}\n\
                                     Ok({full}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        Shape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: serde::field(m, {f:?}, {full:?})?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let m = payload.as_map().ok_or_else(|| serde::DeError::expected(\"map\", {full:?}))?;\n\
                                     Ok({full} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let payload_binding = if payload_arms.is_empty() { "_payload" } else { "payload" };
            format!(
                "match c {{\n\
                     serde::Content::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(serde::DeError::msg(format!(\"unknown variant `{{}}` for {name}\", other))),\n\
                     }},\n\
                     serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, {payload_binding}) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {payload}\n\
                             other => Err(serde::DeError::msg(format!(\"unknown variant `{{}}` for {name}\", other))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::DeError::expected(\"externally tagged variant\", other.kind())),\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
