//! IEEE-754 anatomy of a soft error (the paper's Section V-B).
//!
//! Walks every bit of a 64-bit float, flips it, and shows the resulting
//! value — reproducing the paper's observation that "there is practically
//! only one critical bit": the exponent MSB. Also demonstrates the
//! 16/32-bit layouts and the N-EV classification.
//!
//! ```text
//! cargo run --example bit_anatomy
//! ```

use sefi_float::{classify, flip_bit, FloatClass, FpValue, Precision};

fn main() {
    let value = 0.25f64;
    println!("anatomy of {value} (binary64):\n");
    println!("{:>4}  {:<9} {:<24} N-EV?", "bit", "field", "flipped value");
    let map = Precision::Fp64.field_map();
    for bit in (0..64).rev() {
        let flipped = f64::from_bits(flip_bit(value.to_bits(), bit));
        let field = match map.classify_bit(bit) {
            FloatClass::Sign => "sign",
            FloatClass::Exponent => "exponent",
            FloatClass::Mantissa => "mantissa",
            FloatClass::OutOfRange => unreachable!("bit < 64"),
        };
        let nev = match classify(flipped) {
            Some(kind) => format!("{kind:?}"),
            None => "-".to_string(),
        };
        // Print the interesting bits: the full exponent + sign, and a few
        // representative mantissa positions.
        if bit >= 50 || bit % 13 == 0 {
            println!("{bit:>4}  {field:<9} {flipped:<24.6e} {nev}");
        }
    }

    println!("\nthe paper's example: flipping the exponent MSB of 0.25 gives");
    let critical = Precision::Fp64.exponent_msb();
    let boom = f64::from_bits(flip_bit(value.to_bits(), critical));
    println!("  bit {critical} -> {boom:e}  (paper: 4.49423283715579e+307)");

    println!("\nthe same flip at lower precision:");
    for p in [Precision::Fp32, Precision::Fp16] {
        let stored = FpValue::from_f64(p, value);
        let flipped = FpValue::from_bits(p, flip_bit(stored.to_bits(), p.exponent_msb()));
        println!("  binary{}: bit {} -> {:e}", p.width(), p.exponent_msb(), flipped.to_f64());
    }

    println!("\nfield layout per precision (paper Figure 2):");
    for p in [Precision::Fp16, Precision::Fp32, Precision::Fp64] {
        let m = p.field_map();
        println!(
            "  binary{:<3} sign: bit {:>2} | exponent: bits {:>2}-{:<2} | mantissa: bits 0-{}",
            p.width(),
            m.sign_bit,
            m.exponent_lo,
            m.exponent_hi,
            m.mantissa_hi
        );
    }
}
