//! Quickstart: the paper's core loop in ~60 lines.
//!
//! Train a model, checkpoint it, flip bits in the checkpoint file, resume
//! training from the corrupted file, and compare against the deterministic
//! error-free baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sefi_core::{Corrupter, CorrupterConfig};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn main() {
    // A small synthetic CIFAR-10-like task and a scaled-down AlexNet.
    let data = SyntheticCifar10::generate(DataConfig {
        train: 300,
        test: 150,
        image_size: 16,
        seed: 7,
        noise: 0.3,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::TensorFlow, ModelKind::AlexNet, 42);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;

    // 1. Train to epoch 3 and write a checkpoint (TensorFlow layout, f64).
    let mut session = Session::new(cfg.clone());
    session.train_to(&data, 3);
    let checkpoint = session.checkpoint(Dtype::F64);
    println!(
        "checkpointed at epoch {} ({} datasets)",
        session.epoch(),
        checkpoint.dataset_paths().len()
    );

    // 2. Error-free baseline: resume the pristine checkpoint to epoch 6.
    let mut baseline = Session::new(cfg.clone());
    baseline.restore(&checkpoint).expect("pristine restore");
    let base_out = baseline.train_to(&data, 6);
    let base_acc = base_out.final_accuracy().expect("baseline completes");
    println!("error-free resumed accuracy:  {:.2}%", base_acc * 100.0);

    // 3. Corrupt a copy of the checkpoint: 10 random bit-flips anywhere
    //    except the exponent MSB (the paper's "critical bit").
    let mut corrupted = checkpoint.clone();
    let injector = Corrupter::new(CorrupterConfig::bit_flips(10, Precision::Fp64, 1234))
        .expect("valid config");
    let report = injector.corrupt(&mut corrupted).expect("corruption succeeds");
    println!(
        "injected {} bit-flips into {} locations",
        report.injections,
        report.locations_touched().len()
    );
    for r in report.records.iter().take(3) {
        println!("  e.g. {}[{}]: {} -> {}", r.location, r.entry_index, r.old_value, r.new_value);
    }

    // 4. Resume from the corrupted file — it loads as if nothing happened.
    let mut victim = Session::new(cfg);
    victim.restore(&corrupted).expect("corrupted checkpoints load fine");
    let out = victim.train_to(&data, 6);
    match out.final_accuracy() {
        Some(acc) => {
            println!("corrupted resumed accuracy:   {:.2}%", acc * 100.0);
            println!(
                "bit-flips were {}",
                if acc == base_acc { "fully absorbed (RWC)" } else { "not fully absorbed" }
            );
        }
        None => println!("training collapsed on an N-EV"),
    }
}
