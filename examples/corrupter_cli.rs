//! A command-line checkpoint corrupter mirroring the paper's Python tool.
//!
//! Creates a demo checkpoint on disk, then corrupts it according to flags
//! that mirror the original `hdf5_corrupter` settings (Table I):
//!
//! ```text
//! cargo run --example corrupter_cli -- \
//!     --attempts 20 --probability 0.8 --precision 64 \
//!     --mode bit_range --first-bit 0 --last-bit 61 \
//!     --location model/dense1 --no-nan
//! ```
//!
//! With no flags it runs a sensible default and prints the report.

use sefi_core::{
    corrupt_file, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection,
};
use sefi_float::{BitMask, BitRange, Precision};
use sefi_hdf5::{Dataset, Dtype, H5File};

fn demo_checkpoint(path: &std::path::Path) {
    let mut f = H5File::new();
    let w: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin()).collect();
    f.create_dataset("model/dense1/W", Dataset::from_f32(&w, &[16, 16], Dtype::F64).unwrap())
        .unwrap();
    f.create_dataset("model/dense1/b", Dataset::from_f32(&[0.01; 16], &[16], Dtype::F64).unwrap())
        .unwrap();
    f.create_dataset("model/dense2/W", Dataset::from_f32(&w, &[256], Dtype::F64).unwrap()).unwrap();
    f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
    f.save(path).expect("write demo checkpoint");
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = std::env::temp_dir().join("sefi_demo_ckpt.sefi5");
    demo_checkpoint(&path);
    println!("demo checkpoint: {}", path.display());

    let precision = match arg(&args, "--precision").as_deref() {
        Some("16") => Precision::Fp16,
        Some("32") => Precision::Fp32,
        _ => Precision::Fp64,
    };
    let mode = match arg(&args, "--mode").as_deref() {
        Some("bit_mask") => CorruptionMode::BitMask(
            BitMask::parse(&arg(&args, "--mask").unwrap_or_else(|| "10110010".into()))
                .expect("valid mask pattern"),
        ),
        Some("scaling_factor") => CorruptionMode::ScalingFactor(
            arg(&args, "--factor").and_then(|f| f.parse().ok()).unwrap_or(4500.0),
        ),
        _ => CorruptionMode::BitRange(BitRange {
            first_bit: arg(&args, "--first-bit").and_then(|v| v.parse().ok()).unwrap_or(0),
            last_bit: arg(&args, "--last-bit")
                .and_then(|v| v.parse().ok())
                .unwrap_or(precision.exponent_msb() - 1),
        }),
    };
    let amount = match arg(&args, "--percentage").and_then(|v| v.parse::<f64>().ok()) {
        Some(p) => InjectionAmount::Percentage(p),
        None => InjectionAmount::Count(
            arg(&args, "--attempts").and_then(|v| v.parse().ok()).unwrap_or(20),
        ),
    };
    let locations = match arg(&args, "--location") {
        Some(loc) => LocationSelection::Listed(vec![loc]),
        None => LocationSelection::AllRandom,
    };
    let config = CorrupterConfig {
        injection_probability: arg(&args, "--probability")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0),
        amount,
        float_precision: precision,
        mode,
        allow_nan_values: !args.iter().any(|a| a == "--no-nan"),
        locations,
        seed: arg(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2021),
    };
    println!("config: {config:#?}\n");

    match corrupt_file(&path, config) {
        Ok(report) => {
            println!(
                "attempts={} injections={} skipped={} nan_redraws={}",
                report.attempts, report.injections, report.skipped, report.nan_redraws
            );
            for r in report.records.iter().take(10) {
                println!(
                    "  #{:<3} {}[{}] {:?}: {:.6e} -> {:.6e}",
                    r.order, r.location, r.entry_index, r.change, r.old_value, r.new_value
                );
            }
            if report.records.len() > 10 {
                println!("  … {} more", report.records.len() - 10);
            }
            let nev = report.nev_count(&sefi_float::NevPolicy::default());
            println!("N-EV values produced: {nev}");
        }
        Err(e) => {
            eprintln!("corruption failed: {e}");
            std::process::exit(1);
        }
    }
}
