//! Checkpoint alteration beyond deep learning (paper Section VI-5): a 2-D
//! heat-equation solver checkpointed into the same container, corrupted by
//! the same injector.
//!
//! Demonstrates the paper's claim that the methodology extends to
//! "traditional iterative solvers of systems of partial differential
//! equations": mantissa flips self-correct; exponent-MSB flips flood the
//! grid.
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, LocationSelection};
use sefi_float::{BitRange, NevPolicy, Precision};
use sefi_solver::{HeatSolver, SolveOutcome};

fn main() {
    let nev = NevPolicy::default();
    let mut solver = HeatSolver::new(32, 32, [100.0, 0.0, 50.0, 25.0]);
    let out = solver.run(1e-10, 100_000, &nev);
    println!("error-free solve: {out:?}");
    let reference = solver.clone();
    let checkpoint = solver.checkpoint();
    println!(
        "checkpoint holds {} entries across {:?}\n",
        checkpoint.total_entries(),
        checkpoint.dataset_paths()
    );

    // Scenario 1: 50 mantissa bit-flips — Jacobi iteration heals them.
    let mut ck = checkpoint.clone();
    let mut cfg = CorrupterConfig::bit_flips(50, Precision::Fp64, 42);
    cfg.mode = CorruptionMode::BitRange(BitRange::mantissa_only(Precision::Fp64));
    cfg.locations = LocationSelection::Listed(vec!["solver/grid".to_string()]);
    Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
    let mut victim = HeatSolver::new(32, 32, [100.0, 0.0, 50.0, 25.0]);
    victim.restore(&ck).unwrap();
    println!("after 50 mantissa flips: initial deviation {:.3e}", victim.max_diff(&reference));
    let out = victim.run(1e-12, 100_000, &nev);
    println!(
        "  re-solve: {out:?}; final deviation {:.3e}  (self-corrected)\n",
        victim.max_diff(&reference)
    );

    // Scenario 2: a single exponent-MSB flip. Direction matters: values
    // with magnitude >= 2 have the exponent MSB set and flip DOWN to
    // harmless tiny numbers; values < 2 flip UP by 2^1024 — an N-EV. Use a
    // normalized plate (all temperatures < 2, like trained NN weights) so
    // the flip floods the grid.
    let mut norm = HeatSolver::new(32, 32, [1.0, 0.0, 0.5, 0.25]);
    norm.run(1e-12, 100_000, &nev);
    let norm_ck = norm.checkpoint();
    let mut ck = norm_ck.clone();
    let mut cfg = CorrupterConfig::bit_flips_full_range(1, Precision::Fp64, 7);
    cfg.mode = CorruptionMode::BitRange(BitRange { first_bit: 62, last_bit: 62 });
    cfg.locations = LocationSelection::Listed(vec!["solver/grid".to_string()]);
    let report = Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
    let r = &report.records[0];
    println!(
        "one critical-bit flip at {}[{}]: {:.3e} -> {:.3e}",
        r.location, r.entry_index, r.old_value, r.new_value
    );
    let mut victim = HeatSolver::new(32, 32, [1.0, 0.0, 0.5, 0.25]);
    victim.restore(&ck).unwrap();
    match victim.run(1e-12, 100_000, &nev) {
        SolveOutcome::Collapsed(iter) => {
            println!("  re-solve collapsed on an N-EV at iteration {iter} (as in DL training)")
        }
        other => println!("  re-solve: {other:?}"),
    }
}
