//! Checkpoint differencing — how Figure 6's propagation analysis works.
//!
//! Train a model twice from the same checkpoint — once clean, once after
//! corruption — and diff the resulting checkpoints to see how far the
//! injected error spread through backpropagation.
//!
//! ```text
//! cargo run --release --example checkpoint_diff
//! ```

use sefi_core::{diff_checkpoint_values, Corrupter, CorrupterConfig, LocationSelection};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{LayerRole, ModelConfig, ModelKind};

fn session() -> Session {
    let mut cfg = SessionConfig::new(FrameworkKind::TensorFlow, ModelKind::AlexNet, 17);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

fn main() {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 240,
        test: 120,
        image_size: 16,
        seed: 15,
        noise: 0.3,
    });

    // Common ancestor: train to epoch 2 and checkpoint.
    let mut s = session();
    s.train_to(&data, 2);
    let ancestor = s.checkpoint(Dtype::F64);

    // Branch A: clean continuation to epoch 4.
    let mut clean = session();
    clean.restore(&ancestor).unwrap();
    clean.train_to(&data, 4);
    let clean_ck = clean.checkpoint(Dtype::F64);

    // Branch B: corrupt the first layer, then continue identically.
    let mut corrupted_ck = ancestor.clone();
    let mut cfg = CorrupterConfig::bit_flips(200, Precision::Fp64, 4);
    cfg.locations = LocationSelection::Listed(session().layer_locations(LayerRole::First));
    Corrupter::new(cfg).unwrap().corrupt(&mut corrupted_ck).unwrap();
    let mut dirty = session();
    dirty.restore(&corrupted_ck).unwrap();
    dirty.train_to(&data, 4);
    let dirty_ck = dirty.checkpoint(Dtype::F64);

    // Diff the two descendants: where did the error propagate?
    let (summary, diffs) = diff_checkpoint_values(&clean_ck, &dirty_ck).unwrap();
    println!(
        "after 2 shared epochs post-injection: {} of {} values differ ({:.1}%)\n",
        summary.differing,
        summary.entries,
        100.0 * summary.differing as f64 / summary.entries as f64
    );
    println!("{:<42} {:>9} {:>10} {:>12}", "dataset", "entries", "differing", "max |diff|");
    for row in summary.datasets.iter().take(12) {
        println!(
            "{:<42} {:>9} {:>10} {:>12.3e}",
            row.location, row.entries, row.differing, row.max_abs_diff
        );
    }
    if let Some(fence) = sefi_experiments_stats(&diffs) {
        println!(
            "\nnon-zero |diff| five-number summary: min {:.2e}  Q1 {:.2e}  median {:.2e}  Q3 {:.2e}  max {:.2e}",
            fence.0, fence.1, fence.2, fence.3, fence.4
        );
    }
}

/// Local five-number summary (the experiments crate has a richer one; the
/// example stays dependency-light).
fn sefi_experiments_stats(xs: &[f64]) -> Option<(f64, f64, f64, f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
    Some((v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1]))
}
