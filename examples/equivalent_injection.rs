//! Equivalent injection across frameworks (the paper's Section IV-C).
//!
//! Inject bit-flips into the first convolutional layer of a Chainer
//! checkpoint, save the injection log as JSON, remap its location strings
//! to the PyTorch and TensorFlow schemas, and replay: the same number of
//! flips at the same bit positions land in the equivalent layer of each
//! framework's checkpoint.
//!
//! ```text
//! cargo run --release --example equivalent_injection
//! ```

use sefi_core::{Corrupter, CorrupterConfig, LocationSelection};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{LayerRole, ModelConfig, ModelKind};
use std::collections::HashMap;

fn session(fw: FrameworkKind) -> Session {
    let mut cfg = SessionConfig::new(fw, ModelKind::AlexNet, 42);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

fn main() {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 200,
        test: 100,
        image_size: 16,
        seed: 9,
        noise: 0.3,
    });

    // Train the model once per framework (same seed ⇒ same logical
    // weights, as the paper arranges with its determinism recipe).
    let mut chainer = session(FrameworkKind::Chainer);
    chainer.train_to(&data, 2);
    let mut ck_chainer = chainer.checkpoint(Dtype::F64);

    // Inject 50 bit-flips into AlexNet's first layer and keep the log.
    let first_layer = chainer.layer_locations(LayerRole::First);
    println!("Chainer first-layer location: {first_layer:?}");
    let mut cfg = CorrupterConfig::bit_flips(50, Precision::Fp64, 7);
    cfg.locations = LocationSelection::Listed(first_layer);
    let (report, log) = Corrupter::new(cfg)
        .expect("valid config")
        .corrupt_with_log(&mut ck_chainer)
        .expect("corruption succeeds");
    println!("logged {} injections; JSON log is {} bytes", report.injections, log.to_json().len());

    // Replay on the other two frameworks at their equivalent locations.
    for fw in [FrameworkKind::PyTorch, FrameworkKind::TensorFlow] {
        let mut victim = session(fw);
        victim.train_to(&data, 2);
        let mut ck = victim.checkpoint(Dtype::F64);

        // The paper edits the location strings in the .json; here the map
        // says how Chainer's paths read in the target schema.
        let map: HashMap<String, String> = match fw {
            FrameworkKind::PyTorch => [
                ("predictor/conv1/W", "state_dict/conv1.weight"),
                ("predictor/conv1/b", "state_dict/conv1.bias"),
            ],
            _ => [
                ("predictor/conv1/W", "model_weights/conv1/kernel"),
                ("predictor/conv1/b", "model_weights/conv1/bias"),
            ],
        }
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();

        let replayed = log.remap_locations(&map).replay(&mut ck, 99).expect("replay succeeds");
        println!(
            "{}: replayed {} flips into {:?}",
            fw.display(),
            replayed.injections,
            replayed.locations_touched()
        );

        victim.restore(&ck).expect("corrupted checkpoint loads");
        let out = victim.train_to(&data, 4);
        match out.final_accuracy() {
            Some(acc) => println!("  resumed to accuracy {:.2}%", acc * 100.0),
            None => println!("  training collapsed"),
        }
    }
}
