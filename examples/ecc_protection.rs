//! Protecting checkpoints with SEC-DED ECC (the direction behind the
//! paper's Table VI discussion and its references [44]–[46]).
//!
//! Train a model, protect its checkpoint with a Hamming(72,64) parity
//! sidecar, hit it with single bit-flips and with the paper's multi-bit
//! DRAM masks, and see what the code can and cannot save.
//!
//! ```text
//! cargo run --release --example ecc_protection
//! ```

use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_ecc::EccShield;
use sefi_float::{BitMask, Precision};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn main() {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 200,
        test: 100,
        image_size: 16,
        seed: 3,
        noise: 0.3,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, ModelKind::AlexNet, 5);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    let mut session = Session::new(cfg.clone());
    session.train_to(&data, 3);
    let checkpoint = session.checkpoint(Dtype::F64);

    // Protect: one parity byte per 64-bit word.
    let shield = EccShield::protect(&checkpoint);
    let sidecar = shield.to_file();
    println!(
        "checkpoint: {} entries; sidecar: {} parity bytes ({}% overhead)\n",
        checkpoint.total_entries(),
        sidecar.total_entries(),
        100 * sidecar.total_entries() / (checkpoint.total_entries() * 8)
    );

    // Scenario 1: a realistic SDC — one random bit-flip.
    let mut hit = checkpoint.clone();
    Corrupter::new(CorrupterConfig::bit_flips_full_range(1, Precision::Fp64, 99))
        .unwrap()
        .corrupt(&mut hit)
        .unwrap();
    let report = shield.verify_and_repair(&mut hit).unwrap();
    println!(
        "single flip: corrected {} word(s); checkpoint identical to original: {}",
        report.corrected(),
        hit.to_bytes() == checkpoint.to_bytes()
    );

    // Scenario 2: the paper's 6-bit DRAM mask, ten weights.
    let mut hit = checkpoint.clone();
    let mask_cfg = CorrupterConfig {
        injection_probability: 1.0,
        amount: InjectionAmount::Count(10),
        float_precision: Precision::Fp64,
        mode: CorruptionMode::BitMask(BitMask::parse("11101101").unwrap()),
        allow_nan_values: true,
        locations: LocationSelection::AllRandom,
        seed: 7,
    };
    Corrupter::new(mask_cfg).unwrap().corrupt(&mut hit).unwrap();
    let report = shield.verify_and_repair(&mut hit).unwrap();
    println!(
        "6-bit mask x10: corrected {}, detected-uncorrectable {} — multi-bit errors defeat SEC-DED",
        report.corrected(),
        report.uncorrectable()
    );

    // The uncorrectable detection is actionable: fall back to a clean copy
    // instead of resuming from known-bad state.
    let resume_from = if report.uncorrectable() > 0 { &checkpoint } else { &hit };
    let mut resumed = Session::new(cfg);
    resumed.restore(resume_from).unwrap();
    let out = resumed.train_to(&data, 5);
    println!(
        "resumed from {} to accuracy {:.2}%",
        if report.uncorrectable() > 0 {
            "the clean checkpoint (ECC raised the alarm)"
        } else {
            "the repaired checkpoint"
        },
        out.final_accuracy().unwrap_or(0.0) * 100.0
    );
}
