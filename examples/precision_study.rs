//! Floating-point precision vs soft-error sensitivity (the paper's
//! Section V-D trade-off).
//!
//! Stores the same trained model at 16-, 32- and 64-bit precision, injects
//! the same number of full-range bit-flips into each, and reports how many
//! injected values became NaN/extreme and how prediction accuracy held up.
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use sefi_core::{Corrupter, CorrupterConfig};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::{NevPolicy, Precision};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn main() {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 300,
        test: 150,
        image_size: 16,
        seed: 21,
        noise: 0.3,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, ModelKind::AlexNet, 11);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;

    // Train once.
    let mut trained = Session::new(cfg.clone());
    trained.train_to(&data, 5);
    let clean_acc = trained.test_accuracy(&data);
    println!("trained model accuracy: {:.2}%\n", clean_acc * 100.0);

    let policy = NevPolicy::default();
    let (images, labels) = data.prediction_set(150);
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12}",
        "precision", "bit-flips", "N-EV values", "prediction %", "NaN logits"
    );

    for precision in [Precision::Fp16, Precision::Fp32, Precision::Fp64] {
        let dtype = Dtype::from_precision(precision);
        for flips in [10u64, 100, 1000] {
            let mut ck = trained.checkpoint(dtype);
            let report = Corrupter::new(CorrupterConfig::bit_flips_full_range(
                flips,
                precision,
                flips ^ precision.width() as u64,
            ))
            .expect("valid config")
            .corrupt(&mut ck)
            .expect("corruption succeeds");

            let mut victim = Session::new(cfg.clone());
            victim.restore(&ck).expect("corrupted checkpoint loads");
            let (preds, nan_logits) = victim.predict(images.clone());
            let correct = preds.iter().zip(&labels).filter(|(p, &l)| **p == l as usize).count();
            println!(
                "{:<10} {:>10} {:>12} {:>13.1}% {:>12}",
                format!("{} bit", precision.width()),
                flips,
                report.nev_count(&policy),
                100.0 * correct as f64 / labels.len() as f64,
                if nan_logits { "yes" } else { "no" }
            );
        }
    }
}
