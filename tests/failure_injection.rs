//! Failure injection against the substrate itself: damaged checkpoint
//! files must fail loudly at every layer of the stack — never panic,
//! never load silently-wrong weights.

use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::{Dataset, Dtype, H5File};
use sefi_models::{ModelConfig, ModelKind};

fn checkpoint_bytes() -> (Session, Vec<u8>) {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 40,
        test: 20,
        image_size: 16,
        seed: 1,
        noise: 0.25,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, ModelKind::AlexNet, 3);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    let mut s = Session::new(cfg);
    s.train_to(&data, 1);
    let bytes = s.checkpoint(Dtype::F32).to_bytes();
    (s, bytes)
}

#[test]
fn accidental_file_damage_is_detected_not_loaded() {
    let (_, bytes) = checkpoint_bytes();
    // Corrupting raw FILE bytes (as opposed to decoded values, which is
    // what the injector legitimately does) must be caught by the CRC.
    for pos in [16usize, 100, bytes.len() / 2, bytes.len() - 1] {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        assert!(H5File::from_bytes(&damaged).is_err(), "byte {pos} flip was accepted");
    }
}

#[test]
fn truncated_files_error_cleanly() {
    let (_, bytes) = checkpoint_bytes();
    for frac in [0, 1, 7, 15, 16, 17, 50] {
        let cut = bytes.len() * frac / 100;
        assert!(H5File::from_bytes(&bytes[..cut]).is_err(), "cut at {frac}%");
    }
}

#[test]
fn structurally_wrong_checkpoints_are_rejected_by_restore() {
    let (mut session, bytes) = checkpoint_bytes();
    let good = H5File::from_bytes(&bytes).unwrap();

    // Missing weight tensor.
    let mut pruned = H5File::new();
    for p in good.dataset_paths().iter().filter(|p| !p.contains("conv2")) {
        pruned.create_dataset(p, good.dataset(p).unwrap().clone()).unwrap();
    }
    assert!(session.restore(&pruned).is_err());

    // Wrong-sized tensor.
    let mut resized = H5File::new();
    for p in good.dataset_paths() {
        let ds = if p.ends_with("conv1/b") {
            Dataset::zeros(&[1], Dtype::F32)
        } else {
            good.dataset(&p).unwrap().clone()
        };
        resized.create_dataset(&p, ds).unwrap();
    }
    assert!(session.restore(&resized).is_err());

    // Checkpoint from a different framework.
    let other = {
        let data = SyntheticCifar10::generate(DataConfig {
            train: 40,
            test: 20,
            image_size: 16,
            seed: 1,
            noise: 0.25,
        });
        let mut cfg = SessionConfig::new(FrameworkKind::PyTorch, ModelKind::AlexNet, 3);
        cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
        cfg.train.batch_size = 16;
        let mut s = Session::new(cfg);
        s.train_to(&data, 1);
        s.checkpoint(Dtype::F32)
    };
    assert!(session.restore(&other).is_err());

    // After all the rejections the session still works with a good file.
    session.restore(&good).unwrap();
}

#[test]
fn empty_and_garbage_files_error() {
    assert!(H5File::from_bytes(&[]).is_err());
    assert!(H5File::from_bytes(b"definitely not a checkpoint").is_err());
    let zeros = vec![0u8; 1024];
    assert!(H5File::from_bytes(&zeros).is_err());
}
