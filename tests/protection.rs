//! Integration: the protection layers (NevGuard, SEC-DED shield) composed
//! with real framework checkpoints and resumed training.

use sefi_core::{Corrupter, CorrupterConfig, NevGuard};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_ecc::EccShield;
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 80,
        test: 40,
        image_size: 16,
        seed: 13,
        noise: 0.25,
    })
}

fn session() -> Session {
    let mut cfg = SessionConfig::new(FrameworkKind::TensorFlow, ModelKind::AlexNet, 31);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

#[test]
fn guard_turns_a_collapsing_checkpoint_into_a_trainable_one() {
    let d = data();
    let mut s = session();
    s.train_to(&d, 1);
    let mut ck = s.checkpoint(Dtype::F64);

    // Heavy full-range corruption: unguarded resume collapses.
    Corrupter::new(CorrupterConfig::bit_flips_full_range(500, Precision::Fp64, 8))
        .unwrap()
        .corrupt(&mut ck)
        .unwrap();
    let mut unguarded = session();
    unguarded.restore(&ck).unwrap();
    assert!(unguarded.train_to(&d, 2).collapsed());

    // Guarded resume survives.
    let report = NevGuard::default_repair().scrub(&mut ck);
    assert!(!report.is_clean(), "500 full-range flips must produce N-EVs");
    let mut guarded = session();
    guarded.restore(&ck).unwrap();
    let out = guarded.train_to(&d, 2);
    assert!(!out.collapsed(), "scrubbed checkpoint must train");
}

#[test]
fn ecc_restores_single_flip_checkpoints_to_rwc() {
    // With ECC, a single-flip corruption resumes *identically* to the
    // error-free baseline — RWC by construction, not by absorption.
    let d = data();
    let mut s = session();
    s.train_to(&d, 1);
    let ck = s.checkpoint(Dtype::F64);
    let shield = EccShield::protect(&ck);

    // Baseline resume.
    let mut base = session();
    base.restore(&ck).unwrap();
    let base_out = base.train_to(&d, 3);

    // Corrupt one bit, repair, resume.
    let mut hit = ck.clone();
    Corrupter::new(CorrupterConfig::bit_flips_full_range(1, Precision::Fp64, 77))
        .unwrap()
        .corrupt(&mut hit)
        .unwrap();
    assert_ne!(hit.to_bytes(), ck.to_bytes());
    let report = shield.verify_and_repair(&mut hit).unwrap();
    assert_eq!(report.corrected(), 1);
    assert_eq!(hit.to_bytes(), ck.to_bytes(), "ECC must restore byte-identity");

    let mut repaired = session();
    repaired.restore(&hit).unwrap();
    let rep_out = repaired.train_to(&d, 3);
    assert_eq!(rep_out.history(), base_out.history(), "repaired resume == baseline");
}

#[test]
fn guard_then_ecc_protect_different_things() {
    // ECC needs the *pristine* parity sidecar; the guard needs nothing.
    // Composing them: ECC repairs what it can, the guard catches what
    // slipped through (multi-bit damage that produced an N-EV).
    let d = data();
    let mut s = session();
    s.train_to(&d, 1);
    let ck = s.checkpoint(Dtype::F64);
    let shield = EccShield::protect(&ck);

    let mut hit = ck.clone();
    // Heavy corruption: some words take multiple flips.
    Corrupter::new(CorrupterConfig::bit_flips_full_range(300, Precision::Fp64, 5))
        .unwrap()
        .corrupt(&mut hit)
        .unwrap();
    let ecc_report = shield.verify_and_repair(&mut hit).unwrap();
    let guard_report = NevGuard::default_repair().scrub(&mut hit);
    // Whatever remains after both layers trains without collapse.
    let mut healed = session();
    healed.restore(&hit).unwrap();
    let out = healed.train_to(&d, 2);
    assert!(
        !out.collapsed(),
        "ecc corrected {} / flagged {}, guard repaired {}, yet training collapsed",
        ecc_report.corrected(),
        ecc_report.uncorrectable(),
        guard_report.findings.len()
    );
}
