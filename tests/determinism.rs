//! The paper's Section V-A3 / Code 1 requirement: fully deterministic
//! training, because "deterministic training is a vital part of the
//! experimental setup to measure differences between error-free training
//! executions vs. training executions with errors".

use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 100,
        test: 50,
        image_size: 16,
        seed: 2021,
        noise: 0.25,
    })
}

fn session(fw: FrameworkKind, model: ModelKind, seed: u64) -> Session {
    let mut cfg = SessionConfig::new(fw, model, seed);
    cfg.model_config = ModelConfig { scale: 0.04, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

#[test]
fn same_seed_gives_bitwise_identical_checkpoints() {
    let d = data();
    let run = || {
        let mut s = session(FrameworkKind::Chainer, ModelKind::AlexNet, 55);
        s.train_to(&d, 3);
        s.checkpoint(Dtype::F64).to_bytes()
    };
    assert_eq!(run(), run(), "two trainings with one seed must be byte-identical");
}

#[test]
fn different_seeds_give_different_models() {
    let d = data();
    let run = |seed| {
        let mut s = session(FrameworkKind::Chainer, ModelKind::AlexNet, seed);
        s.train_to(&d, 1);
        s.checkpoint(Dtype::F64).to_bytes()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn restart_replays_the_uninterrupted_schedule() {
    // Checkpoint at epoch 2, resume to epoch 4 twice: identical; and the
    // per-epoch batch order depends only on (dataset seed, epoch), so the
    // resumed run sees the batches the uninterrupted run would have seen.
    let d = data();
    let mut s = session(FrameworkKind::PyTorch, ModelKind::AlexNet, 8);
    s.train_to(&d, 2);
    let ck = s.checkpoint(Dtype::F64);

    let resume = || {
        let mut r = session(FrameworkKind::PyTorch, ModelKind::AlexNet, 8);
        r.restore(&ck).unwrap();
        let out = r.train_to(&d, 4);
        (out.history().to_vec(), r.checkpoint(Dtype::F64).to_bytes())
    };
    let (h1, b1) = resume();
    let (h2, b2) = resume();
    assert_eq!(h1, h2);
    assert_eq!(b1, b2);
}

#[test]
fn all_frameworks_share_logical_weights_for_one_seed() {
    // The equivalent-injection experiments compare frameworks running "the
    // same model"; with a shared engine, one seed must produce identical
    // logical weights regardless of the frontend.
    let d = data();
    let accs: Vec<f64> = FrameworkKind::all()
        .iter()
        .map(|&fw| {
            let mut s = session(fw, ModelKind::ResNet50, 99);
            s.train_to(&d, 1);
            s.test_accuracy(&d)
        })
        .collect();
    assert_eq!(accs[0], accs[1]);
    assert_eq!(accs[1], accs[2]);
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let a = data();
    let b = data();
    assert_eq!(a.image(sefi_data::Split::Train, 7), b.image(sefi_data::Split::Train, 7));
    assert_eq!(a.labels(sefi_data::Split::Test), b.labels(sefi_data::Split::Test));
}

#[test]
fn corruption_then_resume_is_deterministic_end_to_end() {
    use sefi_core::{Corrupter, CorrupterConfig};
    use sefi_float::Precision;
    let d = data();
    let mut s = session(FrameworkKind::TensorFlow, ModelKind::AlexNet, 31);
    s.train_to(&d, 2);
    let ck = s.checkpoint(Dtype::F64);

    let run = || {
        let mut corrupted = ck.clone();
        Corrupter::new(CorrupterConfig::bit_flips(15, Precision::Fp64, 77))
            .unwrap()
            .corrupt(&mut corrupted)
            .unwrap();
        let mut v = session(FrameworkKind::TensorFlow, ModelKind::AlexNet, 31);
        v.restore(&corrupted).unwrap();
        let out = v.train_to(&d, 4);
        out.history().to_vec()
    };
    assert_eq!(run(), run());
}
