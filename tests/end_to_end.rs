//! End-to-end integration: train → checkpoint → corrupt → resume, across
//! every framework × model combination.

use sefi_core::{Corrupter, CorrupterConfig};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};

fn tiny_data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 80,
        test: 40,
        image_size: 16,
        seed: 77,
        noise: 0.25,
    })
}

fn tiny_session(fw: FrameworkKind, model: ModelKind) -> Session {
    let mut cfg = SessionConfig::new(fw, model, 123);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

#[test]
fn full_pipeline_all_nine_combinations() {
    let data = tiny_data();
    for fw in FrameworkKind::all() {
        for model in ModelKind::all() {
            // Train one epoch and checkpoint.
            let mut s = tiny_session(fw, model);
            let out = s.train_to(&data, 1);
            assert!(!out.collapsed(), "{fw:?}/{model:?} clean training collapsed");
            let ck = s.checkpoint(Dtype::F64);

            // Corrupt below the exponent MSB: the resume may lose accuracy
            // but must never collapse.
            let mut corrupted = ck.clone();
            let cfg = CorrupterConfig::bit_flips(20, Precision::Fp64, 5);
            Corrupter::new(cfg).unwrap().corrupt(&mut corrupted).unwrap();
            assert_ne!(ck.to_bytes(), corrupted.to_bytes(), "{fw:?}/{model:?}");

            let mut victim = tiny_session(fw, model);
            victim.restore(&corrupted).unwrap();
            // The epoch counter itself is corruptible (it lives in the
            // checkpoint); 1 may have become 0.
            assert!(victim.epoch() <= 1, "{fw:?}/{model:?} epoch {}", victim.epoch());
            let out = victim.train_to(&data, 2);
            assert!(
                !out.collapsed(),
                "{fw:?}/{model:?} collapsed though exponent MSB was excluded"
            );
        }
    }
}

#[test]
fn critical_bit_collapses_any_framework() {
    let data = tiny_data();
    for fw in FrameworkKind::all() {
        let mut s = tiny_session(fw, ModelKind::AlexNet);
        s.train_to(&data, 1);
        let mut ck = s.checkpoint(Dtype::F64);
        // Force flips onto the exponent MSB only.
        let mut cfg = CorrupterConfig::bit_flips_full_range(200, Precision::Fp64, 9);
        cfg.mode = sefi_core::CorruptionMode::BitRange(sefi_float::BitRange {
            first_bit: 62,
            last_bit: 62,
        });
        Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
        let mut victim = tiny_session(fw, ModelKind::AlexNet);
        victim.restore(&ck).unwrap();
        let out = victim.train_to(&data, 2);
        assert!(out.collapsed(), "{fw:?}: 200 critical-bit flips must collapse training");
    }
}

#[test]
fn checkpoint_files_survive_disk_roundtrip_after_corruption() {
    let data = tiny_data();
    let mut s = tiny_session(FrameworkKind::TensorFlow, ModelKind::AlexNet);
    s.train_to(&data, 1);
    let ck = s.checkpoint(Dtype::F32);

    let dir = std::env::temp_dir().join("sefi_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tf_alexnet.sefi5");
    ck.save(&path).unwrap();

    // Corrupt on disk like the original command-line tool.
    let report =
        sefi_core::corrupt_file(&path, CorrupterConfig::bit_flips(5, Precision::Fp32, 3)).unwrap();
    assert_eq!(report.injections, 5);

    // Reload and resume.
    let loaded = sefi_hdf5::H5File::load(&path).unwrap();
    let mut victim = tiny_session(FrameworkKind::TensorFlow, ModelKind::AlexNet);
    victim.restore(&loaded).unwrap();
    let out = victim.train_to(&data, 2);
    assert!(!out.collapsed());
}

#[test]
fn f16_checkpoints_corrupt_and_resume() {
    let data = tiny_data();
    let mut s = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
    s.train_to(&data, 1);
    let mut ck = s.checkpoint(Dtype::F16);
    let cfg = CorrupterConfig::bit_flips(10, Precision::Fp16, 4);
    let report = Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
    assert_eq!(report.injections, 10);
    let mut victim = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
    victim.restore(&ck).unwrap();
    let out = victim.train_to(&data, 2);
    assert!(!out.collapsed(), "sub-MSB f16 flips must not collapse training");
}

#[test]
fn chainer_flat_npz_style_checkpoints_work_end_to_end() {
    // Chainer "saves checkpoints in native NPZ format … and in HDF5
    // format" (paper Section III-C); the flat serialization plays the NPZ
    // role. Corrupt-through-flat must behave identically to
    // corrupt-through-hierarchical.
    use sefi_hdf5::flat;
    let data = tiny_data();
    let mut s = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
    s.train_to(&data, 1);
    let ck = s.checkpoint(Dtype::F64);

    // Round-trip through the flat format (attributes are documented-lossy,
    // so re-stamp the framework attr the loader checks).
    let bytes = flat::to_flat_bytes(&ck);
    let mut reloaded = sefi_hdf5::H5File::from_bytes(
        &sefi_hdf5::H5File::from_bytes(&ck.to_bytes()).unwrap().to_bytes(),
    )
    .unwrap();
    let mut via_flat = flat::from_flat_bytes(&bytes).unwrap();
    via_flat.root_mut().set_attr("framework", sefi_hdf5::Attr::Str("chainer".into()));
    reloaded.root_mut().set_attr("framework", sefi_hdf5::Attr::Str("chainer".into()));

    // Same corruption on both representations gives the same weights.
    let cfg = CorrupterConfig::bit_flips(15, Precision::Fp64, 21);
    Corrupter::new(cfg.clone()).unwrap().corrupt(&mut via_flat).unwrap();
    Corrupter::new(cfg).unwrap().corrupt(&mut reloaded).unwrap();
    for p in via_flat.dataset_paths() {
        assert_eq!(
            via_flat.dataset(&p).unwrap(),
            reloaded.dataset(&p).unwrap(),
            "{p} diverged between formats"
        );
    }

    // And the flat-derived checkpoint restores into a session.
    let mut victim = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
    victim.restore(&via_flat).unwrap();
    let out = victim.train_to(&data, 2);
    assert!(!out.collapsed());
}
