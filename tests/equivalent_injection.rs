//! Cross-framework equivalent injection, end to end (paper Section IV-C).

use sefi_core::{Corrupter, CorrupterConfig, LocationSelection, ValueChange};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{LayerRole, ModelConfig, ModelKind};
use std::collections::HashMap;

fn data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 80,
        test: 40,
        image_size: 16,
        seed: 5,
        noise: 0.25,
    })
}

fn session(fw: FrameworkKind) -> Session {
    let mut cfg = SessionConfig::new(fw, ModelKind::AlexNet, 42);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

/// The Chainer→target location maps for AlexNet's first layer.
fn first_layer_map(target: FrameworkKind) -> HashMap<String, String> {
    let pairs: &[(&str, &str)] = match target {
        FrameworkKind::PyTorch => &[
            ("predictor/conv1/W", "state_dict/conv1.weight"),
            ("predictor/conv1/b", "state_dict/conv1.bias"),
        ],
        FrameworkKind::TensorFlow => &[
            ("predictor/conv1/W", "model_weights/conv1/kernel"),
            ("predictor/conv1/b", "model_weights/conv1/bias"),
        ],
        FrameworkKind::Chainer => &[],
    };
    pairs.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect()
}

#[test]
fn equivalent_injection_full_cycle() {
    let d = data();

    // 1. Chainer run: train, checkpoint, inject into the first layer, log.
    let mut chainer = session(FrameworkKind::Chainer);
    chainer.train_to(&d, 1);
    let mut ck = chainer.checkpoint(Dtype::F64);
    let mut cfg = CorrupterConfig::bit_flips(30, Precision::Fp64, 17);
    cfg.locations = LocationSelection::Listed(chainer.layer_locations(LayerRole::First));
    let (report, log) = Corrupter::new(cfg).unwrap().corrupt_with_log(&mut ck).unwrap();
    assert_eq!(report.injections, 30);

    // 2. The log survives a JSON round-trip (the paper's .json artifact).
    let log = sefi_core::InjectionLog::from_json(&log.to_json()).unwrap();

    // 3. Replay on both other frameworks.
    for fw in [FrameworkKind::PyTorch, FrameworkKind::TensorFlow] {
        let mut victim = session(fw);
        victim.train_to(&d, 1);
        let mut vck = victim.checkpoint(Dtype::F64);
        let replayed = log.remap_locations(&first_layer_map(fw)).replay(&mut vck, 1).unwrap();

        // Equivalent means: same count, same order, same bit positions.
        assert_eq!(replayed.injections, 30, "{fw:?}");
        for (orig, rep) in log.records().iter().zip(&replayed.records) {
            match (orig.change, rep.change) {
                (ValueChange::BitFlip { bit: a }, ValueChange::BitFlip { bit: b }) => {
                    assert_eq!(a, b, "{fw:?}: bit positions must match")
                }
                other => panic!("unexpected change pair {other:?}"),
            }
            // And the flips land in the equivalent layer.
            assert!(
                rep.location.contains("conv1"),
                "{fw:?}: {} escaped the first layer",
                rep.location
            );
        }

        // 4. The corrupted checkpoint resumes.
        victim.restore(&vck).unwrap();
        let out = victim.train_to(&d, 2);
        assert!(!out.collapsed(), "{fw:?}");
    }
}

#[test]
fn replay_counts_match_even_with_repeated_locations() {
    // A log with every record in the same location replays injection-for-
    // injection ("same amount and order").
    let d = data();
    let mut s = session(FrameworkKind::Chainer);
    s.train_to(&d, 1);
    let mut ck = s.checkpoint(Dtype::F64);
    let mut cfg = CorrupterConfig::bit_flips(100, Precision::Fp64, 3);
    cfg.locations = LocationSelection::Listed(vec!["predictor/conv1/W".to_string()]);
    let (_, log) = Corrupter::new(cfg).unwrap().corrupt_with_log(&mut ck).unwrap();

    let mut target = session(FrameworkKind::Chainer);
    target.train_to(&d, 1);
    let mut tck = target.checkpoint(Dtype::F64);
    let report = log.replay(&mut tck, 2).unwrap();
    assert_eq!(report.injections, 100);
    assert!(report.records.iter().all(|r| r.location == "predictor/conv1/W"));
}
