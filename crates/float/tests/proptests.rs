//! Property-based tests for the IEEE-754 substrate.

use proptest::prelude::*;
use sefi_float::{
    corrupt_int, f16, flip_bit, minimal_bit_width, BitMask, BitRange, FloatClass, FpValue, Nev,
    NevPolicy, Precision,
};

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::Fp16), Just(Precision::Fp32), Just(Precision::Fp64),]
}

proptest! {
    #[test]
    fn f16_f32_roundtrip_is_exact_for_representable(bits in any::<u16>()) {
        let v = f16::from_bits(bits);
        if v.is_nan() {
            prop_assert!(f16::from_f32(v.to_f32()).is_nan());
        } else {
            prop_assert_eq!(f16::from_f32(v.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn f16_from_f32_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (l, h) = (f16::from_f32(lo), f16::from_f32(hi));
        prop_assert!(l.to_f32() <= h.to_f32(), "RNE must preserve order: {lo} {hi}");
    }

    #[test]
    fn f16_conversion_error_is_within_half_ulp(v in -60000.0f32..60000.0) {
        let h = f16::from_f32(v);
        prop_assume!(h.is_finite());
        let back = h.to_f32();
        // ulp at magnitude |v|: 2^(floor(log2|v|) - 10), at least the
        // subnormal step 2^-24.
        let ulp = if v == 0.0 {
            2.0f32.powi(-24)
        } else {
            2.0f32.powi((v.abs().log2().floor() as i32 - 10).max(-24))
        };
        prop_assert!((back - v).abs() <= ulp / 2.0 + f32::EPSILON,
            "v={v} back={back} ulp={ulp}");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit(bits in any::<u64>(), bit in 0u32..64) {
        let flipped = flip_bit(bits, bit);
        prop_assert_eq!((flipped ^ bits).count_ones(), 1);
        prop_assert_eq!(flip_bit(flipped, bit), bits);
    }

    #[test]
    fn xor_mask_is_involutive_anywhere(
        bits in any::<u64>(),
        pattern in "[01]{1,16}",
        offset_seed in any::<u32>(),
    ) {
        let mask = BitMask::parse(&pattern).unwrap();
        let max = mask.max_offset(Precision::Fp64).unwrap();
        let offset = offset_seed % (max + 1);
        let once = mask.apply(bits, offset);
        prop_assert_eq!(mask.apply(once, offset), bits);
        // Only bits within the placement window may change.
        let window = ((1u128 << mask.len()) - 1) as u64;
        prop_assert_eq!((once ^ bits) & !(window << offset), 0);
    }

    #[test]
    fn bit_range_nth_stays_in_range(p in any_precision(), a in 0u32..64, b in 0u32..64, k in any::<u32>()) {
        let (first, last) = if a <= b { (a, b) } else { (b, a) };
        let r = BitRange { first_bit: first, last_bit: last };
        if r.validate(p).is_ok() {
            let bit = r.nth(k % r.len());
            prop_assert!(r.contains(bit));
            prop_assert!(bit < p.width());
        }
    }

    #[test]
    fn below_exponent_msb_never_selects_critical_bit(p in any_precision(), k in any::<u32>()) {
        let r = BitRange::below_exponent_msb(p);
        let bit = r.nth(k % r.len());
        prop_assert_ne!(bit, p.exponent_msb());
        // And a flip there can never produce an infinity from a finite value:
        // flipping below the exponent MSB cannot set all exponent bits if the
        // MSB was clear.
        let m = p.field_map();
        prop_assert!(matches!(m.classify_bit(bit), FloatClass::Mantissa | FloatClass::Exponent));
    }

    #[test]
    fn fpvalue_bits_roundtrip(p in any_precision(), raw in any::<u64>()) {
        let bits = raw & p.bit_mask();
        let v = FpValue::from_bits(p, bits);
        prop_assert_eq!(v.to_bits(), bits);
        prop_assert_eq!(v.precision(), p);
    }

    #[test]
    fn nev_policy_is_total_and_consistent(v in any::<f64>()) {
        let p = NevPolicy::default();
        match p.classify_f64(v) {
            Some(Nev::NaN) => prop_assert!(v.is_nan()),
            Some(Nev::Inf) => prop_assert!(v.is_infinite()),
            Some(Nev::Extreme) => prop_assert!(v.is_finite() && v.abs() > p.extreme_threshold),
            None => prop_assert!(v.is_finite() && v.abs() <= p.extreme_threshold),
        }
    }

    #[test]
    fn int_corruption_respects_python_bin_width(v in any::<i64>(), bit in 0u32..70) {
        match corrupt_int(v, bit) {
            None => prop_assert!(
                bit >= minimal_bit_width(v) || v.unsigned_abs() ^ (1u64 << bit) > i64::MAX as u64
            ),
            Some(c) => {
                prop_assert!(bit < minimal_bit_width(v));
                prop_assert_eq!(c.unsigned_abs() ^ v.unsigned_abs(), 1u64 << bit);
                if v != 0 {
                    prop_assert_eq!(c < 0, v < 0, "sign preserved");
                }
            }
        }
    }

    #[test]
    fn exponent_msb_flip_of_small_value_is_extreme(p in any_precision(), v in 0.01f64..1.99) {
        // The paper's collapse mechanism: flipping the exponent MSB of a
        // normal value with magnitude < 2 produces an enormous value.
        let stored = FpValue::from_f64(p, v);
        let flipped = FpValue::from_bits(p, flip_bit(stored.to_bits(), p.exponent_msb()));
        // Flipping the exponent MSB (when clear) multiplies the magnitude by
        // 2^(2^(exponent_bits - 1)): ×2^16 at f16, ×2^128 at f32 (overflow),
        // ×2^1024 at f64 (overflow). Assert the ratio, precision-agnostically.
        let log_ratio = (1u32 << (p.exponent_bits() - 1)) as f64;
        prop_assert!(
            flipped.is_infinite()
                || flipped.is_nan()
                || flipped.to_f64().abs().log2() >= stored.to_f64().abs().log2() + log_ratio - 1.0
        );
    }
}
