//! Integer corruption with Python `bin()` semantics.
//!
//! The paper (Section IV-B): "Python has unlimited precision integer values
//! […] we ask Python for the binary representation of the integer by using
//! the built-in function `bin()`. After that, one of those bits is randomly
//! flipped." `bin(11)` is `'0b1011'` and `bin(-11)` is `'-0b1011'`: the
//! representation is of the *magnitude*, with no fixed width, and the sign
//! is carried separately. Flipping therefore always targets a bit within the
//! minimal binary width of the magnitude — it can never flip a sign or a
//! padding bit.

/// Number of characters in Python's `bin(abs(v))` after the `0b` prefix:
/// the minimal number of bits needed to represent the magnitude.
/// Python renders `bin(0)` as `'0b0'`, i.e. one flippable (zero) bit.
pub fn minimal_bit_width(v: i64) -> u32 {
    let mag = v.unsigned_abs();
    if mag == 0 {
        1
    } else {
        64 - mag.leading_zeros()
    }
}

/// Flip bit `bit` (0 = LSB) of the magnitude of `v`, preserving its sign,
/// exactly as flipping a character of Python's `bin(v)` output would.
///
/// Returns `None` if `bit` falls outside the minimal binary width (a replay
/// log could carry such an index only if the underlying value changed).
/// Flips that would overflow `i64` (magnitude of `i64::MIN`) also return
/// `None` rather than wrapping.
pub fn corrupt_int(v: i64, bit: u32) -> Option<i64> {
    if bit >= minimal_bit_width(v) {
        return None;
    }
    let mag = v.unsigned_abs() ^ (1u64 << bit);
    let signed = i64::try_from(mag).ok()?;
    Some(if v < 0 { -signed } else { signed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_python_bin() {
        // bin(0)='0b0', bin(1)='0b1', bin(2)='0b10', bin(11)='0b1011',
        // bin(255)='0b11111111', bin(256)='0b100000000'
        assert_eq!(minimal_bit_width(0), 1);
        assert_eq!(minimal_bit_width(1), 1);
        assert_eq!(minimal_bit_width(2), 2);
        assert_eq!(minimal_bit_width(11), 4);
        assert_eq!(minimal_bit_width(255), 8);
        assert_eq!(minimal_bit_width(256), 9);
        assert_eq!(minimal_bit_width(-11), 4); // bin(-11)='-0b1011'
    }

    #[test]
    fn flips_magnitude_bits_only() {
        assert_eq!(corrupt_int(11, 0), Some(10)); // 1011 -> 1010
        assert_eq!(corrupt_int(11, 2), Some(15)); // 1011 -> 1111
        assert_eq!(corrupt_int(11, 3), Some(3)); // 1011 -> 0011
        assert_eq!(corrupt_int(11, 4), None); // outside bin() width
        assert_eq!(corrupt_int(-11, 2), Some(-15)); // sign preserved
        assert_eq!(corrupt_int(0, 0), Some(1)); // bin(0) has one '0' bit
        assert_eq!(corrupt_int(0, 1), None);
    }

    #[test]
    fn flip_is_involutive_within_width() {
        // Flipping a bit below the MSB keeps the width, so flipping again
        // restores the value. (Flipping the MSB shrinks the width, making
        // the inverse flip out-of-range — also Python's behaviour.)
        for v in [1i64, 5, 100, -37, 1 << 40] {
            let w = minimal_bit_width(v);
            for bit in 0..w.saturating_sub(1) {
                let c = corrupt_int(v, bit).unwrap();
                assert_eq!(corrupt_int(c, bit), Some(v), "v={v} bit={bit}");
            }
        }
    }

    #[test]
    fn i64_min_magnitude_does_not_wrap() {
        // |i64::MIN| does not fit i64; turning on bit 63 of a large
        // magnitude must not panic or wrap.
        let v = -(1i64 << 62);
        assert_eq!(minimal_bit_width(v), 63);
        // Flipping bit 62 of magnitude 2^62 gives 0 -> -0 = 0.
        assert_eq!(corrupt_int(v, 62), Some(0));
        assert_eq!(corrupt_int(i64::MIN, 63), Some(0));
        // corrupt_int on i64::MIN at a lower bit yields magnitude 2^63 ^ bit
        // which still exceeds i64::MAX -> None, no wrap.
        assert_eq!(corrupt_int(i64::MIN, 0), None);
    }
}
