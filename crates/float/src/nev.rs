//! NaN / extreme-value ("N-EV") classification.
//!
//! The paper (Section V-B) uses the term *extreme values* for "integers or
//! floats whose value is so large that it causes a neural network to collapse
//! when computing with the value", and reports the joint incidence of NaNs
//! and extreme values as "N-EV". This module centralizes that collapse
//! criterion so the corrupter, the training loop, and the experiment harness
//! all agree on it.

use crate::FpValue;
use serde::{Deserialize, Serialize};

/// Kind of undesirable value detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Nev {
    /// Not-a-number.
    NaN,
    /// Positive or negative infinity.
    Inf,
    /// Finite but beyond the policy's extreme-magnitude threshold.
    Extreme,
}

/// Policy deciding what counts as an N-EV.
///
/// The paper never states a numeric threshold; operationally its trainings
/// "collapse when computing some N-EV", i.e. when a weight's magnitude is so
/// large the forward pass overflows. The default threshold 1e30 sits far
/// above any trained-weight magnitude and far below f32 overflow when squared
/// (1e30² overflows f32's 3.4e38), which is exactly the "collapses the
/// network" regime; it is configurable for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NevPolicy {
    /// Finite magnitudes strictly above this are classified [`Nev::Extreme`].
    pub extreme_threshold: f64,
}

impl Default for NevPolicy {
    fn default() -> Self {
        NevPolicy { extreme_threshold: 1e30 }
    }
}

impl NevPolicy {
    /// A policy with a custom extreme-magnitude threshold.
    pub fn with_threshold(extreme_threshold: f64) -> Self {
        NevPolicy { extreme_threshold }
    }

    /// Classify an `f64` value; `None` means the value is benign.
    pub fn classify_f64(&self, v: f64) -> Option<Nev> {
        if v.is_nan() {
            Some(Nev::NaN)
        } else if v.is_infinite() {
            Some(Nev::Inf)
        } else if v.abs() > self.extreme_threshold {
            Some(Nev::Extreme)
        } else {
            None
        }
    }

    /// Classify a stored value at its own precision.
    ///
    /// NaN/Inf are judged at the storage precision (an f16 Inf is an Inf even
    /// though 65504.0 < any f64 threshold); extremeness is judged on the
    /// widened value.
    pub fn classify(&self, v: FpValue) -> Option<Nev> {
        if v.is_nan() {
            return Some(Nev::NaN);
        }
        if v.is_infinite() {
            return Some(Nev::Inf);
        }
        if v.to_f64().abs() > self.extreme_threshold {
            return Some(Nev::Extreme);
        }
        None
    }

    /// True if any value in the slice is an N-EV.
    pub fn any_nev(&self, values: &[f32]) -> bool {
        values.iter().any(|&v| self.classify_f64(v as f64).is_some())
    }

    /// Count N-EVs in the slice.
    pub fn count_nev(&self, values: &[f32]) -> usize {
        values.iter().filter(|&&v| self.classify_f64(v as f64).is_some()).count()
    }
}

/// Classify with the default policy.
pub fn classify(v: f64) -> Option<Nev> {
    NevPolicy::default().classify_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16;

    #[test]
    fn classifies_nan_inf_extreme() {
        let p = NevPolicy::default();
        assert_eq!(p.classify_f64(f64::NAN), Some(Nev::NaN));
        assert_eq!(p.classify_f64(f64::INFINITY), Some(Nev::Inf));
        assert_eq!(p.classify_f64(f64::NEG_INFINITY), Some(Nev::Inf));
        assert_eq!(p.classify_f64(4.49423283715579e307), Some(Nev::Extreme));
        assert_eq!(p.classify_f64(-1e31), Some(Nev::Extreme));
        assert_eq!(p.classify_f64(1e29), None);
        assert_eq!(p.classify_f64(0.0), None);
        assert_eq!(p.classify_f64(-123.456), None);
    }

    #[test]
    fn extremely_small_values_are_benign() {
        // Paper: "the extremely small values that could be generated in the
        // weights of the network are not catastrophic."
        let p = NevPolicy::default();
        assert_eq!(p.classify_f64(1e-300), None);
        assert_eq!(p.classify_f64(f64::MIN_POSITIVE), None);
    }

    #[test]
    fn storage_precision_infinity_counts() {
        let p = NevPolicy::default();
        assert_eq!(p.classify(FpValue::F16(f16::INFINITY)), Some(Nev::Inf));
        assert_eq!(p.classify(FpValue::F16(f16::MAX)), None); // 65504 is finite
        assert_eq!(p.classify(FpValue::F16(f16::NAN)), Some(Nev::NaN));
    }

    #[test]
    fn slice_helpers() {
        let p = NevPolicy::default();
        assert!(!p.any_nev(&[1.0, -2.0, 3.0]));
        assert!(p.any_nev(&[1.0, f32::NAN]));
        assert_eq!(p.count_nev(&[f32::INFINITY, 1.0, f32::NAN]), 2);
    }

    #[test]
    fn custom_threshold() {
        let p = NevPolicy::with_threshold(100.0);
        assert_eq!(p.classify_f64(101.0), Some(Nev::Extreme));
        assert_eq!(p.classify_f64(100.0), None);
    }
}
