//! IEEE-754 field layout per precision — the paper's Figure 2.
//!
//! Bit indices follow the paper's convention: bit 0 is the least-significant
//! mantissa bit, the exponent sits above the mantissa, and the top bit is the
//! sign. E.g. for binary64, mantissa = bits 0..=51, exponent = bits 52..=62
//! (MSB at 62), sign = bit 63.

use serde::{Deserialize, Serialize};

/// Floating-point storage precision of a checkpoint dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary16: 1 sign, 5 exponent, 10 mantissa.
    Fp16,
    /// bfloat16: 1 sign, 8 exponent (binary32's range), 7 mantissa.
    Bf16,
    /// IEEE-754 binary32: 1 sign, 8 exponent, 23 mantissa.
    Fp32,
    /// IEEE-754 binary64: 1 sign, 11 exponent, 52 mantissa.
    Fp64,
}

impl Precision {
    /// Total width in bits (16, 32 or 64).
    pub const fn width(self) -> u32 {
        match self {
            Precision::Fp16 | Precision::Bf16 => 16,
            Precision::Fp32 => 32,
            Precision::Fp64 => 64,
        }
    }

    /// Number of exponent bits (5, 8 or 11).
    pub const fn exponent_bits(self) -> u32 {
        match self {
            Precision::Fp16 => 5,
            Precision::Bf16 | Precision::Fp32 => 8,
            Precision::Fp64 => 11,
        }
    }

    /// Number of mantissa bits (10, 7, 23 or 52).
    pub const fn mantissa_bits(self) -> u32 {
        self.width() - self.exponent_bits() - 1
    }

    /// Construct from a bit width as the injector configuration names it.
    ///
    /// Width 16 is ambiguous since bfloat16 was added: this returns
    /// [`Precision::Fp16`] (the historical meaning) — callers that can
    /// store bfloat16 must name the precision explicitly rather than by
    /// width.
    pub fn from_width(width: u32) -> Option<Self> {
        match width {
            16 => Some(Precision::Fp16),
            32 => Some(Precision::Fp32),
            64 => Some(Precision::Fp64),
            _ => None,
        }
    }

    /// The field layout for this precision.
    pub const fn field_map(self) -> FieldMap {
        let m = self.mantissa_bits();
        let e = self.exponent_bits();
        FieldMap {
            precision: self,
            mantissa_lo: 0,
            mantissa_hi: m - 1,
            exponent_lo: m,
            exponent_hi: m + e - 1,
            sign_bit: m + e,
        }
    }

    /// Bit index of the exponent's most significant bit — the paper's single
    /// "critical bit" whose flip collapses a network (Section V-B1).
    pub const fn exponent_msb(self) -> u32 {
        self.field_map().exponent_hi
    }

    /// Bit index of the sign bit (the topmost bit).
    pub const fn sign_bit(self) -> u32 {
        self.field_map().sign_bit
    }

    /// Mask of the valid bit pattern for this width, as a u64.
    pub const fn bit_mask(self) -> u64 {
        match self {
            Precision::Fp16 | Precision::Bf16 => 0xFFFF,
            Precision::Fp32 => 0xFFFF_FFFF,
            Precision::Fp64 => u64::MAX,
        }
    }
}

/// Inclusive bit-index ranges of the three IEEE-754 fields at one precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldMap {
    /// The precision this map describes.
    pub precision: Precision,
    /// Lowest mantissa bit index (always 0).
    pub mantissa_lo: u32,
    /// Highest mantissa bit index.
    pub mantissa_hi: u32,
    /// Lowest exponent bit index.
    pub exponent_lo: u32,
    /// Highest exponent bit index (the critical bit).
    pub exponent_hi: u32,
    /// Sign bit index.
    pub sign_bit: u32,
}

impl FieldMap {
    /// Which IEEE-754 field the given bit index falls in.
    pub fn classify_bit(&self, bit: u32) -> FloatClass {
        if bit <= self.mantissa_hi {
            FloatClass::Mantissa
        } else if bit <= self.exponent_hi {
            FloatClass::Exponent
        } else if bit == self.sign_bit {
            FloatClass::Sign
        } else {
            FloatClass::OutOfRange
        }
    }
}

/// The IEEE-754 field a bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatClass {
    /// Fraction bits.
    Mantissa,
    /// Biased-exponent bits.
    Exponent,
    /// The sign bit.
    Sign,
    /// Beyond the precision's width.
    OutOfRange,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_layout_matches_paper_figure2() {
        let m = Precision::Fp64.field_map();
        assert_eq!(m.mantissa_lo, 0);
        assert_eq!(m.mantissa_hi, 51);
        assert_eq!(m.exponent_lo, 52);
        assert_eq!(m.exponent_hi, 62);
        assert_eq!(m.sign_bit, 63);
        assert_eq!(Precision::Fp64.exponent_msb(), 62);
    }

    #[test]
    fn fp32_and_fp16_layouts() {
        let m = Precision::Fp32.field_map();
        assert_eq!((m.mantissa_hi, m.exponent_hi, m.sign_bit), (22, 30, 31));
        let m = Precision::Fp16.field_map();
        assert_eq!((m.mantissa_hi, m.exponent_hi, m.sign_bit), (9, 14, 15));
        let m = Precision::Bf16.field_map();
        assert_eq!((m.mantissa_hi, m.exponent_hi, m.sign_bit), (6, 14, 15));
        assert_eq!(Precision::Bf16.exponent_msb(), 14);
    }

    #[test]
    fn classify_bits() {
        let m = Precision::Fp64.field_map();
        assert_eq!(m.classify_bit(0), FloatClass::Mantissa);
        assert_eq!(m.classify_bit(51), FloatClass::Mantissa);
        assert_eq!(m.classify_bit(52), FloatClass::Exponent);
        assert_eq!(m.classify_bit(62), FloatClass::Exponent);
        assert_eq!(m.classify_bit(63), FloatClass::Sign);
        assert_eq!(m.classify_bit(64), FloatClass::OutOfRange);
    }

    #[test]
    fn from_width() {
        assert_eq!(Precision::from_width(16), Some(Precision::Fp16));
        assert_eq!(Precision::from_width(32), Some(Precision::Fp32));
        assert_eq!(Precision::from_width(64), Some(Precision::Fp64));
        assert_eq!(Precision::from_width(8), None);
    }

    #[test]
    fn widths_sum() {
        for p in [Precision::Fp16, Precision::Bf16, Precision::Fp32, Precision::Fp64] {
            assert_eq!(1 + p.exponent_bits() + p.mantissa_bits(), p.width());
        }
    }
}
