//! IEEE-754 binary16 ("half precision") implemented from scratch.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversions use round-to-nearest-even, matching hardware `f32 -> f16`
//! conversion semantics, so checkpoints stored at 16-bit behave like the
//! paper's framework-native float16 tensors.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE-754 binary16 value, stored as its raw bit pattern.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
pub struct f16(u16);

const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// A quiet NaN.
    pub const NAN: f16 = f16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: f16 = f16(0x0400);

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN: preserve NaN-ness (set a mantissa bit if any were set).
            let nan_payload = if man != 0 { 0x0200 } else { 0 };
            return f16(sign | EXP_MASK | nan_payload | ((man >> 13) as u16 & MAN_MASK));
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflow -> infinity.
            return f16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or zero in half precision.
            if half_exp < -10 {
                // Too small: rounds to zero.
                return f16(sign);
            }
            // Add the implicit leading one, then shift into subnormal position.
            let man_with_hidden = man | 0x0080_0000;
            let shift = (14 - half_exp) as u32; // 14..24
            let halfway = 1u32 << (shift - 1);
            let mut half_man = man_with_hidden >> shift;
            let rem = man_with_hidden & ((1 << shift) - 1);
            if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
                half_man += 1; // may carry into the exponent; that is correct.
            }
            return f16(sign | half_man as u16);
        }

        // Normal number: keep top 10 mantissa bits, round-to-nearest-even on
        // the 13 dropped bits.
        let mut out = (sign as u32) | ((half_exp as u32) << MAN_BITS) | (man >> 13);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
            out += 1; // carry may overflow into infinity; that is correct RNE.
        }
        f16(out as u16)
    }

    /// Convert to `f32` (exact; every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let bits = self.0;
        let sign = ((bits & SIGN_MASK) as u32) << 16;
        let exp = ((bits & EXP_MASK) >> MAN_BITS) as i32;
        let man = (bits & MAN_MASK) as u32;

        if exp == 0x1F {
            // Inf / NaN.
            return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
        }
        if exp == 0 {
            if man == 0 {
                return f32::from_bits(sign); // ±0
            }
            // Subnormal: value = man * 2^-24. Normalize so the magnitude's
            // MSB becomes the implicit leading one.
            let lz = man.leading_zeros(); // man != 0, so lz <= 31
            let msb = 31 - lz; // bit position of the magnitude's MSB
            let shifted = man << (MAN_BITS - msb); // MSB now at bit 10 (hidden)
            let new_exp = 127 - 24 + msb; // value = 1.frac * 2^(msb - 24)
            return f32::from_bits(sign | (new_exp << 23) | ((shifted & MAN_MASK as u32) << 13));
        }
        let new_exp = (exp - EXP_BIAS + 127) as u32;
        f32::from_bits(sign | (new_exp << 23) | (man << 13))
    }

    /// Convert from `f64` (via `f32`; double rounding is harmless here
    /// because `f64 -> f32` keeps 29 extra bits beyond half's 10).
    pub fn from_f64(value: f64) -> Self {
        // Direct f64->f16 RNE to avoid double-rounding edge cases entirely.
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            let nan_payload = if man != 0 { 0x0200 } else { 0 };
            return f16(sign | EXP_MASK | nan_payload | ((man >> 42) as u16 & MAN_MASK));
        }
        let unbiased = exp - 1023;
        let half_exp = unbiased + EXP_BIAS;
        if half_exp >= 0x1F {
            return f16(sign | EXP_MASK);
        }
        if half_exp <= 0 {
            if half_exp < -10 {
                return f16(sign);
            }
            let man_with_hidden = man | 0x0010_0000_0000_0000;
            let shift = (43 - half_exp) as u32;
            let halfway = 1u64 << (shift - 1);
            let mut half_man = man_with_hidden >> shift;
            let rem = man_with_hidden & ((1u64 << shift) - 1);
            if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
                half_man += 1;
            }
            return f16(sign | half_man as u16);
        }
        let mut out = (sign as u64) | ((half_exp as u64) << MAN_BITS) | (man >> 42);
        let rem = man & ((1u64 << 42) - 1);
        let halfway = 1u64 << 41;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1;
        }
        f16(out as u16)
    }

    /// Convert to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if this is a NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if this is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True if neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormals and zeros.
    pub fn is_subnormal_or_zero(self) -> bool {
        (self.0 & EXP_MASK) == 0
    }

    /// True if the sign bit is set.
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }
}

impl From<f32> for f16 {
    fn from(v: f32) -> Self {
        f16::from_f32(v)
    }
}

impl From<f16> for f32 {
    fn from(v: f16) -> Self {
        v.to_f32()
    }
}

impl PartialEq for f16 {
    fn eq(&self, other: &Self) -> bool {
        // IEEE semantics: NaN != NaN, +0 == -0.
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for f16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f16({})", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert!(f16::NAN.is_nan());
        assert!(f16::INFINITY.is_infinite());
        assert!(f16::NEG_INFINITY.is_infinite() && f16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn golden_conversions() {
        // Values with exact half representations.
        for &(v, bits) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (0.5, 0x3800),
            (0.25, 0x3400),
            (65504.0, 0x7BFF),
            (6.103_515_6e-5, 0x0400), // min normal
            (5.960_464_5e-8, 0x0001), // min subnormal
        ] {
            assert_eq!(f16::from_f32(v).to_bits(), bits, "from_f32({v})");
            assert_eq!(f16::from_bits(bits).to_f32(), v, "to_f32({bits:#06x})");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half; RNE
        // picks the even mantissa (1.0).
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway).to_bits(), f16::ONE.to_bits());
        // 1 + 3*2^-11 is halfway between two halves with odd lower mantissa;
        // rounds up to 1 + 2^-9.
        let halfway_up = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn overflow_and_underflow() {
        assert!(f16::from_f32(1e6).is_infinite());
        assert!(f16::from_f32(-1e6).is_infinite());
        assert_eq!(f16::from_f32(1e-10).to_bits(), 0); // flush to +0
        assert_eq!(f16::from_f32(-1e-10).to_bits(), 0x8000); // -0
    }

    #[test]
    fn subnormal_roundtrip() {
        for bits in 1u16..0x0400 {
            let v = f16::from_bits(bits);
            assert_eq!(f16::from_f32(v.to_f32()).to_bits(), bits, "subnormal {bits:#06x}");
        }
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip_through_f32() {
        for bits in 0u16..=u16::MAX {
            let v = f16::from_bits(bits);
            if v.is_nan() {
                assert!(f16::from_f32(v.to_f32()).is_nan());
            } else {
                assert_eq!(f16::from_f32(v.to_f32()).to_bits(), bits, "{bits:#06x}");
            }
        }
    }

    #[test]
    fn f64_direct_path_matches_f32_path_on_exact_values() {
        for bits in 0u16..=u16::MAX {
            let v = f16::from_bits(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f16::from_f64(v.to_f64()).to_bits(), bits, "{bits:#06x}");
        }
    }

    #[test]
    fn nan_propagates_payload_flag() {
        let n = f16::from_f32(f32::NAN);
        assert!(n.is_nan());
        let n = f16::from_f64(f64::NAN);
        assert!(n.is_nan());
    }
}
