//! Google "brain float" bfloat16 implemented from scratch.
//!
//! Layout: 1 sign bit, 8 exponent bits (bias 127, same as binary32), 7
//! mantissa bits. A bfloat16 is exactly the top half of a binary32, so
//! widening is a 16-bit left shift and narrowing is round-to-nearest-even
//! on the 16 dropped bits — matching the hardware `f32 -> bf16`
//! conversion semantics of ML accelerators.

use std::cmp::Ordering;
use std::fmt;

/// A bfloat16 value, stored as its raw bit pattern.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
pub struct bf16(u16);

const MAN_BITS: u32 = 7;
const EXP_BIAS: i32 = 127;
const EXP_MASK: u16 = 0x7F80;
const MAN_MASK: u16 = 0x007F;
const SIGN_MASK: u16 = 0x8000;

impl bf16 {
    /// Positive zero.
    pub const ZERO: bf16 = bf16(0);
    /// One.
    pub const ONE: bf16 = bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: bf16 = bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: bf16 = bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: bf16 = bf16(0x7FC0);
    /// Largest finite value (≈ 3.39e38).
    pub const MAX: bf16 = bf16(0x7F7F);
    /// Smallest positive normal value (2^-126).
    pub const MIN_POSITIVE: bf16 = bf16(0x0080);

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        bf16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even on the 16 dropped
    /// bits. The exponent field is shared with binary32, so there is no
    /// range change: overflow to infinity happens only through rounding
    /// carry at the very top of the range.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let truncated = (bits >> 16) as u16;
        if value.is_nan() {
            // Preserve NaN-ness even when truncation would zero the
            // mantissa (payload entirely in the dropped bits).
            let payload = truncated & MAN_MASK;
            let quiet = if payload == 0 { 0x0040 } else { payload };
            return bf16((truncated & (SIGN_MASK | EXP_MASK)) | quiet);
        }
        let rem = bits & 0xFFFF;
        let mut out = truncated;
        if rem > 0x8000 || (rem == 0x8000 && (out & 1) == 1) {
            out = out.wrapping_add(1); // carry into the exponent is correct RNE
        }
        bf16(out)
    }

    /// Convert to `f32` (exact; a bfloat16 is the top half of a binary32).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Convert from `f64` with a single direct round-to-nearest-even
    /// (avoids the double rounding of going through `f32` first).
    pub fn from_f64(value: f64) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            let nan_payload = if man != 0 { 0x0040 } else { 0 };
            return bf16(sign | EXP_MASK | nan_payload | ((man >> 45) as u16 & MAN_MASK));
        }
        let unbiased = exp - 1023;
        let bf_exp = unbiased + EXP_BIAS;
        if bf_exp >= 0xFF {
            return bf16(sign | EXP_MASK);
        }
        if bf_exp <= 0 {
            // Subnormal or zero in bfloat16 (f64 subnormals are far below
            // the bfloat16 subnormal range and flush here too).
            if bf_exp < -(MAN_BITS as i32) {
                return bf16(sign);
            }
            let man_with_hidden = man | 0x0010_0000_0000_0000;
            let shift = (46 - bf_exp) as u32;
            let halfway = 1u64 << (shift - 1);
            let mut sub_man = man_with_hidden >> shift;
            let rem = man_with_hidden & ((1u64 << shift) - 1);
            if rem > halfway || (rem == halfway && (sub_man & 1) == 1) {
                sub_man += 1; // may carry into the exponent; correct RNE
            }
            return bf16(sign | sub_man as u16);
        }
        let mut out = (sign as u64) | ((bf_exp as u64) << MAN_BITS) | (man >> 45);
        let rem = man & ((1u64 << 45) - 1);
        let halfway = 1u64 << 44;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1;
        }
        bf16(out as u16)
    }

    /// Convert to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if this is a NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if this is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True if neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormals and zeros.
    pub fn is_subnormal_or_zero(self) -> bool {
        (self.0 & EXP_MASK) == 0
    }

    /// True if the sign bit is set.
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }
}

impl From<f32> for bf16 {
    fn from(v: f32) -> Self {
        bf16::from_f32(v)
    }
}

impl From<bf16> for f32 {
    fn from(v: bf16) -> Self {
        v.to_f32()
    }
}

impl PartialEq for bf16 {
    fn eq(&self, other: &Self) -> bool {
        // IEEE semantics: NaN != NaN, +0 == -0.
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bf16({})", self.to_f32())
    }
}

impl fmt::Display for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(bf16::ONE.to_f32(), 1.0);
        assert_eq!(bf16::MAX.to_f32(), 3.389_531_4e38);
        assert_eq!(bf16::MIN_POSITIVE.to_f32(), f32::MIN_POSITIVE);
        assert!(bf16::NAN.is_nan());
        assert!(bf16::INFINITY.is_infinite());
        assert!(bf16::NEG_INFINITY.is_infinite() && bf16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn golden_conversions() {
        // Values with exact bfloat16 representations.
        for &(v, bits) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3F80),
            (-2.0, 0xC000),
            (0.5, 0x3F00),
            (0.25, 0x3E80),
            (3.389_531_4e38, 0x7F7F),          // max finite
            (f32::MIN_POSITIVE, 0x0080),       // min normal, 2^-126
            (1.175_494_2e-38 / 128.0, 0x0001), // min subnormal, 2^-133
        ] {
            assert_eq!(bf16::from_f32(v).to_bits(), bits, "from_f32({v})");
            assert_eq!(bf16::from_bits(bits).to_f32(), v, "to_f32({bits:#06x})");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-8 is exactly halfway between 1.0 and the next bfloat16;
        // RNE picks the even mantissa (1.0).
        let halfway = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(bf16::from_f32(halfway).to_bits(), bf16::ONE.to_bits());
        // 1 + 3*2^-8 is halfway between two bfloat16s with odd lower
        // mantissa; rounds up to 1 + 2^-6.
        let halfway_up = 1.0f32 + 3.0 * 2.0f32.powi(-8);
        assert_eq!(bf16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-6));
    }

    #[test]
    fn overflow_and_underflow() {
        // f32::MAX is above the last-bfloat16/infinity midpoint: rounds up.
        assert!(bf16::from_f32(f32::MAX).is_infinite());
        assert!(bf16::from_f64(1e40).is_infinite());
        assert!(bf16::from_f64(-1e40).is_infinite());
        assert_eq!(bf16::from_f64(1e-45).to_bits(), 0); // flush to +0
        assert_eq!(bf16::from_f64(-1e-45).to_bits(), 0x8000); // -0
    }

    #[test]
    fn subnormal_roundtrip() {
        for bits in 1u16..0x0080 {
            let v = bf16::from_bits(bits);
            assert_eq!(bf16::from_f32(v.to_f32()).to_bits(), bits, "subnormal {bits:#06x}");
        }
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip_through_f32() {
        for bits in 0u16..=u16::MAX {
            let v = bf16::from_bits(bits);
            if v.is_nan() {
                assert!(bf16::from_f32(v.to_f32()).is_nan());
            } else {
                assert_eq!(bf16::from_f32(v.to_f32()).to_bits(), bits, "{bits:#06x}");
            }
        }
    }

    #[test]
    fn f64_direct_path_matches_f32_path_on_exact_values() {
        for bits in 0u16..=u16::MAX {
            let v = bf16::from_bits(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(bf16::from_f64(v.to_f64()).to_bits(), bits, "{bits:#06x}");
        }
    }

    #[test]
    fn nan_propagates_payload_flag() {
        let n = bf16::from_f32(f32::NAN);
        assert!(n.is_nan());
        let n = bf16::from_f64(f64::NAN);
        assert!(n.is_nan());
        // A NaN whose payload lives entirely in the dropped low bits must
        // not truncate into an infinity.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(bf16::from_f32(sneaky).is_nan());
    }
}
