//! Bit-level corruption primitives.
//!
//! These are deliberately deterministic: randomness (choosing which bit to
//! flip, or where to place a mask) lives in the injector, which draws from
//! its own seeded stream and passes concrete indices/offsets down here. That
//! split is what makes equivalent injection replayable: a log entry records
//! the concrete bit positions, and replay calls these functions directly.

use crate::fields::Precision;

/// Flip a single bit (by index, 0 = LSB) in a raw bit pattern.
#[inline]
pub fn flip_bit(bits: u64, bit: u32) -> u64 {
    debug_assert!(bit < 64);
    bits ^ (1u64 << bit)
}

/// XOR an aligned mask against a raw bit pattern.
#[inline]
pub fn apply_xor_mask(bits: u64, mask: u64) -> u64 {
    bits ^ mask
}

/// An inclusive range of corruptible bit indices, `first_bit..=last_bit`,
/// within one precision's width — the injector's `bit_range` corruption mode
/// and the instrument of the paper's Figure 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRange {
    /// Lowest corruptible bit index.
    pub first_bit: u32,
    /// Highest corruptible bit index (inclusive).
    pub last_bit: u32,
}

impl BitRange {
    /// A range covering every bit of `p`, sign included.
    pub fn full(p: Precision) -> Self {
        BitRange { first_bit: 0, last_bit: p.width() - 1 }
    }

    /// Every bit except the exponent's most significant bit — the paper's
    /// configuration for all Section V-C experiments ("we omit the most
    /// significant bit of the exponent to ensure that the training was
    /// executed without collapsing").
    ///
    /// Note the sign bit is *also* above the exponent MSB; the paper keeps
    /// the sign bit corruptible (sign flips do not produce extreme values),
    /// so this range excludes exactly one bit and is represented as the
    /// contiguous range below it plus the sign handled by [`BitRange::contains`]
    /// callers via [`SafeBits`]. For the common case the paper uses
    /// `[0, exponent_msb - 1]`; use [`BitRange::below_exponent_msb`] for that.
    pub fn below_exponent_msb(p: Precision) -> Self {
        BitRange { first_bit: 0, last_bit: p.exponent_msb() - 1 }
    }

    /// Mantissa bits only.
    pub fn mantissa_only(p: Precision) -> Self {
        let m = p.field_map();
        BitRange { first_bit: m.mantissa_lo, last_bit: m.mantissa_hi }
    }

    /// Validate against a precision: in-width and non-inverted.
    pub fn validate(&self, p: Precision) -> Result<(), String> {
        if self.first_bit > self.last_bit {
            return Err(format!(
                "bit range inverted: first_bit {} > last_bit {}",
                self.first_bit, self.last_bit
            ));
        }
        if self.last_bit >= p.width() {
            return Err(format!(
                "bit range [{}..={}] exceeds {}-bit precision",
                self.first_bit,
                self.last_bit,
                p.width()
            ));
        }
        Ok(())
    }

    /// Number of selectable bits.
    pub fn len(&self) -> u32 {
        self.last_bit - self.first_bit + 1
    }

    /// True when the range is a single bit.
    pub fn is_empty(&self) -> bool {
        false // inclusive range always holds >= 1 bit
    }

    /// Whether the range includes a bit index.
    pub fn contains(&self, bit: u32) -> bool {
        bit >= self.first_bit && bit <= self.last_bit
    }

    /// The bit index at offset `k` into the range (`k < self.len()`).
    pub fn nth(&self, k: u32) -> u32 {
        debug_assert!(k < self.len());
        self.first_bit + k
    }
}

/// A multi-bit XOR pattern — the injector's `bit_mask` corruption mode.
///
/// The paper (Table I): "A pattern of bits to flip (e.g., 101101), the first
/// bit to apply the mask in each value is randomly selected from
/// `[0, float_precision - length(bit_mask)]`, zeros are padded to both sides
/// of the mask to match `float_precision`, then we XOR the mask against the
/// floating-point value."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    pattern: u64,
    len: u32,
}

impl BitMask {
    /// Parse a binary-string pattern such as `"10110010"`.
    ///
    /// The leftmost character is the pattern's most significant bit. Leading
    /// zeros are significant: they count toward the mask's length (and thus
    /// restrict where it can be placed) even though they flip nothing.
    pub fn parse(pattern: &str) -> Result<Self, String> {
        if pattern.is_empty() {
            return Err("empty bit mask".into());
        }
        if pattern.len() > 64 {
            return Err(format!("bit mask longer than 64 bits: {}", pattern.len()));
        }
        let mut bits = 0u64;
        for c in pattern.chars() {
            bits <<= 1;
            match c {
                '0' => {}
                '1' => bits |= 1,
                other => return Err(format!("invalid bit mask character {other:?}")),
            }
        }
        Ok(BitMask { pattern: bits, len: pattern.len() as u32 })
    }

    /// The mask length in bits (including leading zeros of the pattern).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the pattern has no characters (unreachable after `parse`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 1-bits (how many bits a single application flips).
    pub fn ones(&self) -> u32 {
        self.pattern.count_ones()
    }

    /// Highest valid placement offset for precision `p`:
    /// `float_precision - length(bit_mask)` per the paper.
    pub fn max_offset(&self, p: Precision) -> Result<u32, String> {
        if self.len > p.width() {
            return Err(format!(
                "bit mask of {} bits does not fit {}-bit precision",
                self.len,
                p.width()
            ));
        }
        Ok(p.width() - self.len)
    }

    /// The aligned 64-bit XOR mask produced by placing the pattern with its
    /// least significant bit at `offset`.
    pub fn aligned(&self, offset: u32) -> u64 {
        debug_assert!(offset + self.len <= 64);
        self.pattern << offset
    }

    /// Apply the mask at `offset` to a raw bit pattern.
    pub fn apply(&self, bits: u64, offset: u32) -> u64 {
        bits ^ self.aligned(offset)
    }

    /// Render the pattern back to its binary string.
    pub fn to_pattern_string(&self) -> String {
        (0..self.len).rev().map(|i| if (self.pattern >> i) & 1 == 1 { '1' } else { '0' }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_is_involutive() {
        let v = 0x1234_5678_9ABC_DEF0u64;
        for bit in [0u32, 7, 31, 62, 63] {
            assert_ne!(flip_bit(v, bit), v);
            assert_eq!(flip_bit(flip_bit(v, bit), bit), v);
        }
    }

    #[test]
    fn bit_range_constructors() {
        let r = BitRange::full(Precision::Fp64);
        assert_eq!((r.first_bit, r.last_bit, r.len()), (0, 63, 64));
        let r = BitRange::below_exponent_msb(Precision::Fp64);
        assert_eq!((r.first_bit, r.last_bit), (0, 61));
        assert!(!r.contains(62));
        let r = BitRange::mantissa_only(Precision::Fp32);
        assert_eq!((r.first_bit, r.last_bit), (0, 22));
    }

    #[test]
    fn bit_range_validation() {
        assert!(BitRange { first_bit: 2, last_bit: 63 }.validate(Precision::Fp64).is_ok());
        assert!(BitRange { first_bit: 5, last_bit: 4 }.validate(Precision::Fp64).is_err());
        assert!(BitRange { first_bit: 0, last_bit: 32 }.validate(Precision::Fp32).is_err());
    }

    #[test]
    fn bit_mask_parse_and_roundtrip() {
        let m = BitMask::parse("101101").unwrap();
        assert_eq!(m.len(), 6);
        assert_eq!(m.ones(), 4);
        assert_eq!(m.to_pattern_string(), "101101");
        // Leading zeros count toward length.
        let m = BitMask::parse("00101").unwrap();
        assert_eq!(m.len(), 5);
        assert_eq!(m.ones(), 2);
        assert_eq!(m.to_pattern_string(), "00101");
    }

    #[test]
    fn bit_mask_rejects_bad_input() {
        assert!(BitMask::parse("").is_err());
        assert!(BitMask::parse("10a1").is_err());
        assert!(BitMask::parse(&"1".repeat(65)).is_err());
    }

    #[test]
    fn bit_mask_placement_bounds() {
        let m = BitMask::parse("11101101").unwrap(); // the paper's 6-bit DRAM mask
        assert_eq!(m.max_offset(Precision::Fp64).unwrap(), 56);
        assert_eq!(m.max_offset(Precision::Fp16).unwrap(), 8);
        let wide = BitMask::parse(&"1".repeat(20)).unwrap();
        assert!(wide.max_offset(Precision::Fp16).is_err());
    }

    #[test]
    fn bit_mask_apply_is_involutive_and_positioned() {
        let m = BitMask::parse("101").unwrap();
        let v = 0u64;
        let out = m.apply(v, 4);
        assert_eq!(out, 0b101_0000);
        assert_eq!(m.apply(out, 4), v);
    }

    #[test]
    fn paper_table6_masks_parse() {
        for (bits, pat) in
            [(3u32, "10001010"), (4, "01101010"), (4, "10110010"), (5, "11110001"), (6, "11101101")]
        {
            let m = BitMask::parse(pat).unwrap();
            assert_eq!(m.ones(), bits, "mask {pat}");
            assert_eq!(m.len(), 8);
        }
    }
}
