//! IEEE-754 bit-level utilities for checkpoint fault injection.
//!
//! This crate is the lowest substrate of the reproduction: every corruption
//! mode of the checkpoint corrupter (bit ranges, XOR masks, scaling factors,
//! NaN avoidance) bottoms out in the primitives defined here.
//!
//! It provides:
//!
//! * [`f16`] — IEEE-754 binary16 implemented from scratch (the paper's
//!   Table VII/VIII study 16-bit checkpoints; Rust has no native `f16` on
//!   stable and the external `half` crate is out of the sanctioned set).
//! * [`Precision`] and [`FieldMap`] — sign/exponent/mantissa field layout
//!   for 16/32/64-bit floats (the paper's Figure 2).
//! * [`bits`] — bit-flip, XOR-mask and bit-range primitives operating on the
//!   raw bit patterns of floats of any supported precision.
//! * [`nev`] — NaN / extreme-value ("N-EV") classification, the paper's
//!   collapse criterion (Section V-B).
//! * [`intbits`] — integer corruption with Python `bin()` semantics
//!   (Section IV-B: flip a random bit within the minimal binary width).

#![deny(missing_docs)]

mod bf16_impl;
pub mod bits;
mod f16_impl;
pub mod fields;
pub mod intbits;
pub mod nev;

pub use bf16_impl::bf16;
pub use bits::{apply_xor_mask, flip_bit, BitMask, BitRange};
pub use f16_impl::f16;
pub use fields::{FieldMap, FloatClass, Precision};
pub use intbits::{corrupt_int, minimal_bit_width};
pub use nev::{classify, Nev, NevPolicy};

/// A floating-point value carried at one of the three supported precisions.
///
/// The corrupter operates on *stored* values: a checkpoint dataset declares
/// its element precision, and every corruption must round-trip through that
/// precision's bit pattern. `FpValue` is the common currency between the
/// checkpoint container and the injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FpValue {
    /// IEEE-754 binary16.
    F16(f16),
    /// bfloat16.
    BF16(bf16),
    /// IEEE-754 binary32.
    F32(f32),
    /// IEEE-754 binary64.
    F64(f64),
}

impl FpValue {
    /// The precision this value is stored at.
    pub fn precision(self) -> Precision {
        match self {
            FpValue::F16(_) => Precision::Fp16,
            FpValue::BF16(_) => Precision::Bf16,
            FpValue::F32(_) => Precision::Fp32,
            FpValue::F64(_) => Precision::Fp64,
        }
    }

    /// Raw bit pattern, zero-extended to 64 bits.
    pub fn to_bits(self) -> u64 {
        match self {
            FpValue::F16(v) => v.to_bits() as u64,
            FpValue::BF16(v) => v.to_bits() as u64,
            FpValue::F32(v) => v.to_bits() as u64,
            FpValue::F64(v) => v.to_bits(),
        }
    }

    /// Rebuild a value of precision `p` from a (low-`p.width()`-bits) pattern.
    pub fn from_bits(p: Precision, bits: u64) -> Self {
        match p {
            Precision::Fp16 => FpValue::F16(f16::from_bits(bits as u16)),
            Precision::Bf16 => FpValue::BF16(bf16::from_bits(bits as u16)),
            Precision::Fp32 => FpValue::F32(f32::from_bits(bits as u32)),
            Precision::Fp64 => FpValue::F64(f64::from_bits(bits)),
        }
    }

    /// Widen to `f64` (lossless for all supported precisions).
    pub fn to_f64(self) -> f64 {
        match self {
            FpValue::F16(v) => v.to_f64(),
            FpValue::BF16(v) => v.to_f64(),
            FpValue::F32(v) => v as f64,
            FpValue::F64(v) => v,
        }
    }

    /// Narrow an `f64` into precision `p` (round-to-nearest-even).
    pub fn from_f64(p: Precision, v: f64) -> Self {
        match p {
            Precision::Fp16 => FpValue::F16(f16::from_f64(v)),
            Precision::Bf16 => FpValue::BF16(bf16::from_f64(v)),
            Precision::Fp32 => FpValue::F32(v as f32),
            Precision::Fp64 => FpValue::F64(v),
        }
    }

    /// True if the value is NaN at its stored precision.
    pub fn is_nan(self) -> bool {
        match self {
            FpValue::F16(v) => v.is_nan(),
            FpValue::BF16(v) => v.is_nan(),
            FpValue::F32(v) => v.is_nan(),
            FpValue::F64(v) => v.is_nan(),
        }
    }

    /// True if the value is ±∞ at its stored precision.
    pub fn is_infinite(self) -> bool {
        match self {
            FpValue::F16(v) => v.is_infinite(),
            FpValue::BF16(v) => v.is_infinite(),
            FpValue::F32(v) => v.is_infinite(),
            FpValue::F64(v) => v.is_infinite(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpvalue_roundtrips_through_bits() {
        let cases = [0.0, -0.0, 0.25, 1.0, -3.5, 1e-3];
        for &c in &cases {
            for p in [Precision::Fp16, Precision::Bf16, Precision::Fp32, Precision::Fp64] {
                let v = FpValue::from_f64(p, c);
                let b = v.to_bits();
                let v2 = FpValue::from_bits(p, b);
                assert_eq!(v, v2, "precision {p:?} value {c}");
            }
        }
    }

    #[test]
    fn paper_exponent_msb_example() {
        // Section V-B: 0.25 in binary64 has exponent 01111111101; flipping
        // the exponent MSB (bit 62) yields 4.49423283715579e+307.
        let v = 0.25f64;
        let flipped = f64::from_bits(flip_bit(v.to_bits(), 62));
        assert!((flipped - 4.49423283715579e307).abs() / flipped < 1e-12);
    }

    #[test]
    fn precision_reported() {
        assert_eq!(FpValue::from_f64(Precision::Fp16, 1.0).precision(), Precision::Fp16);
        assert_eq!(FpValue::from_f64(Precision::Bf16, 1.0).precision(), Precision::Bf16);
        assert_eq!(FpValue::from_f64(Precision::Fp32, 1.0).precision(), Precision::Fp32);
        assert_eq!(FpValue::from_f64(Precision::Fp64, 1.0).precision(), Precision::Fp64);
    }

    #[test]
    fn nan_and_inf_detection_per_precision() {
        let nan16 = FpValue::F16(f16::NAN);
        assert!(nan16.is_nan() && !nan16.is_infinite());
        let nanb = FpValue::BF16(bf16::NAN);
        assert!(nanb.is_nan() && !nanb.is_infinite());
        let infb = FpValue::BF16(bf16::INFINITY);
        assert!(infb.is_infinite() && !infb.is_nan());
        let inf32 = FpValue::F32(f32::INFINITY);
        assert!(inf32.is_infinite() && !inf32.is_nan());
    }
}
