//! AlexNet, CIFAR-shaped: 5 convolutional layers + 3 fully connected
//! (Krizhevsky et al.; the paper's smallest model, used for the per-layer
//! and propagation studies precisely because it "has the fewest number of
//! layers of the three neural networks", Section V-F).
//!
//! The ImageNet stem (11×11 stride-4 kernels) is replaced by the standard
//! CIFAR adaptation (3×3 stride-1), keeping the layer count and ordering:
//! conv1 … conv5, fc6, fc7, fc8.

use crate::meta::{ModelKind, ModelMeta};
use crate::ModelConfig;
use sefi_nn::{Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU};
use sefi_rng::DetRng;

/// Build AlexNet. Returns the network and its layer metadata
/// (first = `conv1`, middle = `conv4`, last = `fc8` — the layers the paper
/// injects in Figures 4–6).
pub fn alexnet(config: ModelConfig, rng: &mut DetRng) -> (Network, ModelMeta) {
    assert!(config.input_size.is_multiple_of(8), "AlexNet needs input divisible by 8");
    let c1 = config.ch(64);
    let c2 = config.ch(192);
    let c3 = config.ch(384);
    let c4 = config.ch(256);
    let c5 = config.ch(256);
    let f6 = config.ch(4096);
    let f7 = config.ch(4096);
    let spatial = config.input_size / 8; // three 2× pools
    let flat = c5 * spatial * spatial;

    let net = Network::new(vec![
        // First layer: nothing consumes its input gradient, skip it.
        Box::new(Conv2d::new("conv1", 3, c1, 3, 1, 1, rng).skip_input_grad()),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2, 2)),
        Box::new(Conv2d::new("conv2", c1, c2, 3, 1, 1, rng)),
        Box::new(ReLU::new("relu2")),
        Box::new(MaxPool2d::new("pool2", 2, 2)),
        Box::new(Conv2d::new("conv3", c2, c3, 3, 1, 1, rng)),
        Box::new(ReLU::new("relu3")),
        Box::new(Conv2d::new("conv4", c3, c4, 3, 1, 1, rng)),
        Box::new(ReLU::new("relu4")),
        Box::new(Conv2d::new("conv5", c4, c5, 3, 1, 1, rng)),
        Box::new(ReLU::new("relu5")),
        Box::new(MaxPool2d::new("pool5", 2, 2)),
        Box::new(Flatten::new("flatten")),
        Box::new(Dense::new("fc6", flat, f6, rng)),
        Box::new(ReLU::new("relu6")),
        Box::new(Dense::new("fc7", f6, f7, rng)),
        Box::new(ReLU::new("relu7")),
        Box::new(Dense::new("fc8", f7, config.num_classes, rng)),
    ]);

    let meta = ModelMeta {
        kind: ModelKind::AlexNet,
        weight_layers: ["conv1", "conv2", "conv3", "conv4", "conv5", "fc6", "fc7", "fc8"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        first_layer: "conv1".into(),
        middle_layer: "conv4".into(),
        last_layer: "fc8".into(),
    };
    (net, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eight_weight_layers() {
        let mut rng = DetRng::new(1);
        let (_, meta) = alexnet(ModelConfig::default(), &mut rng);
        assert_eq!(meta.weight_layers.len(), 8);
        assert_eq!(meta.first_layer, "conv1");
        assert_eq!(meta.middle_layer, "conv4");
        assert_eq!(meta.last_layer, "fc8");
    }

    #[test]
    fn full_width_parameter_count_matches_alexnet_order_of_magnitude() {
        // Full-scale CIFAR AlexNet: the FC layers dominate; the paper quotes
        // 61 M for the ImageNet variant. The CIFAR stem shrinks conv1 and
        // fc6's input, so expect tens of millions.
        let mut rng = DetRng::new(1);
        let (mut net, _) =
            alexnet(ModelConfig { scale: 1.0, input_size: 32, num_classes: 10 }, &mut rng);
        let n = net.num_parameters();
        assert!(n > 20_000_000, "full AlexNet has {n} params");
    }
}
