//! The paper's three neural-network models, CIFAR-shaped.
//!
//! * **AlexNet** — 8 layers: 5 convolutional + 3 fully connected
//!   (Section III-A; 61 M parameters at full width).
//! * **VGG16** — 16 layers: 13 convolutional + 3 fully connected
//!   (138 M parameters at full width).
//! * **ResNet50** — a 50-layer residual network: a stem convolution,
//!   16 bottleneck blocks (3+4+6+3) of 3 convolutions each, and a final
//!   dense layer (26 M parameters at full width).
//!
//! All three accept CIFAR-10 geometry (3×32×32, 10 classes). A
//! **width scale** shrinks every channel/feature count proportionally so
//! the experiment harness can run hundreds of trainings on CPU; at
//! `scale = 1.0` the full-width architectures are produced (DESIGN.md §1
//! documents why per-bit sensitivity phenomena are width-independent).

#![deny(missing_docs)]

mod alexnet;
mod meta;
mod resnet;
mod vgg;

pub use alexnet::alexnet;
pub use meta::{LayerRole, ModelKind, ModelMeta};
pub use resnet::resnet50;
pub use vgg::vgg16;

use sefi_nn::Network;
use sefi_rng::DetRng;

/// Model construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Channel/feature width multiplier (1.0 = paper-size architecture).
    pub scale: f64,
    /// Input spatial extent (CIFAR-10: 32).
    pub input_size: usize,
    /// Number of output classes (CIFAR-10: 10).
    pub num_classes: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { scale: 0.125, input_size: 32, num_classes: 10 }
    }
}

impl ModelConfig {
    /// Scale a full-width channel count, with a floor of 4 so tiny scales
    /// keep blocks functional.
    pub fn ch(&self, full_width: usize) -> usize {
        ((full_width as f64 * self.scale).round() as usize).max(4)
    }
}

/// Build a model by kind.
pub fn build(kind: ModelKind, config: ModelConfig, rng: &mut DetRng) -> (Network, ModelMeta) {
    match kind {
        ModelKind::AlexNet => alexnet(config, rng),
        ModelKind::Vgg16 => vgg16(config, rng),
        ModelKind::ResNet50 => resnet50(config, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scaling_has_floor() {
        let c = ModelConfig { scale: 0.01, input_size: 32, num_classes: 10 };
        assert_eq!(c.ch(64), 4);
        let c = ModelConfig { scale: 1.0, input_size: 32, num_classes: 10 };
        assert_eq!(c.ch(64), 64);
        let c = ModelConfig { scale: 0.125, input_size: 32, num_classes: 10 };
        assert_eq!(c.ch(64), 8);
    }
}
