//! Model metadata: the map from architectural positions ("the first
//! convolutional layer") to engine layer names, which the experiments use
//! to target injections (paper Figures 4–6).

/// Which of the paper's three models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// 5 conv + 3 FC.
    AlexNet,
    /// 13 conv + 3 FC.
    Vgg16,
    /// Stem + 16 bottlenecks + FC.
    ResNet50,
}

impl ModelKind {
    /// Lower-case identifier used in checkpoint names and tables.
    pub fn id(self) -> &'static str {
        match self {
            ModelKind::AlexNet => "alexnet",
            ModelKind::Vgg16 => "vgg16",
            ModelKind::ResNet50 => "resnet50",
        }
    }

    /// All three, in the paper's table order.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::ResNet50, ModelKind::Vgg16, ModelKind::AlexNet]
    }
}

/// Structural position of a layer within a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerRole {
    /// The model's first weight layer (paper: "layer 1 (convolutional)").
    First,
    /// The designated middle weight layer (AlexNet: layer 4).
    Middle,
    /// The final weight layer (AlexNet: layer 8, fully connected).
    Last,
}

/// Metadata describing a constructed model.
#[derive(Debug, Clone)]
pub struct ModelMeta {
    /// Which architecture.
    pub kind: ModelKind,
    /// Engine names of all weight-bearing layers, in forward order.
    /// For composite layers the name is the top-level layer (the residual
    /// block), which is also the checkpoint group that contains it.
    pub weight_layers: Vec<String>,
    /// Engine layer name for the first weight layer.
    pub first_layer: String,
    /// Engine layer name for the middle weight layer.
    pub middle_layer: String,
    /// Engine layer name for the last weight layer.
    pub last_layer: String,
}

impl ModelMeta {
    /// Engine layer name for a structural role.
    pub fn layer_for_role(&self, role: LayerRole) -> &str {
        match role {
            LayerRole::First => &self.first_layer,
            LayerRole::Middle => &self.middle_layer,
            LayerRole::Last => &self.last_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable() {
        assert_eq!(ModelKind::AlexNet.id(), "alexnet");
        assert_eq!(ModelKind::Vgg16.id(), "vgg16");
        assert_eq!(ModelKind::ResNet50.id(), "resnet50");
        assert_eq!(ModelKind::all().len(), 3);
    }
}
