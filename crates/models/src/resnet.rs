//! ResNet50, CIFAR-shaped: stem convolution, four stages of bottleneck
//! blocks (3 + 4 + 6 + 3 = 16 blocks × 3 convolutions), global average
//! pooling, and a dense classifier — 50 weight layers (He et al.). The
//! paper's only residual model ("shortcuts or skip connections to move
//! between layers", Section III-A).
//!
//! Block names follow the original nomenclature: `res2a` … `res5c`, with
//! inner convolutions `conv1`/`conv2`/`conv3` and projection `proj`.

use crate::meta::{ModelKind, ModelMeta};
use crate::ModelConfig;
use sefi_nn::{AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, Layer, Network, ReLU, Residual};
use sefi_rng::DetRng;

/// (stage base width, block count); output channels are 4× the base.
const STAGES: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
const EXPANSION: usize = 4;

fn bottleneck(name: &str, in_ch: usize, base: usize, stride: usize, rng: &mut DetRng) -> Residual {
    let out_ch = base * EXPANSION;
    let main: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("conv1", in_ch, base, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new("bn1", base)),
        Box::new(ReLU::new("relu1")),
        Box::new(Conv2d::new("conv2", base, base, 3, stride, 1, rng)),
        Box::new(BatchNorm2d::new("bn2", base)),
        Box::new(ReLU::new("relu2")),
        Box::new(Conv2d::new("conv3", base, out_ch, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new("bn3", out_ch)),
    ];
    let shortcut: Vec<Box<dyn Layer>> = if stride != 1 || in_ch != out_ch {
        vec![
            Box::new(Conv2d::new("proj", in_ch, out_ch, 1, stride, 0, rng)),
            Box::new(BatchNorm2d::new("proj_bn", out_ch)),
        ]
    } else {
        vec![]
    };
    Residual::new(name, main, shortcut)
}

/// Build ResNet50. First = the stem `conv1`, middle = block `res3d`
/// (the 8th of 16 bottlenecks), last = the classifier `fc`.
pub fn resnet50(config: ModelConfig, rng: &mut DetRng) -> (Network, ModelMeta) {
    assert!(config.input_size.is_multiple_of(8), "ResNet50 needs input divisible by 8");
    let stem = config.ch(64);
    let mut layers: Vec<Box<dyn Layer>> = vec![
        // CIFAR stem: 3×3 stride 1 (the ImageNet 7×7/2 + maxpool would
        // collapse 32×32 inputs too aggressively).
        // First layer: nothing consumes its input gradient, skip it.
        Box::new(Conv2d::new("conv1", 3, stem, 3, 1, 1, rng).skip_input_grad()),
        Box::new(BatchNorm2d::new("bn1", stem)),
        Box::new(ReLU::new("relu1")),
    ];
    let mut weight_layers = vec!["conv1".to_string()];
    let mut in_ch = stem;

    for (s, &(full_base, blocks)) in STAGES.iter().enumerate() {
        let base = config.ch(full_base);
        for b in 0..blocks {
            // Stage 2 keeps stride 1 (its first block only projects
            // channels); stages 3-5 downsample in their first block.
            let stride = if b == 0 && s > 0 { 2 } else { 1 };
            let name = format!("res{}{}", s + 2, (b'a' + b as u8) as char);
            layers.push(Box::new(bottleneck(&name, in_ch, base, stride, rng)));
            weight_layers.push(name);
            in_ch = base * EXPANSION;
        }
    }

    // Three stage transitions halve the spatial extent.
    let spatial = config.input_size / 8;
    layers.push(Box::new(AvgPool2d::new("global_pool", spatial, spatial)));
    layers.push(Box::new(Flatten::new("flatten")));
    layers.push(Box::new(Dense::new("fc", in_ch, config.num_classes, rng)));
    weight_layers.push("fc".to_string());

    let meta = ModelMeta {
        kind: ModelKind::ResNet50,
        first_layer: "conv1".into(),
        middle_layer: "res3d".into(),
        last_layer: "fc".into(),
        weight_layers,
    };
    (Network::new(layers), meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_stem_sixteen_blocks_and_fc() {
        let mut rng = DetRng::new(1);
        let (_, meta) = resnet50(ModelConfig::default(), &mut rng);
        assert_eq!(meta.weight_layers.len(), 1 + 16 + 1);
        assert_eq!(meta.weight_layers[1], "res2a");
        assert_eq!(meta.weight_layers[16], "res5c");
        assert_eq!(meta.middle_layer, "res3d");
    }

    #[test]
    fn fifty_weight_layer_count() {
        // 1 stem + 16 blocks × 3 convs + 1 fc = 50 weight layers; blocks
        // with projections add their shortcut conv on top.
        let mut rng = DetRng::new(1);
        let (mut net, _) = resnet50(ModelConfig::default(), &mut rng);
        let conv_and_fc = net.params_mut().iter().filter(|p| p.name.ends_with("/W")).count();
        // 1 + 48 + 1 = 50 core weight layers, plus 4 projection convs.
        assert_eq!(conv_and_fc, 54);
    }
}
