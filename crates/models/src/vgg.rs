//! VGG16, CIFAR-shaped: 13 convolutional layers in five pooled blocks plus
//! three fully connected layers (Simonyan & Zisserman). The paper singles
//! out VGG16's "large size, no skip connections" as the reason it absorbs
//! more bit-flips than the other models (Section V-B2).
//!
//! Layer names follow the TensorFlow/Keras convention the paper quotes in
//! its equivalent-injection example: `block1_conv1` … `block5_conv3`.

use crate::meta::{ModelKind, ModelMeta};
use crate::ModelConfig;
use sefi_nn::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Network, ReLU};
use sefi_rng::DetRng;

/// Channels per block at full width.
const BLOCKS: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];

/// Build VGG16. First = `block1_conv1`, middle = `block3_conv1` (the 7th of
/// 13 convolutions), last = `fc3`.
pub fn vgg16(config: ModelConfig, rng: &mut DetRng) -> (Network, ModelMeta) {
    assert!(
        config.input_size >= 8 && config.input_size.is_power_of_two(),
        "VGG16 needs a power-of-two input of at least 8"
    );
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut weight_layers = Vec::new();
    let mut in_ch = 3usize;
    let mut spatial = config.input_size;

    for (b, &(full, convs)) in BLOCKS.iter().enumerate() {
        let out_ch = config.ch(full);
        for c in 0..convs {
            let name = format!("block{}_conv{}", b + 1, c + 1);
            let conv = Conv2d::new(&name, in_ch, out_ch, 3, 1, 1, rng);
            // The very first conv's input gradient is never consumed.
            let conv = if layers.is_empty() { conv.skip_input_grad() } else { conv };
            layers.push(Box::new(conv));
            layers.push(Box::new(ReLU::new(&format!("block{}_relu{}", b + 1, c + 1))));
            weight_layers.push(name);
            in_ch = out_ch;
        }
        // At 32×32 all five block pools fire (32 → 1), the standard CIFAR
        // adaptation; smaller experiment inputs skip trailing pools once
        // the spatial extent bottoms out at 1.
        if spatial >= 2 {
            layers.push(Box::new(MaxPool2d::new(&format!("block{}_pool", b + 1), 2, 2)));
            spatial /= 2;
        }
    }

    let flat = in_ch * spatial * spatial;
    let f1 = config.ch(4096);
    let f2 = config.ch(4096);
    layers.push(Box::new(Flatten::new("flatten")));
    layers.push(Box::new(Dense::new("fc1", flat, f1, rng)));
    layers.push(Box::new(ReLU::new("fc1_relu")));
    layers.push(Box::new(Dense::new("fc2", f1, f2, rng)));
    layers.push(Box::new(ReLU::new("fc2_relu")));
    layers.push(Box::new(Dense::new("fc3", f2, config.num_classes, rng)));
    for fc in ["fc1", "fc2", "fc3"] {
        weight_layers.push(fc.to_string());
    }

    let meta = ModelMeta {
        kind: ModelKind::Vgg16,
        first_layer: "block1_conv1".into(),
        middle_layer: "block3_conv1".into(),
        last_layer: "fc3".into(),
        weight_layers,
    };
    (Network::new(layers), meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_sixteen_weight_layers() {
        let mut rng = DetRng::new(1);
        let (_, meta) = vgg16(ModelConfig::default(), &mut rng);
        assert_eq!(meta.weight_layers.len(), 16); // 13 conv + 3 fc
        assert_eq!(meta.weight_layers[0], "block1_conv1");
        assert_eq!(meta.weight_layers[12], "block5_conv3");
        assert_eq!(meta.last_layer, "fc3");
    }

    #[test]
    fn vgg_is_the_largest_model() {
        // Paper: VGG16 has ~138 M parameters, the largest of the three.
        let mut rng = DetRng::new(1);
        let cfg = ModelConfig { scale: 0.125, input_size: 32, num_classes: 10 };
        let (mut v, _) = vgg16(cfg, &mut rng);
        let (mut a, _) = crate::alexnet(cfg, &mut DetRng::new(1));
        let (mut r, _) = crate::resnet50(cfg, &mut DetRng::new(1));
        let nv = v.num_parameters();
        assert!(nv > r.num_parameters(), "VGG must outsize ResNet50");
        // At CIFAR geometry AlexNet's fc6 is smaller than ImageNet's, so VGG
        // dominates it as well.
        assert!(nv > a.num_parameters() / 2, "sanity: VGG within range of AlexNet");
    }
}
