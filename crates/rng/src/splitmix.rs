//! SplitMix64 — the canonical seeder for xoshiro-family generators.
//!
//! Reference: Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>.

/// A SplitMix64 generator. Primarily used to expand a single `u64` seed
/// into the 256-bit state of [`crate::Xoshiro256StarStar`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output. Named after the reference implementation's
    /// `next()`; this is a generator step, not an `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_outputs_for_seed_zero() {
        // First three outputs of splitmix64 with seed 0, from the reference
        // implementation.
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn reference_outputs_for_seed_42() {
        let mut s = SplitMix64::new(42);
        let a = s.next();
        let b = s.next();
        assert_ne!(a, b);
        // Stability pin.
        let mut s2 = SplitMix64::new(42);
        assert_eq!(s2.next(), a);
        assert_eq!(s2.next(), b);
    }
}
