//! xoshiro256\*\* — the core generator.
//!
//! Reference: Blackman & Vigna, <https://prng.di.unimi.it/xoshiro256starstar.c>.
//! Chosen for its 256-bit state (period 2^256 − 1), excellent statistical
//! quality, and a trivially portable implementation we fully control — the
//! determinism contract of the experiments (Section V-A3 of the paper)
//! forbids relying on external generators whose streams may change between
//! library versions.

use crate::SplitMix64;

/// xoshiro256\*\* state.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed by expanding a `u64` through SplitMix64, per the authors'
    /// recommendation (avoids the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar { s: [mix.next(), mix.next(), mix.next(), mix.next()] }
    }

    /// Construct directly from 256 bits of state. The all-zero state is
    /// invalid and is replaced by a SplitMix64 expansion of 0.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Self::seed_from_u64(0)
        } else {
            Xoshiro256StarStar { s }
        }
    }

    /// A fingerprint of the current state, used for substream derivation.
    pub fn state_fingerprint(&self) -> u64 {
        self.s[0].wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(self.s[1].rotate_left(17))
            ^ self.s[2].rotate_left(31)
            ^ self.s[3]
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256** with state {1,2,3,4}: first outputs from the
        // reference C implementation.
        let mut g = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected: [u64; 5] = [11520, 0, 1509978240, 1215971899390074240, 1216172134540287360];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn zero_state_is_repaired() {
        let mut g = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
        // Must not be the degenerate all-zero stream.
        assert!((0..8).any(|_| g.next_u64() != 0));
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(123);
        let mut b = Xoshiro256StarStar::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let a = Xoshiro256StarStar::seed_from_u64(1);
        let b = Xoshiro256StarStar::seed_from_u64(2);
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
    }
}
