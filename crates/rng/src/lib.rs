//! Deterministic random-number substrate.
//!
//! The paper (Section V-A3, Code 1) goes to great lengths to make the DL
//! frameworks deterministic, because error-injection studies compare a
//! corrupted resume against a bit-identical error-free baseline. This crate
//! is the reproduction's single source of randomness: a from-scratch
//! xoshiro256\*\* generator with splitmix64 seeding, so results are
//! bit-stable across platforms, Rust versions, and dependency upgrades
//! (which `rand::StdRng` explicitly does not guarantee).
//!
//! Two facilities keep experiments independent:
//!
//! * [`DetRng::substream`] derives an independent named stream, so e.g. the
//!   injector's draws can never perturb the training loop's draws (the
//!   checkpoint-alteration methodology requires training to be *identical*
//!   up to the corrupted weights).
//! * All distributions are implemented here (uniform, normal via
//!   Box–Muller, Bernoulli, Fisher–Yates shuffles) with fixed algorithms.

#![deny(missing_docs)]

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// The deterministic RNG used throughout the reproduction.
///
/// Wraps xoshiro256\*\* and layers distributions plus named substream
/// derivation on top.
#[derive(Debug, Clone)]
pub struct DetRng {
    core: Xoshiro256StarStar,
}

impl DetRng {
    /// Seed a generator. Equal seeds yield bit-identical streams forever.
    pub fn new(seed: u64) -> Self {
        DetRng { core: Xoshiro256StarStar::seed_from_u64(seed) }
    }

    /// Derive an independent generator for a named purpose.
    ///
    /// The derivation hashes the label into the parent's seed material via
    /// splitmix64, so `substream("init")` and `substream("batch")` are
    /// decorrelated, and drawing from one never advances the other.
    /// Deriving is a pure function of (parent seed material, label): it does
    /// not advance the parent.
    pub fn substream(&self, label: &str) -> DetRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut mix = SplitMix64::new(self.core.state_fingerprint() ^ h);
        DetRng {
            core: Xoshiro256StarStar::from_state([mix.next(), mix.next(), mix.next(), mix.next()]),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Unbiased uniform integer in `[0, n)` via Lemire's multiply-shift with
    /// rejection. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (each call consumes exactly two
    /// uniforms — no cached spare — keeping parallel streams alignable).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A shuffled permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }

    /// Fill a buffer with normals (weight-init helper).
    pub fn fill_normal(&mut self, buf: &mut [f32], mean: f64, std_dev: f64) {
        for v in buf {
            *v = self.normal_ms(mean, std_dev) as f32;
        }
    }

    /// Fill a buffer with uniforms in `[lo, hi)`.
    pub fn fill_uniform(&mut self, buf: &mut [f32], lo: f64, hi: f64) {
        for v in buf {
            *v = self.uniform_range(lo, hi) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let root = DetRng::new(7);
        let mut s1 = root.substream("injector");
        let mut s1_again = root.substream("injector");
        let mut s2 = root.substream("training");
        let v1 = s1.next_u64();
        assert_eq!(v1, s1_again.next_u64());
        assert_ne!(v1, s2.next_u64());
    }

    #[test]
    fn substream_derivation_does_not_advance_parent() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        let _ = b.substream("x");
        let _ = b.substream("y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut r = DetRng::new(5);
        let n = 10u64;
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let v = r.below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - expected).abs() < expected * 0.1, "bucket {i}: {c} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_rate_and_clamping() {
        let mut r = DetRng::new(13);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.5));
        assert!(!r.bernoulli(-0.5));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = DetRng::new(17);
        let p = r.permutation(100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_empty_and_single() {
        let mut r = DetRng::new(19);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn stream_is_reproducible_from_scratch() {
        let mut r = DetRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = DetRng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(got, again);
        assert_ne!(got[0], got[1]);
    }
}
