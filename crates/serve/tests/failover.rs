//! Failover integrity: a replica killed mid-stream must cost zero
//! answers — nothing dropped, nothing double-answered, nothing wrong.

use sefi_frameworks::{save_checkpoint, FrameworkKind};
use sefi_hdf5::{Dtype, EccSidecar};
use sefi_models::{build, ModelConfig, ModelKind};
use sefi_rng::DetRng;
use sefi_serve::{
    calibrate_from_clean_bytes, corpus_images, flip_exponent_msb, BatchQueue, EngineConfig,
    EnvelopeCache, ReplicaSpec, Request, ServeEngine,
};
use sefi_tensor::Tensor;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const INPUT: usize = 16;

fn test_dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sefi-serve-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn engine_config(dtype: Dtype) -> EngineConfig {
    EngineConfig {
        fw: FrameworkKind::Chainer,
        model: ModelKind::AlexNet,
        model_config: ModelConfig { scale: 0.05, input_size: INPUT, num_classes: 10 },
        dtype,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        guard_slack: 0.5,
    }
}

fn mint_checkpoint(cfg: &EngineConfig) -> (Vec<u8>, EccSidecar) {
    let (mut net, _) = build(cfg.model, cfg.model_config, &mut DetRng::new(0xFA11));
    let bytes = save_checkpoint(cfg.fw, &mut net, 1, cfg.dtype).to_bytes_v2();
    let sidecar = EccSidecar::protect(&bytes).unwrap();
    (bytes, sidecar)
}

fn calib_batches(cfg: &EngineConfig, corpus: &[Vec<f32>]) -> Vec<Tensor> {
    corpus
        .chunks(cfg.max_batch)
        .map(|chunk| {
            let mut data = Vec::new();
            for img in chunk {
                data.extend_from_slice(img);
            }
            Tensor::from_vec(data, &[chunk.len(), 3, INPUT, INPUT])
        })
        .collect()
}

fn make_engine(
    cfg: &EngineConfig,
    dir: &std::path::Path,
    clean_bytes: &[u8],
    sidecar: &EccSidecar,
    replicas: usize,
    corrupt: Option<usize>,
    batches: &[Tensor],
) -> Arc<ServeEngine> {
    let mut specs = Vec::new();
    for r in 0..replicas {
        let path = dir.join(format!("replica_{r}.h5"));
        let mut bytes = clean_bytes.to_vec();
        if corrupt == Some(r) {
            flip_exponent_msb(&mut bytes, "predictor/conv1/W").unwrap();
        }
        std::fs::write(&path, &bytes).unwrap();
        specs.push(ReplicaSpec { path, sidecar: Some(sidecar.clone()) });
    }
    let env = Arc::new(calibrate_from_clean_bytes(cfg, clean_bytes, batches).unwrap());
    Arc::new(ServeEngine::new(cfg.clone(), &specs, env, batches[0].clone(), None, "test").unwrap())
}

fn requests(corpus: &[Vec<f32>], n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request { id: i as u64, tag: 0, image: corpus[i % corpus.len()].clone() })
        .collect()
}

#[test]
fn kill_replica_mid_stream_drops_and_duplicates_nothing() {
    let dir = test_dir("kill");
    let cfg = engine_config(Dtype::F32);
    let (clean_bytes, sidecar) = mint_checkpoint(&cfg);
    let corpus = corpus_images(32, INPUT, 7);
    let batches = calib_batches(&cfg, &corpus);

    // Ground truth from a clean single-replica engine.
    let clean_engine = make_engine(&cfg, &dir, &clean_bytes, &sidecar, 1, None, &batches);
    let reqs = requests(&corpus, 64);
    let clean: HashMap<u64, u32> = clean_engine
        .serve_deterministic(&reqs, cfg.max_batch)
        .into_iter()
        .map(|a| (a.id, a.class))
        .collect();

    // Async pool: 2 workers over 2 replicas; both replicas are poisoned
    // in memory mid-stream ("killed mid-batch" — whichever batch is in
    // flight, the next guarded pass trips and recovery reloads from the
    // clean files).
    let engine = make_engine(&cfg, &dir, &clean_bytes, &sidecar, 2, None, &batches);
    let queue = Arc::new(BatchQueue::new());
    let (tx, rx) = std::sync::mpsc::channel();
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            std::thread::spawn(move || {
                engine.run_worker(w, &queue, |a| tx.send(a).unwrap());
            })
        })
        .collect();
    drop(tx);

    for r in &reqs[..32] {
        assert!(queue.push(r.clone()));
    }
    engine.poison_replica(0);
    engine.poison_replica(1);
    for r in &reqs[32..] {
        assert!(queue.push(r.clone()));
    }
    queue.close();
    for h in workers {
        h.join().unwrap();
    }

    let mut seen: HashMap<u64, u32> = HashMap::new();
    for a in rx {
        assert!(seen.insert(a.id, a.class).is_none(), "request {} answered twice", a.id);
    }
    assert_eq!(seen.len(), reqs.len(), "every request answered exactly once");
    for (id, class) in &seen {
        assert_eq!(class, &clean[id], "request {id} got a wrong answer");
    }
    let totals = engine.totals();
    assert!(totals.guard_trips >= 1, "poisoned replicas must trip");
    assert!(totals.reloads >= 1, "recovery must reload");
    assert_eq!(engine.healthy(), vec![true, true], "clean files readmit both replicas");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupted_file_replica_serves_clean_answers_deterministically() {
    let dir = test_dir("det");
    let cfg = engine_config(Dtype::F32);
    let (clean_bytes, sidecar) = mint_checkpoint(&cfg);
    let corpus = corpus_images(32, INPUT, 7);
    let batches = calib_batches(&cfg, &corpus);
    let reqs = requests(&corpus, 48);

    let clean_engine = make_engine(&cfg, &dir, &clean_bytes, &sidecar, 2, None, &batches);
    let clean: Vec<_> = clean_engine
        .serve_deterministic(&reqs, cfg.max_batch)
        .into_iter()
        .map(|a| (a.id, a.class))
        .collect();
    assert_eq!(clean_engine.totals().guard_trips, 0, "clean replicas never trip");

    // Same corpus, replica 1's file carries an exponent-MSB flip. Twice:
    // answers must be identical run-to-run and to the clean engine.
    let mut previous = None;
    for round in 0..2 {
        let dir2 = test_dir("detr");
        let engine = make_engine(&cfg, &dir2, &clean_bytes, &sidecar, 2, Some(1), &batches);
        let answers: Vec<_> = engine
            .serve_deterministic(&reqs, cfg.max_batch)
            .into_iter()
            .map(|a| (a.id, a.class))
            .collect();
        assert_eq!(answers, clean, "failover changed an answer (round {round})");
        let totals = engine.totals();
        assert!(totals.guard_trips >= 1 && totals.reloads >= 1 && totals.reserved > 0);
        if let Some(prev) = previous.replace(totals) {
            assert_eq!(prev, totals, "failover accounting must be deterministic");
        }
        std::fs::remove_dir_all(dir2).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn envelope_cache_keys_on_dtype() {
    let dir = test_dir("dtype");
    let cache = EnvelopeCache::new();
    let corpus = corpus_images(16, INPUT, 7);
    let mut sets = Vec::new();
    for dtype in [Dtype::F32, Dtype::BF16] {
        let cfg = engine_config(dtype);
        let (clean_bytes, sidecar) = mint_checkpoint(&cfg);
        let batches = calib_batches(&cfg, &corpus);
        let env = cache
            .get_or_calibrate(cfg.model, dtype, || {
                calibrate_from_clean_bytes(&cfg, &clean_bytes, &batches)
            })
            .unwrap();
        // A replica of this dtype never trips under its own envelopes.
        let engine = make_engine(&cfg, &dir, &clean_bytes, &sidecar, 1, None, &batches);
        let reqs = requests(&corpus, 16);
        engine.serve_deterministic(&reqs, cfg.max_batch);
        assert_eq!(engine.totals().guard_trips, 0, "{dtype:?} false-tripped");
        sets.push(env);
    }
    assert_eq!(cache.len(), 2, "one envelope set per dtype");
    // Narrowing to bf16 shifts clean activation extremes: the two sets
    // must differ — sharing f32 envelopes across dtypes is the bug the
    // (model, dtype) keying exists to prevent.
    assert_ne!(sets[0].layers(), sets[1].layers(), "bf16 envelopes must differ from f32");
    std::fs::remove_dir_all(dir).ok();
}
