//! Wire protocol: length-prefixed binary frames over TCP.
//!
//! Request:  `"SFRQ"` · `id: u64` · `n: u32` · `n × f32` (all little-endian)
//! Response: `"SFRS"` · `id: u64` · `class: u32` · `flags: u32`
//!
//! `flags` bit 0 is set when the answer was re-served after a guard trip
//! (the request's first replica was quarantined). Clients comparing
//! answers across runs must ignore flags — they encode *how* the answer
//! was produced, which is scheduling-dependent, not *what* it is.

use std::io::{self, Read, Write};

/// Request frame magic.
pub const REQ_MAGIC: [u8; 4] = *b"SFRQ";
/// Response frame magic.
pub const RESP_MAGIC: [u8; 4] = *b"SFRS";
/// Response flag: answer was re-served after a guard trip.
pub const FLAG_RESERVED: u32 = 1;

/// A decoded response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// Predicted class.
    pub class: u32,
    /// `FLAG_*` bits.
    pub flags: u32,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Write one request frame.
pub fn write_request(w: &mut impl Write, id: u64, image: &[f32]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16 + 4 * image.len());
    buf.extend_from_slice(&REQ_MAGIC);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(image.len() as u32).to_le_bytes());
    for v in image {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

/// Read one request frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<(u64, Vec<f32>)>> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if magic != REQ_MAGIC {
        return Err(bad("bad request magic"));
    }
    let mut hdr = [0u8; 12];
    r.read_exact(&mut hdr)?;
    let id = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
    let n = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
    if n > 1 << 24 {
        return Err(bad("request image too large"));
    }
    let mut raw = vec![0u8; 4 * n];
    r.read_exact(&mut raw)?;
    let image = raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    Ok(Some((id, image)))
}

/// Write one response frame.
pub fn write_response(w: &mut impl Write, resp: Response) -> io::Result<()> {
    let mut buf = [0u8; 20];
    buf[0..4].copy_from_slice(&RESP_MAGIC);
    buf[4..12].copy_from_slice(&resp.id.to_le_bytes());
    buf[12..16].copy_from_slice(&resp.class.to_le_bytes());
    buf[16..20].copy_from_slice(&resp.flags.to_le_bytes());
    w.write_all(&buf)
}

/// Read one response frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_response(r: &mut impl Read) -> io::Result<Option<Response>> {
    let mut buf = [0u8; 20];
    match r.read_exact(&mut buf[0..4]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if buf[0..4] != RESP_MAGIC {
        return Err(bad("bad response magic"));
    }
    r.read_exact(&mut buf[4..20])?;
    Ok(Some(Response {
        id: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        class: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        flags: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, 42, &[1.5, -0.25, f32::MIN_POSITIVE]).unwrap();
        let (id, img) = read_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(id, 42);
        assert_eq!(img, vec![1.5, -0.25, f32::MIN_POSITIVE]);
        assert!(read_request(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        let r = Response { id: 7, class: 3, flags: FLAG_RESERVED };
        write_response(&mut buf, r).unwrap();
        assert_eq!(read_response(&mut buf.as_slice()).unwrap().unwrap(), r);
    }

    #[test]
    fn corrupt_magic_is_an_error() {
        let mut buf = Vec::new();
        write_request(&mut buf, 1, &[0.0]).unwrap();
        buf[0] = b'X';
        assert!(read_request(&mut buf.as_slice()).is_err());
    }
}
