//! Replica pool with guarded batched inference and quarantine-reload
//! failover.
//!
//! Workers map 1:1 onto replicas: worker *w*'s home replica is slot
//! `w % replicas`, each replica owns its own `sefi-nn` network (and thus
//! its own pinned conv workspaces — zero steady-state allocation in the
//! kernels), and a batch is served entirely by one replica. When a
//! replica's activation guard trips, the batch is *re-served* from the
//! next healthy replica (no request is dropped or answered twice) while
//! the tripped replica goes through the recovery state machine:
//!
//! ```text
//! Healthy ──trip──▶ Quarantined ──targeted reload + canary──▶ Healthy
//!                        │ canary fails
//!                        ▼
//!                   full reload + canary ──▶ Healthy
//!                        │ canary fails
//!                        ▼
//!                       Dead
//! ```
//!
//! Reloads re-read only the implicated datasets through the verified v2
//! reader with ECC escalation (clean → corrected → zero-filled); a canary
//! batch must pass the guard before the replica is readmitted. If every
//! replica dies the engine serves *unguarded* from the home replica
//! rather than dropping requests — degraded, but never silent loss.

use crate::envelopes::dtype_id;
use crate::queue::{BatchQueue, Request};
use sefi_frameworks::{load_checkpoint, FrameworkKind, Replica};
use sefi_hdf5::{Dtype, EccSidecar, H5File};
use sefi_models::{build, ModelConfig, ModelKind};
use sefi_nn::{ActivationTrip, EnvelopeSet};
use sefi_rng::DetRng;
use sefi_telemetry::{Event, JsonlSink};
use sefi_tensor::Tensor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Static serving parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Framework personality of the checkpoint files.
    pub fw: FrameworkKind,
    /// Model architecture.
    pub model: ModelKind,
    /// Architecture scaling.
    pub model_config: ModelConfig,
    /// Checkpoint storage dtype (envelopes are keyed on it).
    pub dtype: Dtype,
    /// Batch size cutoff: a batch closes as soon as it reaches this.
    pub max_batch: usize,
    /// How long a partial batch waits for stragglers.
    pub batch_window: Duration,
    /// Envelope calibration slack (fraction of observed range).
    pub guard_slack: f32,
}

/// Where one replica loads from.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Checkpoint file (v2) this replica trusts.
    pub path: PathBuf,
    /// ECC parity sidecar for reload-time repair, if provisioned.
    pub sidecar: Option<EccSidecar>,
}

/// One served answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// Echoed request id.
    pub id: u64,
    /// Echoed routing tag.
    pub tag: u64,
    /// Predicted class.
    pub class: u32,
    /// True if the answer was produced after a guard trip (re-served from
    /// a failover replica or a recovered/degraded one).
    pub reserved: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    Healthy,
    Dead,
}

struct Slot {
    replica: Replica,
    state: ReplicaState,
}

/// Lifetime counters, snapshot at shutdown into a `ServeEnd` event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTotals {
    /// Requests answered.
    pub requests: u64,
    /// Batches executed (including re-serves).
    pub batches: u64,
    /// Guard trips observed.
    pub guard_trips: u64,
    /// Recovery reload passes (targeted and full each count once).
    pub reloads: u64,
    /// Requests whose answer was re-served after a trip.
    pub reserved: u64,
}

/// The serving engine: replica pool + guards + failover.
pub struct ServeEngine {
    cfg: EngineConfig,
    env: Arc<EnvelopeSet>,
    slots: Vec<Mutex<Slot>>,
    canary: Tensor,
    requests: AtomicU64,
    batches: AtomicU64,
    guard_trips: AtomicU64,
    reloads: AtomicU64,
    reserved: AtomicU64,
    batch_seq: AtomicU64,
    sink: Option<Arc<JsonlSink>>,
    session: String,
}

/// Calibrate activation envelopes from *verified-clean* checkpoint bytes:
/// strict decode, build, load, calibrate over `batches` with `slack`.
/// The returned set is bound to `(model, dtype)` per the baseline-curve
/// keying discipline.
pub fn calibrate_from_clean_bytes(
    cfg: &EngineConfig,
    clean_bytes: &[u8],
    batches: &[Tensor],
) -> Result<EnvelopeSet, String> {
    let file = H5File::from_bytes(clean_bytes)
        .map_err(|e| format!("calibration checkpoint failed verification: {e}"))?;
    let (mut net, _) = build(cfg.model, cfg.model_config, &mut DetRng::new(0));
    load_checkpoint(cfg.fw, &mut net, &file)?;
    Ok(net.calibrate_envelopes(batches, cfg.guard_slack, cfg.model.id(), &dtype_id(cfg.dtype)))
}

impl ServeEngine {
    /// Load every replica (trusting decode — corruption flows into the
    /// weights, as in an unprotected stack) and arm the guards. `canary`
    /// is the batch a recovering replica must pass before readmission;
    /// use one of the calibration batches.
    pub fn new(
        cfg: EngineConfig,
        specs: &[ReplicaSpec],
        env: Arc<EnvelopeSet>,
        canary: Tensor,
        sink: Option<Arc<JsonlSink>>,
        session: impl Into<String>,
    ) -> Result<Self, String> {
        assert!(!specs.is_empty(), "need at least one replica");
        env.assert_binding(cfg.model.id(), &dtype_id(cfg.dtype));
        let mut slots = Vec::with_capacity(specs.len());
        for spec in specs {
            let replica = Replica::load_trusting(
                cfg.fw,
                cfg.model,
                cfg.model_config,
                &spec.path,
                spec.sidecar.clone(),
            )?;
            slots.push(Mutex::new(Slot { replica, state: ReplicaState::Healthy }));
        }
        Ok(ServeEngine {
            cfg,
            env,
            slots,
            canary,
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            guard_trips: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            sink,
            session: session.into(),
        })
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of replicas in the pool.
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// Replica states as `(healthy?, …)` for monitoring/tests.
    pub fn healthy(&self) -> Vec<bool> {
        self.slots.iter().map(|s| s.lock().unwrap().state == ReplicaState::Healthy).collect()
    }

    /// Counter snapshot.
    pub fn totals(&self) -> ServeTotals {
        ServeTotals {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            guard_trips: self.guard_trips.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reserved: self.reserved.load(Ordering::Relaxed),
        }
    }

    /// Flip the exponent MSB of the first positive weight of replica
    /// `idx` *in memory* — a runtime SDC the guards must catch and the
    /// reload path (clean file) must heal. Test/bench hook.
    pub fn poison_replica(&self, idx: usize) {
        let mut slot = self.slots[idx].lock().unwrap();
        let mut params = slot.replica.net_mut().params_mut();
        let w = params[0].value.data_mut();
        let i = w.iter().position(|&v| v > 0.0).expect("some weight is positive");
        w[i] = f32::from_bits(w[i].to_bits() ^ (1 << 30));
    }

    fn emit(&self, ev: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&ev);
        }
    }

    fn stack(&self, batch: &[Request]) -> Tensor {
        let s = self.cfg.model_config.input_size;
        let il = 3 * s * s;
        let mut data = Vec::with_capacity(batch.len() * il);
        for r in batch {
            assert_eq!(r.image.len(), il, "request image size mismatch");
            data.extend_from_slice(&r.image);
        }
        Tensor::from_vec(data, &[batch.len(), 3, s, s])
    }

    fn answers(batch: &[Request], logits: &Tensor, reserved: bool) -> Vec<Answer> {
        logits
            .argmax_rows()
            .into_iter()
            .zip(batch)
            .map(|(class, r)| Answer { id: r.id, tag: r.tag, class: class as u32, reserved })
            .collect()
    }

    fn canary_passes(&self, slot: &mut Slot) -> bool {
        slot.replica.net_mut().forward_guarded(self.canary.clone(), &self.env).is_ok()
    }

    /// Recovery state machine for a quarantined replica; emits one
    /// `ReplicaReload` event and leaves the slot Healthy or Dead.
    fn recover(&self, idx: usize, slot: &mut Slot, trip: &ActivationTrip) {
        let t0 = Instant::now();
        let mut datasets = 0u64;
        let mut corrected = 0u64;
        let mut zero_filled = 0u64;
        let mut absorb = |r: sefi_frameworks::ReloadReport| {
            datasets += r.reloaded as u64;
            corrected += r.corrected as u64;
            zero_filled += r.zero_filled as u64;
        };
        // Tier 1: reload only the tripped layer's datasets.
        let targets = slot.replica.layer_datasets(&trip.layer);
        let mut ok = false;
        if !targets.is_empty() {
            if let Ok(rep) = slot.replica.reload_datasets(&targets) {
                self.reloads.fetch_add(1, Ordering::Relaxed);
                absorb(rep);
                ok = self.canary_passes(slot);
            }
        }
        // Tier 2: full reload.
        if !ok {
            if let Ok(rep) = slot.replica.reload_all() {
                self.reloads.fetch_add(1, Ordering::Relaxed);
                absorb(rep);
                ok = self.canary_passes(slot);
            }
        }
        slot.state = if ok { ReplicaState::Healthy } else { ReplicaState::Dead };
        self.emit(Event::ReplicaReload {
            session: self.session.clone(),
            replica: idx as u64,
            datasets,
            corrected,
            zero_filled,
            readmitted: ok,
            duration_ns: t0.elapsed().as_nanos() as u64,
        });
    }

    /// Serve one batch with failover. The batch is answered exactly once:
    /// by the home replica if its guard holds, else by the first replica
    /// (starting with the recovered home) whose guard holds, else —
    /// every replica dead — unguarded from the home replica.
    pub fn serve_with_failover(&self, home: usize, batch: &[Request]) -> Vec<Answer> {
        assert!(!batch.is_empty());
        let x = self.stack(batch);
        let n_slots = self.slots.len();
        let mut tripped = false;
        for k in 0..n_slots {
            let idx = (home + k) % n_slots;
            let mut slot = self.slots[idx].lock().unwrap();
            if slot.state != ReplicaState::Healthy {
                continue;
            }
            // Up to two guarded attempts per slot: the initial serve, and
            // one more if the guard tripped but recovery readmitted it
            // (essential when this is the only replica).
            for _ in 0..2 {
                let t0 = Instant::now();
                match slot.replica.net_mut().forward_guarded(x.clone(), &self.env) {
                    Ok(logits) => {
                        let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed);
                        self.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        self.batches.fetch_add(1, Ordering::Relaxed);
                        if tripped {
                            self.reserved.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        }
                        self.emit(Event::BatchServed {
                            session: self.session.clone(),
                            batch: seq,
                            size: batch.len() as u64,
                            replica: idx as u64,
                            tripped,
                            duration_ns: t0.elapsed().as_nanos() as u64,
                        });
                        return Self::answers(batch, &logits, tripped);
                    }
                    Err(trip) => {
                        tripped = true;
                        self.guard_trips.fetch_add(1, Ordering::Relaxed);
                        self.emit(Event::GuardTrip {
                            session: self.session.clone(),
                            replica: idx as u64,
                            layer: trip.layer.clone(),
                            batch: self.batch_seq.load(Ordering::Relaxed),
                            nan: trip.nan,
                        });
                        self.recover(idx, &mut slot, &trip);
                        if slot.state != ReplicaState::Healthy {
                            break;
                        }
                    }
                }
            }
        }
        // Every replica is dead: degraded unguarded serve — an answer of
        // unknown quality beats a dropped request, and the `reserved`
        // flag plus telemetry make the degradation visible.
        let mut slot = self.slots[home % n_slots].lock().unwrap();
        let t0 = Instant::now();
        let logits = slot.replica.net_mut().forward(x, false);
        let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.reserved.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.emit(Event::BatchServed {
            session: self.session.clone(),
            batch: seq,
            size: batch.len() as u64,
            replica: (home % n_slots) as u64,
            tripped: true,
            duration_ns: t0.elapsed().as_nanos() as u64,
        });
        Self::answers(batch, &logits, true)
    }

    /// Worker loop: drain `queue` into dynamic batches on this worker's
    /// home replica until the queue closes, delivering each answer.
    pub fn run_worker(&self, worker: usize, queue: &BatchQueue, deliver: impl Fn(Answer)) {
        let home = worker % self.slots.len();
        while let Some(batch) = queue.next_batch(self.cfg.max_batch, self.cfg.batch_window) {
            for a in self.serve_with_failover(home, &batch) {
                deliver(a);
            }
        }
    }

    /// Synchronous deterministic driver for experiments: fixed batch
    /// size, round-robin home replica, single caller thread. Under the
    /// lane-stable kernel contract every answer is a pure function of the
    /// corpus and the replica files — independent of worker count, batch
    /// window timing, and kernel mode.
    pub fn serve_deterministic(&self, corpus: &[Request], batch: usize) -> Vec<Answer> {
        assert!(batch > 0);
        let mut out = Vec::with_capacity(corpus.len());
        for (bi, chunk) in corpus.chunks(batch).enumerate() {
            let home = bi % self.slots.len();
            out.extend(self.serve_with_failover(home, chunk));
        }
        out
    }

    /// Emit the `ServeEnd` roll-up event and return the totals.
    pub fn finish(&self, duration: Duration) -> ServeTotals {
        let t = self.totals();
        self.emit(Event::ServeEnd {
            session: self.session.clone(),
            requests: t.requests,
            batches: t.batches,
            guard_trips: t.guard_trips,
            reloads: t.reloads,
            reserved: t.reserved,
            duration_ns: duration.as_nanos() as u64,
        });
        t
    }
}
