//! Async batched inference serving with SDC guards and hot
//! quarantine-reload failover.
//!
//! The paper studies what checkpoint bit flips do to *training*; this
//! crate carries the same question into *serving*, where an unprotected
//! stack loads checkpoints trustingly and a silent corruption becomes
//! wrong answers at the API boundary. The defense layers here:
//!
//! 1. **Dynamic batching** ([`BatchQueue`]): requests drain into batches
//!    under a `max_batch` cutoff and a `batch_window` straggler wait,
//!    amortizing per-request fixed costs through the SIMD forward path.
//! 2. **Activation-envelope guards** (`sefi-nn`): per-layer clean-model
//!    ranges, checked per batch with one SIMD min/max reduction per
//!    layer; keyed on (model, dtype) via [`EnvelopeCache`].
//! 3. **Quarantine-reload failover** ([`ServeEngine`]): a tripped
//!    replica is quarantined, the batch re-serves from a healthy
//!    replica, and recovery reloads only the implicated datasets through
//!    the verified v2 reader with ECC escalation, readmitting after a
//!    canary batch.
//!
//! Everything is dependency-free (`std::net`, `std::sync`); the binaries
//! `sefi-serve` and `sefi-loadgen` drive it over a length-prefixed TCP
//! protocol ([`proto`]). See DESIGN.md §12.

#![deny(missing_docs)]

pub mod cli;
mod engine;
mod envelopes;
mod fault;
mod loadgen;
pub mod proto;
mod queue;
mod server;

pub use engine::{
    calibrate_from_clean_bytes, Answer, EngineConfig, ReplicaSpec, ServeEngine, ServeTotals,
};
pub use envelopes::{dtype_id, EnvelopeCache};
pub use fault::flip_exponent_msb;
pub use loadgen::{corpus_images, run_loadgen, LoadgenConfig, LoadgenReport};
pub use queue::{BatchQueue, Request};
pub use server::{run_server, ServerConfig};
