//! Checkpoint fault injection for serving drills.

use sefi_hdf5::FileIndex;

/// Flip the exponent MSB (bit 30) of the first strictly-positive f32 in
/// `dataset` inside v2 checkpoint `bytes` — the paper's highest-impact
/// single-bit corruption, aimed at a positive element so the blown-up
/// activation survives a following ReLU instead of being masked. Returns
/// the flipped element's index within the dataset.
pub fn flip_exponent_msb(bytes: &mut [u8], dataset: &str) -> Result<usize, String> {
    let index = FileIndex::parse(bytes).map_err(|e| format!("parsing index: {e}"))?;
    let entry = index
        .entries()
        .iter()
        .find(|e| e.path == dataset)
        .ok_or_else(|| format!("dataset {dataset:?} not in index"))?
        .clone();
    let i = (0..entry.byte_len / 4)
        .find(|i| {
            let off = entry.offset + 4 * i;
            f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) > 0.0
        })
        .ok_or_else(|| format!("no positive f32 element in {dataset:?}"))?;
    bytes[entry.offset + 4 * i + 3] ^= 0x40;
    Ok(i)
}
