//! Bounded-latency dynamic batching queue.
//!
//! Workers drain requests into batches under a two-sided policy: a batch
//! closes as soon as it holds `max_batch` requests (throughput side) or
//! when `window` has elapsed since the batch's first request arrived
//! (latency side). Plain `std::sync` primitives — the queue must work in
//! the dependency-free server binary.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One inference request as it travels through the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen request id, echoed in the answer.
    pub id: u64,
    /// Routing tag (the server uses it as a connection id; the
    /// deterministic driver leaves it 0).
    pub tag: u64,
    /// Flattened `[3, s, s]` image.
    pub image: Vec<f32>,
}

struct Inner {
    q: VecDeque<Request>,
    closed: bool,
}

/// MPMC request queue with batch-window draining.
pub struct BatchQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for BatchQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchQueue {
    /// Empty, open queue.
    pub fn new() -> Self {
        BatchQueue {
            inner: Mutex::new(Inner { q: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue one request. Returns `false` (request not enqueued) if the
    /// queue has already closed — connection readers can race the
    /// request-limit shutdown, and the loser must know its request was
    /// rejected rather than silently dropped.
    #[must_use]
    pub fn push(&self, req: Request) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return false;
        }
        g.q.push_back(req);
        drop(g);
        self.cv.notify_one();
        true
    }

    /// Close the queue: workers drain what remains, then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().q.len()
    }

    /// True if no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until a batch is available and drain it: up to `max` requests,
    /// waiting at most `window` past the first request for stragglers.
    /// Returns `None` once the queue is closed and drained.
    pub fn next_batch(&self, max: usize, window: Duration) -> Option<Vec<Request>> {
        assert!(max > 0);
        let mut g = self.inner.lock().unwrap();
        loop {
            // Phase 1: wait for the batch's first request.
            while g.q.is_empty() {
                if g.closed {
                    return None;
                }
                g = self.cv.wait(g).unwrap();
            }
            // Phase 2: give stragglers `window` to fill the batch.
            let deadline = Instant::now() + window;
            while g.q.len() < max && !g.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (ng, timeout) = self.cv.wait_timeout(g, deadline - now).unwrap();
                g = ng;
                if timeout.timed_out() {
                    break;
                }
            }
            let n = g.q.len().min(max);
            if n > 0 {
                return Some(g.q.drain(..n).collect());
            }
            // Another worker drained the queue while phase 2 had the lock
            // released — go back to waiting rather than emit an empty batch.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(id: u64) -> Request {
        Request { id, tag: 0, image: vec![0.0] }
    }

    #[test]
    fn full_batch_closes_immediately() {
        let q = BatchQueue::new();
        for i in 0..5 {
            assert!(q.push(req(i)));
        }
        // A long window must not delay a full batch.
        let t0 = Instant::now();
        let b = q.next_batch(4, Duration::from_secs(10)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn window_expiry_yields_partial_batch() {
        let q = BatchQueue::new();
        assert!(q.push(req(7)));
        let b = q.next_batch(8, Duration::from_millis(5)).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new();
        assert!(q.push(req(1)));
        q.close();
        assert_eq!(q.next_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
        assert!(q.next_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = Arc::new(BatchQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        assert!(q.push(req(p * 1000 + i)));
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut ids = Vec::new();
        while let Some(b) = q.next_batch(16, Duration::from_millis(1)) {
            ids.extend(b.into_iter().map(|r| r.id));
        }
        ids.sort_unstable();
        assert_eq!(ids.len(), 200);
        ids.dedup();
        assert_eq!(ids.len(), 200, "no duplicates");
    }
}
