//! Identifier parsing shared by the serving binaries.

use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

/// Parse a framework id ("chainer" | "pytorch" | "tensorflow").
pub fn parse_fw(s: &str) -> Result<FrameworkKind, String> {
    FrameworkKind::all()
        .into_iter()
        .find(|f| f.id() == s)
        .ok_or_else(|| format!("unknown framework {s:?}"))
}

/// Parse a model id ("alexnet" | "vgg16" | "resnet50").
pub fn parse_model(s: &str) -> Result<ModelKind, String> {
    ModelKind::all().into_iter().find(|m| m.id() == s).ok_or_else(|| format!("unknown model {s:?}"))
}

/// Parse a storage dtype id ("f16" | "bf16" | "f32" | "f64").
pub fn parse_dtype(s: &str) -> Result<Dtype, String> {
    match s {
        "f16" => Ok(Dtype::F16),
        "bf16" => Ok(Dtype::BF16),
        "f32" => Ok(Dtype::F32),
        "f64" => Ok(Dtype::F64),
        _ => Err(format!("unknown dtype {s:?}")),
    }
}
