//! (model, dtype)-keyed envelope cache.
//!
//! Activation envelopes depend on the *stored* weights, and narrowed
//! checkpoint dtypes (bf16/f16 round-trips) shift clean activation
//! extremes — an f32-calibrated envelope checked against a bf16 replica
//! false-trips on perfectly healthy traffic. The cache therefore keys on
//! `(ModelKind, Dtype)`, the same discipline as the experiment runner's
//! baseline-curve cache, and re-checks the binding recorded inside each
//! [`EnvelopeSet`] on every hit.

use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_nn::EnvelopeSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Canonical dtype identifier used in envelope bindings ("f32", "bf16",
/// …) — lower-cased debug name, stable across the workspace.
pub fn dtype_id(d: Dtype) -> String {
    format!("{d:?}").to_lowercase()
}

/// Lazily calibrated envelopes, one set per (model, dtype).
#[derive(Default)]
pub struct EnvelopeCache {
    map: Mutex<HashMap<(ModelKind, Dtype), Arc<EnvelopeSet>>>,
}

impl EnvelopeCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the cached set for `(model, dtype)`, calibrating it with
    /// `calibrate` on first use. The produced set's recorded binding must
    /// match the key (calibrating with mismatched ids is a bug — panics).
    pub fn get_or_calibrate(
        &self,
        model: ModelKind,
        dtype: Dtype,
        calibrate: impl FnOnce() -> Result<EnvelopeSet, String>,
    ) -> Result<Arc<EnvelopeSet>, String> {
        let mut map = self.map.lock().unwrap();
        if let Some(env) = map.get(&(model, dtype)) {
            return Ok(Arc::clone(env));
        }
        let env = calibrate()?;
        env.assert_binding(model.id(), &dtype_id(dtype));
        let env = Arc::new(env);
        map.insert((model, dtype), Arc::clone(&env));
        Ok(env)
    }

    /// Number of calibrated sets held.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True if nothing has been calibrated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
