//! TCP serving front end over the replica engine.
//!
//! Thread layout on an N-worker configuration:
//!
//! - one non-blocking acceptor loop (the caller's thread),
//! - one reader thread per connection, decoding request frames into the
//!   shared [`BatchQueue`],
//! - N worker threads, each draining the queue into dynamic batches and
//!   serving them on its home replica via
//!   [`ServeEngine::serve_with_failover`].
//!
//! Answers are written back on the connection the request arrived on
//! (the request's `tag` is the connection id). With `request_limit` set,
//! the server closes the queue after that many requests have been
//! *enqueued*, lets the workers drain, emits the `ServeEnd` roll-up, and
//! returns — the shape the CI smoke and benchmarks drive.

use crate::engine::{Answer, ServeEngine, ServeTotals};
use crate::proto::{read_request, write_response, Response, FLAG_RESERVED};
use crate::queue::{BatchQueue, Request};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Front-end parameters ([`crate::EngineConfig`] covers the model side).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker (= batch-serving) thread count.
    pub workers: usize,
    /// Listen port; 0 picks an ephemeral port.
    pub port: u16,
    /// If set, the bound port is written here (decimal, newline) once
    /// listening — how scripts rendezvous with an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Stop after this many requests have been enqueued.
    pub request_limit: Option<u64>,
}

fn deliver(writers: &Mutex<HashMap<u64, TcpStream>>, a: Answer) {
    let resp =
        Response { id: a.id, class: a.class, flags: if a.reserved { FLAG_RESERVED } else { 0 } };
    let mut g = writers.lock().unwrap();
    if let Some(stream) = g.get_mut(&a.tag) {
        // A vanished client is its own problem; the server keeps serving.
        if write_response(stream, resp).is_err() {
            g.remove(&a.tag);
        }
    }
}

/// Run the server until `request_limit` requests have been enqueued and
/// answered (never returns if no limit is set). Returns the final
/// counter totals after emitting `ServeEnd`.
pub fn run_server(engine: Arc<ServeEngine>, cfg: &ServerConfig) -> Result<ServeTotals, String> {
    let t0 = Instant::now();
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", cfg.port))?;
    let port = listener.local_addr().map_err(|e| e.to_string())?.port();
    if let Some(pf) = &cfg.port_file {
        std::fs::write(pf, format!("{port}\n")).map_err(|e| format!("writing {pf:?}: {e}"))?;
    }
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;

    let queue = Arc::new(BatchQueue::new());
    let writers: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let received = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|w| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let writers = Arc::clone(&writers);
            std::thread::spawn(move || {
                engine.run_worker(w, &queue, |a| deliver(&writers, a));
            })
        })
        .collect();

    let mut next_conn: u64 = 0;
    let mut readers = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking; the per-connection reader
                // must block on frame boundaries.
                stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                let tag = next_conn;
                next_conn += 1;
                writers.lock().unwrap().insert(tag, stream.try_clone().map_err(|e| e.to_string())?);
                let queue = Arc::clone(&queue);
                let stop = Arc::clone(&stop);
                let received = Arc::clone(&received);
                let limit = cfg.request_limit;
                readers.push(std::thread::spawn(move || {
                    read_connection(stream, tag, &queue, &stop, &received, limit);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    // Limit reached: queue is closed; workers drain what remains.
    for h in workers {
        h.join().map_err(|_| "worker panicked".to_string())?;
    }
    for h in readers {
        h.join().map_err(|_| "connection reader panicked".to_string())?;
    }
    Ok(engine.finish(t0.elapsed()))
}

fn read_connection(
    mut stream: TcpStream,
    tag: u64,
    queue: &BatchQueue,
    stop: &AtomicBool,
    received: &AtomicU64,
    limit: Option<u64>,
) {
    loop {
        match read_request(&mut stream) {
            Ok(Some((id, image))) => {
                if !queue.push(Request { id, tag, image }) {
                    break; // raced the shutdown; client sees no answer
                }
                let n = received.fetch_add(1, Ordering::Relaxed) + 1;
                if limit == Some(n) {
                    queue.close();
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("sefi-serve: connection {tag}: {e}");
                break;
            }
        }
    }
}
