//! Deterministic load-test client for `sefi-serve`.
//!
//! Seeded open-loop exponential arrivals over a fixed request corpus;
//! prints loss/latency stats and optionally writes a sorted `id class`
//! answers file for byte-comparison across runs. Exits non-zero if any
//! request went unanswered or was answered twice.
//!
//! ```text
//! sefi-loadgen --port-file /tmp/d/port --requests 200 [--rate 500]
//!     [--seed 1] [--corpus 64] [--image-size 16] [--data-seed 7]
//!     [--answers answers.txt] [--addr 127.0.0.1:9000] [--timeout-s 30]
//! ```

use sefi_serve::{run_loadgen, LoadgenConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("sefi-loadgen: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut seed = 1u64;
    let mut requests = 100u64;
    let mut rate = 500.0f64;
    let mut corpus = 64usize;
    let mut image_size = 16usize;
    let mut data_seed = 7u64;
    let mut answers: Option<PathBuf> = None;
    let mut timeout_s = 30u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--addr" => addr = Some(val(&mut i)?),
            "--port-file" => port_file = Some(val(&mut i)?.into()),
            "--seed" => seed = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => requests = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--rate" => rate = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--corpus" => corpus = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--image-size" => image_size = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--data-seed" => data_seed = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--answers" => answers = Some(val(&mut i)?.into()),
            "--timeout-s" => timeout_s = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let addr = match (addr, port_file) {
        (Some(a), _) => a,
        (None, Some(pf)) => {
            let port = std::fs::read_to_string(&pf)
                .map_err(|e| format!("reading {pf:?}: {e}"))?
                .trim()
                .to_string();
            format!("127.0.0.1:{port}")
        }
        (None, None) => return Err("need --addr or --port-file".into()),
    };

    let report = run_loadgen(&LoadgenConfig {
        addr,
        seed,
        requests,
        rate_hz: rate,
        corpus,
        image_size,
        data_seed,
        drain_timeout: Duration::from_secs(timeout_s),
    })
    .map_err(|e| format!("{e}"))?;

    if let Some(p) = &answers {
        report.write_answers(p).map_err(|e| format!("writing {p:?}: {e}"))?;
    }
    let ms = |p: f64| report.latency_percentile_ns(p) as f64 / 1e6;
    println!(
        "sefi-loadgen: answered={} missing={} duplicates={} p50={:.3}ms p99={:.3}ms p999={:.3}ms",
        report.answered,
        report.missing.len(),
        report.duplicates,
        ms(50.0),
        ms(99.0),
        ms(99.9),
    );
    if !report.lossless() {
        return Err(format!(
            "lossy run: {} missing (first: {:?}), {} duplicates",
            report.missing.len(),
            report.missing.first(),
            report.duplicates
        ));
    }
    Ok(())
}
