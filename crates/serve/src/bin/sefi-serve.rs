//! Self-contained guarded inference server.
//!
//! Mints a checkpoint (plus ECC sidecar) for the requested model, writes
//! one file copy per replica — optionally flipping an exponent MSB in one
//! copy to stage the corruption drill — calibrates activation envelopes
//! from the verified-clean bytes over the loadgen corpus, and serves.
//!
//! ```text
//! sefi-serve --dir /tmp/d --requests 200 --port-file /tmp/d/port \
//!     [--fw chainer] [--model alexnet] [--dtype f32] [--workers 2]
//!     [--replicas 2] [--max-batch 8] [--window-ms 2] [--slack 0.5]
//!     [--input-size 16] [--scale 0.05] [--corpus 64] [--data-seed 7]
//!     [--corrupt-replica 1] [--telemetry events.jsonl] [--port 0]
//! ```

use sefi_frameworks::save_checkpoint;
use sefi_hdf5::{Dtype, EccSidecar};
use sefi_models::{build, ModelConfig};
use sefi_rng::DetRng;
use sefi_serve::cli::{parse_dtype, parse_fw, parse_model};
use sefi_serve::{
    calibrate_from_clean_bytes, corpus_images, flip_exponent_msb, run_server, EngineConfig,
    ReplicaSpec, ServeEngine, ServerConfig,
};
use sefi_telemetry::JsonlSink;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("sefi-serve: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut fw = "chainer".to_string();
    let mut model = "alexnet".to_string();
    let mut dtype = "f32".to_string();
    let mut workers = 2usize;
    let mut replicas = 2usize;
    let mut max_batch = 8usize;
    let mut window_ms = 2u64;
    let mut slack = 0.5f32;
    let mut input_size = 16usize;
    let mut scale = 0.05f64;
    let mut corpus = 64usize;
    let mut data_seed = 7u64;
    let mut requests: Option<u64> = None;
    let mut port = 0u16;
    let mut port_file: Option<PathBuf> = None;
    let mut telemetry: Option<PathBuf> = None;
    let mut corrupt_replica: Option<usize> = None;
    let mut dir: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--fw" => fw = val(&mut i)?,
            "--model" => model = val(&mut i)?,
            "--dtype" => dtype = val(&mut i)?,
            "--workers" => workers = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--replicas" => replicas = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--max-batch" => max_batch = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--window-ms" => window_ms = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--slack" => slack = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--input-size" => input_size = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => scale = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--corpus" => corpus = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--data-seed" => data_seed = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => requests = Some(val(&mut i)?.parse().map_err(|e| format!("{e}"))?),
            "--port" => port = val(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--port-file" => port_file = Some(val(&mut i)?.into()),
            "--telemetry" => telemetry = Some(val(&mut i)?.into()),
            "--corrupt-replica" => {
                corrupt_replica = Some(val(&mut i)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--dir" => dir = Some(val(&mut i)?.into()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let dir = dir.ok_or("--dir is required")?;
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {dir:?}: {e}"))?;

    let cfg = EngineConfig {
        fw: parse_fw(&fw)?,
        model: parse_model(&model)?,
        model_config: ModelConfig { scale, input_size, num_classes: 10 },
        dtype: parse_dtype(&dtype)?,
        max_batch,
        batch_window: Duration::from_millis(window_ms),
        guard_slack: slack,
    };
    assert!(
        cfg.dtype == Dtype::F32 || corrupt_replica.is_none(),
        "--corrupt-replica targets f32 element layout"
    );

    // Mint the checkpoint this server serves.
    let (mut net, _) = build(cfg.model, cfg.model_config, &mut DetRng::new(0xC0DE_5EED));
    let first_param = net.params_mut()[0].name.clone();
    let file = save_checkpoint(cfg.fw, &mut net, 1, cfg.dtype);
    let clean_bytes = file.to_bytes_v2();
    let sidecar = EccSidecar::protect(&clean_bytes).map_err(|e| format!("sidecar: {e}"))?;

    let mut specs = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let path = dir.join(format!("replica_{r}.h5"));
        let mut bytes = clean_bytes.clone();
        if corrupt_replica == Some(r) {
            let target = sefi_frameworks::engine_to_file_path(cfg.fw, &first_param);
            let elem = flip_exponent_msb(&mut bytes, &target)?;
            eprintln!("sefi-serve: flipped exponent MSB of {target}[{elem}] in replica {r}");
        }
        std::fs::write(&path, &bytes).map_err(|e| format!("writing {path:?}: {e}"))?;
        specs.push(ReplicaSpec { path, sidecar: Some(sidecar.clone()) });
    }

    // Calibrate on the loadgen corpus (same DataConfig contract).
    let images = corpus_images(corpus, input_size, data_seed);
    let batches: Vec<_> = images
        .chunks(max_batch)
        .map(|chunk| {
            let mut data = Vec::with_capacity(chunk.len() * 3 * input_size * input_size);
            for img in chunk {
                data.extend_from_slice(img);
            }
            sefi_tensor::Tensor::from_vec(data, &[chunk.len(), 3, input_size, input_size])
        })
        .collect();
    let env = Arc::new(calibrate_from_clean_bytes(&cfg, &clean_bytes, &batches)?);
    let canary = batches[0].clone();

    let sink = match &telemetry {
        Some(p) => {
            Some(Arc::new(JsonlSink::to_file(p).map_err(|e| format!("telemetry {p:?}: {e}"))?))
        }
        None => None,
    };
    let engine =
        Arc::new(ServeEngine::new(cfg, &specs, env, canary, sink, "sefi-serve".to_string())?);
    let totals = run_server(
        Arc::clone(&engine),
        &ServerConfig { workers, port, port_file, request_limit: requests },
    )?;
    println!(
        "sefi-serve: requests={} batches={} guard_trips={} reloads={} reserved={}",
        totals.requests, totals.batches, totals.guard_trips, totals.reloads, totals.reserved
    );
    Ok(())
}
