//! Deterministic open-loop load generator.
//!
//! Arrivals follow a seeded exponential inter-arrival process (a Poisson
//! stream of mean rate `rate_hz`) over a fixed request corpus: request
//! *i* carries image `i % corpus` of a `SyntheticCifar10` test split.
//! Both the schedule and the payloads are pure functions of the seeds, so
//! two runs against servers holding equivalent weights must produce
//! byte-identical answer files — the property the CI smoke exploits to
//! prove failover served *correct* answers, not just *some* answers.
//!
//! Open loop means send times never wait for responses: if the server
//! lags, requests pile up in its batch queue (that is the backpressure
//! being measured), and if the sender itself falls behind schedule it
//! sends immediately rather than rescheduling.

use crate::proto::{read_response, write_request, Response};
use sefi_data::{DataConfig, Split, SyntheticCifar10};
use sefi_rng::DetRng;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Arrival-process seed.
    pub seed: u64,
    /// Total requests to send.
    pub requests: u64,
    /// Mean arrival rate (requests/second).
    pub rate_hz: f64,
    /// Distinct images in the request corpus.
    pub corpus: usize,
    /// Image edge length (must match the served model's input size).
    pub image_size: usize,
    /// Corpus generation seed (must match the server's calibration set).
    pub data_seed: u64,
    /// Give up on unanswered requests after this long past the last send.
    pub drain_timeout: Duration,
}

/// What came back.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Responses received (deduplicated).
    pub answered: u64,
    /// Request ids that never got an answer.
    pub missing: Vec<u64>,
    /// Responses whose id had already been answered.
    pub duplicates: u64,
    /// Per-request latency (ns), sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// `(id, class, flags)` sorted by id.
    pub answers: Vec<(u64, u32, u32)>,
}

impl LoadgenReport {
    /// Nearest-rank latency percentile in nanoseconds.
    pub fn latency_percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_ns.len() as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, self.latencies_ns.len()) - 1]
    }

    /// True when every request was answered exactly once.
    pub fn lossless(&self) -> bool {
        self.missing.is_empty() && self.duplicates == 0
    }

    /// Write `id class` lines sorted by id. Flags are deliberately
    /// excluded: they encode *how* an answer was produced (re-served or
    /// not, which depends on scheduling), while the file exists to be
    /// byte-compared across clean and corrupted runs.
    pub fn write_answers(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut out = String::with_capacity(self.answers.len() * 8);
        for (id, class, _) in &self.answers {
            out.push_str(&format!("{id} {class}\n"));
        }
        std::fs::write(path, out)
    }
}

/// The deterministic request corpus: flattened images of the test split.
pub fn corpus_images(corpus: usize, image_size: usize, data_seed: u64) -> Vec<Vec<f32>> {
    let data = SyntheticCifar10::generate(DataConfig {
        train: 0,
        test: corpus,
        image_size,
        seed: data_seed,
        noise: 0.25,
    });
    (0..corpus).map(|i| data.image(Split::Test, i).to_vec()).collect()
}

/// Run the load test. Blocks until every request is answered or the
/// drain timeout expires.
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let images = corpus_images(cfg.corpus, cfg.image_size, cfg.data_seed);
    // The full arrival schedule is fixed before the first byte is sent.
    let mut rng = DetRng::new(cfg.seed).substream("arrivals");
    let mut offsets = Vec::with_capacity(cfg.requests as usize);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        t += -rng.uniform().max(f64::MIN_POSITIVE).ln() / cfg.rate_hz;
        offsets.push(Duration::from_secs_f64(t));
    }

    let stream = TcpStream::connect(&cfg.addr)?;
    let mut reader = stream.try_clone()?;
    let expected = cfg.requests as usize;
    let collector = std::thread::spawn(move || -> io::Result<Vec<(Instant, Response)>> {
        let mut got = Vec::new();
        while got.len() < expected {
            match read_response(&mut reader)? {
                Some(resp) => got.push((Instant::now(), resp)),
                None => break,
            }
        }
        Ok(got)
    });

    let mut writer = stream.try_clone()?;
    let t0 = Instant::now();
    let mut sent_at = HashMap::with_capacity(cfg.requests as usize);
    for (i, offset) in offsets.iter().enumerate() {
        let due = t0 + *offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let id = i as u64;
        write_request(&mut writer, id, &images[i % images.len()])?;
        sent_at.insert(id, Instant::now());
    }
    writer.flush()?;
    // Half-close: the server reader sees EOF once it has consumed
    // everything; responses keep flowing on the other half until the
    // server answers or we give up.
    stream.shutdown(Shutdown::Write).ok();
    let deadline = Instant::now() + cfg.drain_timeout;
    let received = loop {
        if collector.is_finished() {
            break collector.join().expect("collector panicked")?;
        }
        if Instant::now() >= deadline {
            // Abandon the socket entirely; the collector errors out or
            // sees EOF and whatever it gathered is lost to the report's
            // `missing` list — which is the point.
            stream.shutdown(Shutdown::Both).ok();
            break collector.join().expect("collector panicked").unwrap_or_default();
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    let mut answers: HashMap<u64, (u32, u32)> = HashMap::new();
    let mut latencies = Vec::new();
    let mut duplicates = 0u64;
    for (at, resp) in received {
        if answers.insert(resp.id, (resp.class, resp.flags)).is_some() {
            duplicates += 1;
            continue;
        }
        if let Some(&sent) = sent_at.get(&resp.id) {
            latencies.push(at.saturating_duration_since(sent).as_nanos() as u64);
        }
    }
    let missing: Vec<u64> = (0..cfg.requests).filter(|id| !answers.contains_key(id)).collect();
    latencies.sort_unstable();
    let mut sorted: Vec<(u64, u32, u32)> =
        answers.into_iter().map(|(id, (class, flags))| (id, class, flags)).collect();
    sorted.sort_unstable();
    Ok(LoadgenReport {
        answered: sorted.len() as u64,
        missing,
        duplicates,
        latencies_ns: latencies,
        answers: sorted,
    })
}
