//! The on-disk binary format, version 1 (monolithic).
//!
//! ```text
//! superblock:  magic "SEFIH5\x89\n" (8 bytes) | version u32 LE | crc32 u32 LE
//! payload:     <group>                        (crc covers the whole payload)
//! group:       attr_count u32 | attrs… | child_count u32 | children…
//! attr:        name str | tag u8 (1 int, 2 float, 3 str) | value
//! child:       name str | tag u8 (1 group, 2 dataset) | body
//! dataset:     dtype u8 | rank u32 | dims u64… | [scale f32, I8Q only] |
//!              byte_len u64 | bytes
//! str:         len u32 | utf-8 bytes
//! ```
//!
//! The quantization `scale` field exists only when the dtype tag is I8Q
//! (tag 8), which older decoders reject outright — so its presence never
//! changes the layout of a file an old reader could parse.
//!
//! All integers little-endian. Encoding is deterministic (BTreeMap order),
//! so encode∘decode∘encode is byte-identical — the property that lets tests
//! compare corrupted checkpoints by file bytes.
//!
//! One CRC covers the entire payload: any corruption anywhere makes the
//! whole file unloadable. The sectioned v2 format (see [`crate::format_v2`])
//! keeps per-dataset checksums instead, so faults can be localized and
//! quarantined. The superblock magic is shared; the version field selects
//! the decoder.

use crate::crc::crc32;
use crate::dataset::{Dataset, Dtype};
use crate::error::{Error, Result};
use crate::limits::{MAX_DEPTH, MAX_LEN, MAX_NAME_LEN, MAX_RANK};
use crate::node::{Attr, Group, Node};
use crate::H5File;

pub(crate) const MAGIC: &[u8; 8] = b"SEFIH5\x89\n";
pub(crate) const VERSION_V1: u32 = 1;

/// The format version stored at bytes 8..12, if the buffer is long enough
/// and carries the shared magic. Used to dispatch v1 vs v2 decoding.
pub(crate) fn sniff_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")))
}

// ---------------------------------------------------------------- encoding

pub(crate) fn encode(file: &H5File) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_group(file.root(), &mut payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn encode_attrs(g: &Group, out: &mut Vec<u8>) {
    let attrs: Vec<_> = g.attrs().collect();
    out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
    for (name, attr) in attrs {
        put_str(out, name);
        match attr {
            Attr::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Attr::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Attr::Str(v) => {
                out.push(3);
                put_str(out, v);
            }
        }
    }
}

fn encode_group(g: &Group, out: &mut Vec<u8>) {
    encode_attrs(g, out);
    let children: Vec<_> = g.children().collect();
    out.extend_from_slice(&(children.len() as u32).to_le_bytes());
    for (name, node) in children {
        put_str(out, name);
        match node {
            Node::Group(sub) => {
                out.push(1);
                encode_group(sub, out);
            }
            Node::Dataset(ds) => {
                out.push(2);
                encode_dataset(ds, out);
            }
        }
    }
}

/// Encode a dataset's shape header: dtype tag, rank, dims, and (for I8Q
/// only) the per-tensor quantization scale. Shared by the v1 dataset
/// encoder and the v2 index encoder; [`decode_shape`] is its inverse.
pub(crate) fn encode_shape(ds: &Dataset, out: &mut Vec<u8>) {
    out.push(ds.dtype().tag());
    out.extend_from_slice(&(ds.shape().len() as u32).to_le_bytes());
    for &d in ds.shape() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    if ds.dtype() == Dtype::I8Q {
        out.extend_from_slice(&ds.scale().to_bits().to_le_bytes());
    }
}

fn encode_dataset(ds: &Dataset, out: &mut Vec<u8>) {
    encode_shape(ds, out);
    out.extend_from_slice(&(ds.bytes().len() as u64).to_le_bytes());
    out.extend_from_slice(ds.bytes());
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked reader shared by the v1 and v2 decoders. Every length
/// field is validated against the [`crate::limits`] caps before any
/// allocation happens.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(Error::Malformed(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A u64 length field capped at [`MAX_LEN`].
    pub(crate) fn checked_len(&mut self, what: &str) -> Result<usize> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(Error::Malformed(format!("{what} length {n} exceeds limit")));
        }
        Ok(n as usize)
    }

    /// An object/attribute name: u32-prefixed UTF-8, capped at
    /// [`MAX_NAME_LEN`].
    pub(crate) fn name(&mut self) -> Result<String> {
        self.str_capped(MAX_NAME_LEN, "name")
    }

    /// An attribute string *value*: u32-prefixed UTF-8, capped at the
    /// payload limit [`MAX_LEN`] (values can legitimately be longer than
    /// names).
    pub(crate) fn str_value(&mut self) -> Result<String> {
        self.str_capped(MAX_LEN, "string")
    }

    fn str_capped(&mut self, cap: u64, what: &str) -> Result<String> {
        let n = self.u32()? as usize;
        if n as u64 > cap {
            return Err(Error::Malformed(format!("{what} length {n} exceeds limit")));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Malformed(format!("non-UTF-8 {what}")))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

pub(crate) fn decode(bytes: &[u8]) -> Result<H5File> {
    if bytes.len() < 16 {
        return Err(Error::Malformed(format!("file too short: {} bytes", bytes.len())));
    }
    if &bytes[..8] != MAGIC {
        return Err(Error::Malformed("bad magic — not a SEFI-H5 file".to_string()));
    }
    let version = sniff_version(bytes).expect("length and magic checked");
    if version != VERSION_V1 {
        return Err(Error::Malformed(format!("unsupported format version {version}")));
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = &bytes[16..];
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(Error::Malformed(format!(
            "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let mut cur = Cursor::new(payload);
    let root = decode_group(&mut cur, 0)?;
    if !cur.done() {
        return Err(Error::Malformed(format!(
            "{} trailing bytes after root group",
            cur.remaining()
        )));
    }
    let mut file = H5File::new();
    *file.root_mut() = root;
    Ok(file)
}

pub(crate) fn decode_attrs(cur: &mut Cursor<'_>, g: &mut Group) -> Result<()> {
    let attr_count = cur.u32()?;
    for _ in 0..attr_count {
        let name = cur.name()?;
        let attr = match cur.u8()? {
            1 => Attr::Int(i64::from_le_bytes(cur.take(8)?.try_into().expect("8 bytes"))),
            2 => Attr::Float(f64::from_bits(cur.u64()?)),
            3 => Attr::Str(cur.str_value()?),
            other => return Err(Error::Malformed(format!("unknown attr tag {other}"))),
        };
        g.set_attr(&name, attr);
    }
    Ok(())
}

fn decode_group(cur: &mut Cursor<'_>, depth: u32) -> Result<Group> {
    if depth > MAX_DEPTH {
        return Err(Error::Malformed("group nesting exceeds limit".to_string()));
    }
    let mut g = Group::new();
    decode_attrs(cur, &mut g)?;
    let child_count = cur.u32()?;
    for _ in 0..child_count {
        let name = cur.name()?;
        let node = match cur.u8()? {
            1 => Node::Group(decode_group(cur, depth + 1)?),
            2 => Node::Dataset(decode_dataset(cur)?),
            other => return Err(Error::Malformed(format!("unknown node tag {other}"))),
        };
        g.insert_node(name, node)?;
    }
    Ok(g)
}

/// Decode a dataset shape header: dtype tag, rank (≤ [`MAX_RANK`]), dims
/// (each ≤ [`MAX_LEN`]), and — for I8Q only — the quantization scale
/// (`1.0` for every other dtype). Shared with the v2 index decoder;
/// inverse of [`encode_shape`]. A corrupted scale field (non-finite or
/// non-positive) is structural damage, not a silent 1.0.
pub(crate) fn decode_shape(cur: &mut Cursor<'_>) -> Result<(Dtype, Vec<usize>, f32)> {
    let dtype = Dtype::from_tag(cur.u8()?)?;
    let rank = cur.u32()?;
    if rank > MAX_RANK {
        return Err(Error::Malformed(format!("dataset rank {rank} exceeds limit")));
    }
    let mut shape = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        shape.push(cur.checked_len("dimension")?);
    }
    let scale = if dtype == Dtype::I8Q {
        let s = f32::from_bits(cur.u32()?);
        if !s.is_finite() || s <= 0.0 {
            return Err(Error::Malformed(format!("invalid I8Q quantization scale {s}")));
        }
        s
    } else {
        1.0
    };
    Ok((dtype, shape, scale))
}

fn decode_dataset(cur: &mut Cursor<'_>) -> Result<Dataset> {
    let (dtype, shape, scale) = decode_shape(cur)?;
    let byte_len = cur.checked_len("dataset")?;
    let data = cur.take(byte_len)?.to_vec();
    Ok(Dataset::from_raw(dtype, shape, data)?.with_scale(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> H5File {
        let mut f = H5File::new();
        f.create_group("g").unwrap().set_attr("epoch", Attr::Int(20));
        f.create_group("g").unwrap().set_attr("acc", Attr::Float(0.576));
        f.create_group("g").unwrap().set_attr("fw", Attr::Str("tensorflow".into()));
        f.create_dataset("g/w", Dataset::from_f32(&[1.0, -2.0], &[2], Dtype::F16).unwrap())
            .unwrap();
        f
    }

    #[test]
    fn roundtrip_with_attrs() {
        let f = sample();
        let g = decode(&encode(&f)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = encode(&sample());
        b[0] ^= 0xFF;
        assert!(matches!(decode(&b), Err(Error::Malformed(m)) if m.contains("magic")));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = encode(&sample());
        b[8] = 99;
        assert!(matches!(decode(&b), Err(Error::Malformed(m)) if m.contains("version")));
    }

    #[test]
    fn payload_corruption_detected_by_crc() {
        let mut b = encode(&sample());
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(decode(&b), Err(Error::Malformed(m)) if m.contains("checksum")));
    }

    #[test]
    fn truncation_detected() {
        let b = encode(&sample());
        for cut in [0, 4, 15, 16, b.len() / 2, b.len() - 1] {
            assert!(decode(&b[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut b = encode(&sample());
        // Keep the CRC valid over the extended payload to isolate the
        // trailing-bytes check: recompute CRC over payload + garbage.
        b.push(0xAB);
        let crc = crc32(&b[16..]);
        b[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&b), Err(Error::Malformed(m)) if m.contains("trailing")));
    }

    #[test]
    fn oversized_length_fields_rejected_before_allocation() {
        // Hand-craft: valid superblock, payload declaring a huge string.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // one attr
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd name len
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION_V1.to_le_bytes());
        b.extend_from_slice(&crc32(&payload).to_le_bytes());
        b.extend_from_slice(&payload);
        assert!(decode(&b).is_err());
    }

    #[test]
    fn oversized_name_rejected_at_the_name_cap() {
        // A name longer than MAX_NAME_LEN but shorter than MAX_LEN must be
        // rejected by the name-specific cap (the two caps drifted apart in
        // earlier decoders; the shared limits module pins them).
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // one attr
        payload.extend_from_slice(&((MAX_NAME_LEN as u32) + 1).to_le_bytes());
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION_V1.to_le_bytes());
        b.extend_from_slice(&crc32(&payload).to_le_bytes());
        b.extend_from_slice(&payload);
        assert!(matches!(decode(&b), Err(Error::Malformed(m)) if m.contains("name length")));
    }

    #[test]
    fn empty_file_roundtrips() {
        let f = H5File::new();
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }
}
