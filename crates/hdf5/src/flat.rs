//! A flat, NPZ-style serialization of the same object tree.
//!
//! Chainer "saves checkpoints in native NPZ format (NumPy's compressed
//! array format) and in HDF5 format" (paper Section III-C), and the paper
//! closes by noting that "different checkpoint file formats could also be
//! explored" (Section VII). This module provides that second format: a
//! flat archive of `(name, array)` pairs — NPZ's data model — for the same
//! in-memory [`H5File`]. Group structure round-trips through the names
//! (`predictor/conv1/W`), exactly as NPZ keys carry slashes.
//!
//! The injector is format-agnostic by construction: corrupt the
//! [`H5File`], then serialize to whichever container the experiment needs.
//!
//! ```text
//! flat file: magic "SEFINPZ\n" | version u32 LE | crc32 u32 LE | payload
//! payload:   count u32 | count × (name str | dataset)
//! ```
//! (str and dataset encodings are shared with the hierarchical format.)

use crate::crc::crc32;
use crate::dataset::{Dataset, Dtype};
use crate::error::{Error, Result};
use crate::limits::{MAX_LEN, MAX_NAME_LEN, MAX_RANK};
use crate::node::Node;
use crate::H5File;

const MAGIC: &[u8; 8] = b"SEFINPZ\n";
const VERSION: u32 = 1;

/// Serialize to the flat archive format. Attributes do not survive (NPZ
/// has no attribute concept); datasets and their paths round-trip exactly.
pub fn to_flat_bytes(file: &H5File) -> Vec<u8> {
    let paths = file.dataset_paths();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(paths.len() as u32).to_le_bytes());
    for path in &paths {
        let ds = file.dataset(path).expect("path came from dataset_paths");
        payload.extend_from_slice(&(path.len() as u32).to_le_bytes());
        payload.extend_from_slice(path.as_bytes());
        payload.push(ds.dtype().tag_public());
        payload.extend_from_slice(&(ds.shape().len() as u32).to_le_bytes());
        for &d in ds.shape() {
            payload.extend_from_slice(&(d as u64).to_le_bytes());
        }
        if ds.dtype() == Dtype::I8Q {
            payload.extend_from_slice(&ds.scale().to_bits().to_le_bytes());
        }
        payload.extend_from_slice(&(ds.bytes().len() as u64).to_le_bytes());
        payload.extend_from_slice(ds.bytes());
    }
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserialize a flat archive back into a hierarchical file (names with
/// `/` recreate the group tree, as when loading an NPZ into h5py).
pub fn from_flat_bytes(bytes: &[u8]) -> Result<H5File> {
    if bytes.len() < 16 {
        return Err(Error::Malformed(format!("flat file too short: {} bytes", bytes.len())));
    }
    if &bytes[..8] != MAGIC {
        return Err(Error::Malformed("bad magic — not a SEFI-NPZ file".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::Malformed(format!("unsupported flat version {version}")));
    }
    let stored = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = &bytes[16..];
    if stored != crc32(payload) {
        return Err(Error::Malformed("flat archive checksum mismatch".to_string()));
    }

    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if payload.len() - *pos < n {
            return Err(Error::Malformed("flat archive truncated".to_string()));
        }
        let s = &payload[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let u32_at = |pos: &mut usize| -> Result<u32> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes")))
    };
    let u64_at = |pos: &mut usize| -> Result<u64> {
        Ok(u64::from_le_bytes(take(pos, 8)?.try_into().expect("8 bytes")))
    };

    let count = u32_at(&mut pos)?;
    let mut file = H5File::new();
    for _ in 0..count {
        let name_len = u32_at(&mut pos)? as usize;
        if name_len as u64 > MAX_NAME_LEN {
            return Err(Error::Malformed(format!("flat name length {name_len} exceeds limit")));
        }
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| Error::Malformed("non-UTF-8 flat name".to_string()))?;
        let dtype = Dtype::from_tag_public(take(&mut pos, 1)?[0])?;
        let rank = u32_at(&mut pos)?;
        if rank > MAX_RANK {
            return Err(Error::Malformed(format!("flat rank {rank} exceeds limit")));
        }
        let mut shape = Vec::with_capacity(rank as usize);
        for _ in 0..rank {
            let d = u64_at(&mut pos)?;
            if d > MAX_LEN {
                return Err(Error::Malformed(format!("flat dimension {d} exceeds limit")));
            }
            shape.push(d as usize);
        }
        let scale = if dtype == Dtype::I8Q {
            let s = f32::from_bits(u32_at(&mut pos)?);
            if !s.is_finite() || s <= 0.0 {
                return Err(Error::Malformed(format!("invalid I8Q quantization scale {s}")));
            }
            s
        } else {
            1.0
        };
        let byte_len = u64_at(&mut pos)?;
        if byte_len > MAX_LEN {
            return Err(Error::Malformed(format!("flat data length {byte_len} exceeds limit")));
        }
        let data = take(&mut pos, byte_len as usize)?.to_vec();
        let ds = Dataset::from_raw_public(dtype, shape, data)?.with_scale(scale);
        file.create_dataset(&name, ds)?;
    }
    if pos != payload.len() {
        return Err(Error::Malformed("trailing bytes in flat archive".to_string()));
    }
    Ok(file)
}

impl H5File {
    /// Write the flat (NPZ-style) serialization to disk.
    pub fn save_flat(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path.as_ref(), to_flat_bytes(self))
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))
    }

    /// Read a flat (NPZ-style) archive from disk.
    pub fn load_flat(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))?;
        from_flat_bytes(&bytes)
    }
}

/// Drop group attributes explicitly (documented NPZ lossiness) so callers
/// can assert what survives: everything the injector can touch.
pub fn strip_attrs(file: &H5File) -> H5File {
    let mut out = H5File::new();
    for path in file.dataset_paths() {
        if let Some(Node::Dataset(ds)) = file.get(&path) {
            out.create_dataset(&path, ds.clone()).expect("paths are unique");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Attr;

    fn sample() -> H5File {
        let mut f = H5File::new();
        f.create_dataset(
            "predictor/conv1/W",
            Dataset::from_f32(&[1.0, -2.5, 3.25], &[3], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("updater/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn flat_roundtrip_preserves_datasets_and_paths() {
        let f = sample();
        let g = from_flat_bytes(&to_flat_bytes(&f)).unwrap();
        assert_eq!(f.dataset_paths(), g.dataset_paths());
        for p in f.dataset_paths() {
            assert_eq!(f.dataset(&p).unwrap(), g.dataset(&p).unwrap(), "{p}");
        }
    }

    #[test]
    fn attributes_are_documented_lossy() {
        let mut f = sample();
        f.root_mut().set_attr("framework", Attr::Str("chainer".into()));
        let g = from_flat_bytes(&to_flat_bytes(&f)).unwrap();
        assert!(g.root().attr("framework").is_none());
        assert_eq!(g, strip_attrs(&f));
    }

    #[test]
    fn flat_corruption_is_detected() {
        let mut bytes = to_flat_bytes(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(from_flat_bytes(&bytes).is_err());
        assert!(from_flat_bytes(&bytes[..10]).is_err());
        assert!(from_flat_bytes(b"garbage").is_err());
        // Hierarchical magic is not flat magic.
        let h = sample().to_bytes();
        assert!(from_flat_bytes(&h).is_err());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = crate::testutil::TestDir::new("flat");
        let p = dir.file("ckpt.sefinpz");
        let f = sample();
        f.save_flat(&p).unwrap();
        let g = H5File::load_flat(&p).unwrap();
        assert_eq!(strip_attrs(&f), g);
    }
}
