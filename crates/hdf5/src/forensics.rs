//! Checkpoint forensics: non-destructive damage scans, salvage of
//! truncated/corrupted v2 files, byte-offset attribution, and
//! checkpoint-to-checkpoint diffs.
//!
//! Everything here is a *library* surface shared by the `sefi-ckpt` CLI
//! and the experiment harness. The contract throughout is "never panic on
//! hostile bytes": a file too damaged to analyze comes back as an
//! [`ScanStructure::Unreadable`] report (scan) or a clean error (salvage),
//! not a crash.

use crate::crc::crc32;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::format_v2::{FileIndex, LoadPolicy, SUPERBLOCK_LEN};
use crate::sidecar::{check_binding, EccSidecar, SectionRepair};
use crate::H5File;

// -------------------------------------------------------------------- scan

/// Structural readability of a scanned file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanStructure {
    /// Superblock and index verified; per-section findings follow.
    Readable {
        /// File length the index promises (end of the last section).
        expected_len: usize,
        /// Bytes actually present.
        actual_len: usize,
    },
    /// The superblock or index is damaged — nothing can be attributed and
    /// salvage is impossible.
    Unreadable {
        /// The parse error, verbatim.
        error: String,
    },
}

/// Verdict on one dataset section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionState {
    /// Stored bytes match the indexed CRC.
    Intact,
    /// All bytes present but the CRC fails.
    CrcMismatch,
    /// The file ends inside (or before) this section.
    Truncated {
        /// Section bytes actually present.
        available: usize,
    },
}

/// One section's scan row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionScan {
    /// Dataset path.
    pub path: String,
    /// Absolute byte offset of the section.
    pub offset: usize,
    /// Indexed section length.
    pub byte_len: usize,
    /// CRC/truncation verdict.
    pub state: SectionState,
    /// ECC word health from a bound sidecar (fully-present sections only).
    pub ecc: Option<SectionRepair>,
}

/// Full scan outcome. Produced by [`scan_bytes`]; never an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Whether the superblock/index layer parsed, and the length budget.
    pub structure: ScanStructure,
    /// Per-section verdicts (empty when unreadable).
    pub sections: Vec<SectionScan>,
    /// Why the supplied sidecar was ignored, if it was.
    pub sidecar_error: Option<String>,
}

impl ScanReport {
    /// True when the structure parsed, every section is intact, no bytes
    /// are missing or trailing, and no ECC word-level damage was seen.
    pub fn is_clean(&self) -> bool {
        match &self.structure {
            ScanStructure::Unreadable { .. } => false,
            ScanStructure::Readable { expected_len, actual_len } => {
                expected_len == actual_len
                    && self.sidecar_error.is_none()
                    && self.sections.iter().all(|s| {
                        s.state == SectionState::Intact
                            && s.ecc.is_none_or(|e| {
                                e.corrected_words == 0
                                    && e.uncorrectable_words == 0
                                    && e.parity_faults == 0
                            })
                    })
            }
        }
    }

    /// Sections that are not intact as stored.
    pub fn damaged_sections(&self) -> usize {
        self.sections.iter().filter(|s| s.state != SectionState::Intact).count()
    }
}

/// Scan v2 checkpoint bytes (optionally against an ECC sidecar) without
/// modifying or fully decoding anything. Tolerates truncation: the index
/// must verify, but sections may be cut short.
pub fn scan_bytes(bytes: &[u8], sidecar: Option<&EccSidecar>) -> ScanReport {
    let index = match FileIndex::parse_lenient(bytes) {
        Ok(ix) => ix,
        Err(e) => {
            return ScanReport {
                structure: ScanStructure::Unreadable { error: e.to_string() },
                sections: Vec::new(),
                sidecar_error: None,
            }
        }
    };
    let (sidecar, sidecar_error) = match sidecar {
        Some(sc) => match check_binding(sc, &index) {
            Ok(()) => (Some(sc), None),
            Err(e) => (None, Some(e.to_string())),
        },
        None => (None, None),
    };
    let sections = index
        .entries()
        .iter()
        .enumerate()
        .map(|(ordinal, e)| {
            let available = bytes.len().saturating_sub(e.offset).min(e.byte_len);
            let (state, ecc) = if available < e.byte_len {
                (SectionState::Truncated { available }, None)
            } else {
                let stored = &bytes[e.offset..e.offset + e.byte_len];
                let state = if crc32(stored) == e.crc {
                    SectionState::Intact
                } else {
                    SectionState::CrcMismatch
                };
                (state, sidecar.and_then(|sc| sc.scrub_section(ordinal, stored)))
            };
            SectionScan { path: e.path.clone(), offset: e.offset, byte_len: e.byte_len, state, ecc }
        })
        .collect();
    ScanReport {
        structure: ScanStructure::Readable {
            expected_len: index.expected_len(),
            actual_len: bytes.len(),
        },
        sections,
        sidecar_error,
    }
}

// ------------------------------------------------------------------ locate

/// What lives at one absolute byte offset of a v2 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteLocation {
    /// The 24-byte fixed superblock.
    Superblock,
    /// The CRC'd index area.
    Index,
    /// Inside a dataset section.
    Dataset {
        /// Dataset path.
        path: String,
        /// Linear element index within the dataset.
        element: usize,
        /// Byte offset within that element (bit `8*byte_in_element` up).
        byte_in_element: usize,
    },
    /// Past the end the index promises.
    PastEnd,
}

/// Attribute an absolute byte offset through a parsed index. Zero-length
/// sections own no bytes, and the section layout is contiguous, so every
/// offset classifies uniquely.
pub fn locate_byte(index: &FileIndex, offset: usize) -> ByteLocation {
    if offset < SUPERBLOCK_LEN {
        return ByteLocation::Superblock;
    }
    if offset < index.payload_start() {
        return ByteLocation::Index;
    }
    match index.locate(offset) {
        Some(e) => {
            let rel = offset - e.offset;
            let w = e.dtype.size().max(1);
            ByteLocation::Dataset {
                path: e.path.clone(),
                element: rel / w,
                byte_in_element: rel % w,
            }
        }
        None => ByteLocation::PastEnd,
    }
}

// ----------------------------------------------------------------- salvage

/// What [`salvage`] did to each dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Sections that verified as stored.
    pub intact: Vec<String>,
    /// Sections repaired by ECC to a CRC-verified state.
    pub corrected: Vec<String>,
    /// Unrecoverable sections replaced with zeros of the indexed shape.
    pub zero_filled: Vec<String>,
    /// Zero-filled integer-scalar `…/epoch` datasets rewritten to the
    /// caller's default so a resume has a defined restart position.
    pub epoch_defaults: Vec<String>,
    /// Payload bytes the file was short of (zero-padded before decoding).
    pub missing_bytes: usize,
}

impl SalvageReport {
    /// True when nothing had to be repaired, zero-filled, or padded.
    pub fn is_clean(&self) -> bool {
        self.corrected.is_empty() && self.zero_filled.is_empty() && self.missing_bytes == 0
    }
}

/// Rebuild a loadable checkpoint from damaged/truncated v2 bytes.
///
/// The superblock and index must still verify — without a trustworthy
/// index there is nothing to rebuild against, and that is a clean error.
/// Beyond that: missing payload is zero-padded, trailing garbage dropped,
/// sections are ECC-repaired when a bound `sidecar` allows it, and
/// unrecoverable sections are zero-filled. A zero-filled integer scalar
/// whose last path segment is `epoch` is set to `default_epoch`, so a
/// corrupted `meta/epoch` yields a resumable file instead of a dead one.
///
/// The returned file always re-encodes to bytes that load under
/// [`LoadPolicy::Strict`] — the salvage invariant the fuzz harness checks.
pub fn salvage(
    bytes: &[u8],
    sidecar: Option<&EccSidecar>,
    default_epoch: i64,
) -> Result<(H5File, SalvageReport)> {
    let index = FileIndex::parse_lenient(bytes)?;
    let expected = index.expected_len();
    let mut padded = bytes.to_vec();
    let missing_bytes = expected.saturating_sub(padded.len());
    padded.resize(expected, 0);
    // A non-binding sidecar is ignored rather than fatal: salvage should
    // recover as much as it can from whatever it is given.
    let sidecar = sidecar.filter(|sc| check_binding(sc, &index).is_ok());
    let (policy, sc) = match sidecar {
        Some(sc) => (LoadPolicy::Correct, Some(sc)),
        None => (LoadPolicy::Quarantine, None),
    };
    let (mut file, load) = match sc {
        Some(sc) => H5File::from_bytes_with_ecc(&padded, policy, sc)?,
        None => H5File::from_bytes_with_policy(&padded, policy)?,
    };
    let mut report = SalvageReport {
        intact: load.loaded,
        corrected: load.corrected,
        missing_bytes,
        ..SalvageReport::default()
    };
    for path in load.quarantined {
        let entry = index.entry(&path).ok_or_else(|| Error::NotFound(path.clone()))?;
        let is_epoch_scalar = path.rsplit('/').next() == Some("epoch")
            && entry.shape.is_empty()
            && !entry.dtype.is_float();
        let ds = if is_epoch_scalar {
            report.epoch_defaults.push(path.clone());
            let mut ds = Dataset::zeros(&entry.shape, entry.dtype);
            ds.set_i64(0, default_epoch)?;
            ds
        } else {
            // Preserve the indexed quantization scale so a zero-filled
            // I8Q tensor re-encodes with its original metadata.
            Dataset::zeros(&entry.shape, entry.dtype).with_scale(f32::from_bits(entry.scale_bits))
        };
        file.create_dataset(&path, ds)?;
        report.zero_filled.push(path);
    }
    Ok((file, report))
}

// -------------------------------------------------------------------- diff

/// How one dataset differs between two checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffState {
    /// Present in the first file only.
    OnlyInA,
    /// Present in the second file only.
    OnlyInB,
    /// Shapes disagree; neither byte nor element deltas are meaningful.
    LayoutChanged,
    /// Same shape, different storage dtype. Raw byte offsets are
    /// meaningless across element widths (a flip at byte 6 of an f64
    /// array is element 0, but element 3 of an f16 array), so the files
    /// are compared element-by-element at their *logical* values instead.
    DtypeChanged {
        /// Storage dtype in the first file.
        from: crate::dataset::Dtype,
        /// Storage dtype in the second file.
        to: crate::dataset::Dtype,
        /// Elements whose logical (widened) values differ.
        elements: usize,
    },
    /// Same layout, different content.
    Changed {
        /// Bytes that differ.
        bytes: usize,
        /// Elements with at least one differing byte.
        elements: usize,
    },
}

/// One differing dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Dataset path.
    pub path: String,
    /// The difference.
    pub state: DiffState,
}

/// Outcome of [`diff`]: only differing datasets are itemized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Differing datasets, path-sorted.
    pub changed: Vec<DiffEntry>,
    /// Datasets identical in both files.
    pub identical: usize,
}

impl DiffReport {
    /// True when the two checkpoints hold the same datasets with the same
    /// bytes.
    pub fn is_identical(&self) -> bool {
        self.changed.is_empty()
    }

    /// Total differing bytes across `Changed` datasets.
    pub fn total_byte_delta(&self) -> usize {
        self.changed
            .iter()
            .map(|e| match e.state {
                DiffState::Changed { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }
}

/// Per-dataset comparison of two decoded checkpoints.
pub fn diff(a: &H5File, b: &H5File) -> DiffReport {
    let mut paths: Vec<String> = a.dataset_paths();
    for p in b.dataset_paths() {
        if !paths.contains(&p) {
            paths.push(p);
        }
    }
    paths.sort();
    let mut report = DiffReport::default();
    for path in paths {
        let state = match (a.dataset(&path), b.dataset(&path)) {
            (Ok(da), Ok(db)) => {
                if da.shape() != db.shape() {
                    Some(DiffState::LayoutChanged)
                } else if da.dtype() != db.dtype() {
                    // Same tensor stored at two precisions (a checkpoint
                    // saved f32 next to its bf16 twin): compare each
                    // element's logical value, not raw bytes. Integer
                    // pairs compare exactly; anything involving a real
                    // dtype widens to f64 first.
                    let both_int = !da.dtype().is_real() && !db.dtype().is_real();
                    let differing = (0..da.len())
                        .filter(|&i| {
                            if both_int {
                                da.get_i64(i).ok() != db.get_i64(i).ok()
                            } else {
                                let (x, y) = (da.get_f64(i).ok(), db.get_f64(i).ok());
                                match (x, y) {
                                    (Some(x), Some(y)) => x != y && !(x.is_nan() && y.is_nan()),
                                    _ => x.is_some() != y.is_some(),
                                }
                            }
                        })
                        .count();
                    // Flagged even at zero differing elements: storage
                    // precision changed, which matters to a forensics
                    // reader even when every value survived widening.
                    Some(DiffState::DtypeChanged {
                        from: da.dtype(),
                        to: db.dtype(),
                        elements: differing,
                    })
                } else if da.bytes() == db.bytes() {
                    report.identical += 1;
                    None
                } else {
                    let bytes = da.bytes().iter().zip(db.bytes()).filter(|(x, y)| x != y).count();
                    let w = da.dtype().size().max(1);
                    let elements = da
                        .bytes()
                        .chunks(w)
                        .zip(db.bytes().chunks(w))
                        .filter(|(x, y)| x != y)
                        .count();
                    Some(DiffState::Changed { bytes, elements })
                }
            }
            (Ok(_), Err(_)) => Some(DiffState::OnlyInA),
            (Err(_), Ok(_)) => Some(DiffState::OnlyInB),
            (Err(_), Err(_)) => None,
        };
        if let Some(state) = state {
            report.changed.push(DiffEntry { path, state });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Dtype};

    fn sample() -> H5File {
        let mut f = H5File::new();
        let w: Vec<f32> = (0..24).map(|i| (i as f32) * 1.5 - 7.0).collect();
        f.create_dataset("model_weights/fc/W", Dataset::from_f32(&w, &[6, 4], Dtype::F32).unwrap())
            .unwrap();
        f.create_dataset(
            "model_weights/fc/b",
            Dataset::from_f32(&[0.25; 4], &[4], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn scan_of_a_pristine_file_is_clean() {
        let bytes = sample().to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        for sidecar in [None, Some(&sc)] {
            let report = scan_bytes(&bytes, sidecar);
            assert!(report.is_clean(), "{report:?}");
            assert_eq!(report.damaged_sections(), 0);
            assert_eq!(report.sections.len(), 3);
        }
    }

    #[test]
    fn scan_pinpoints_a_payload_flip() {
        let bytes = sample().to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let e = index.entry("model_weights/fc/W").unwrap().clone();
        let mut bad = bytes.clone();
        bad[e.offset + 5] ^= 0x10;
        let report = scan_bytes(&bad, None);
        assert!(!report.is_clean());
        assert_eq!(report.damaged_sections(), 1);
        let hit = report.sections.iter().find(|s| s.state == SectionState::CrcMismatch).unwrap();
        assert_eq!(hit.path, "model_weights/fc/W");
        // With a sidecar the scrub counts the damaged word.
        let sc = EccSidecar::protect(&bytes).unwrap();
        let report = scan_bytes(&bad, Some(&sc));
        let hit = report.sections.iter().find(|s| s.path == "model_weights/fc/W").unwrap();
        assert_eq!(hit.ecc.unwrap().corrected_words, 1);
    }

    #[test]
    fn scan_reports_truncation_and_unreadability() {
        let bytes = sample().to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let cut = index.entries()[1].offset + 1;
        let report = scan_bytes(&bytes[..cut], None);
        assert!(matches!(report.structure, ScanStructure::Readable { .. }));
        assert_eq!(report.damaged_sections(), 2, "two sections lost bytes");
        assert!(matches!(report.sections[2].state, SectionState::Truncated { .. }));
        // Damage the index itself: unreadable, not a panic.
        let mut bad = bytes.clone();
        bad[SUPERBLOCK_LEN] ^= 0xFF;
        let report = scan_bytes(&bad, None);
        assert!(matches!(report.structure, ScanStructure::Unreadable { .. }));
        assert!(!report.is_clean());
    }

    #[test]
    fn scan_flags_a_foreign_sidecar() {
        let bytes = sample().to_bytes_v2();
        let mut other = sample();
        other.create_dataset("extra", Dataset::scalar_i64(3)).unwrap();
        let foreign = EccSidecar::protect(&other.to_bytes_v2()).unwrap();
        let report = scan_bytes(&bytes, Some(&foreign));
        assert!(report.sidecar_error.is_some());
        assert!(!report.is_clean());
        assert!(report.sections.iter().all(|s| s.ecc.is_none()));
    }

    #[test]
    fn locate_classifies_every_byte_of_a_file() {
        let bytes = sample().to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        assert_eq!(locate_byte(&index, 0), ByteLocation::Superblock);
        assert_eq!(locate_byte(&index, SUPERBLOCK_LEN), ByteLocation::Index);
        let e = index.entry("model_weights/fc/W").unwrap();
        let got = locate_byte(&index, e.offset + 9);
        assert_eq!(
            got,
            ByteLocation::Dataset {
                path: "model_weights/fc/W".into(),
                element: 2,
                byte_in_element: 1
            }
        );
        assert_eq!(locate_byte(&index, bytes.len()), ByteLocation::PastEnd);
    }

    #[test]
    fn salvage_zero_fills_and_defaults_the_epoch() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let epoch = index.entry("meta/epoch").unwrap().clone();
        let w = index.entry("model_weights/fc/W").unwrap().clone();
        let mut bad = bytes.clone();
        bad[epoch.offset] ^= 0x01;
        bad[w.offset] ^= 0x03; // two flips in one word: beyond any repair
        let (rescued, report) = salvage(&bad, None, 7).unwrap();
        assert_eq!(report.zero_filled.len(), 2);
        assert_eq!(report.epoch_defaults, vec!["meta/epoch".to_string()]);
        assert_eq!(rescued.dataset("meta/epoch").unwrap().get_i64(0).unwrap(), 7);
        assert!(rescued.dataset("model_weights/fc/W").unwrap().bytes().iter().all(|&b| b == 0));
        // The salvage invariant: the rebuilt file loads strictly.
        let out = rescued.to_bytes_v2();
        H5File::from_bytes(&out).unwrap();
    }

    #[test]
    fn salvage_with_sidecar_repairs_instead_of_zeroing() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        let e = index.entry("meta/epoch").unwrap().clone();
        let mut bad = bytes.clone();
        bad[e.offset] ^= 0x01;
        let (rescued, report) = salvage(&bad, Some(&sc), 0).unwrap();
        assert_eq!(report.corrected, vec!["meta/epoch".to_string()]);
        assert!(report.zero_filled.is_empty());
        assert_eq!(rescued, f, "single-bit damage salvages to the original file");
    }

    #[test]
    fn salvage_pads_truncated_payloads() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        // Cut mid-way through the first section (`meta/epoch`, tree order).
        let cut = index.entries()[0].offset + index.entries()[0].byte_len / 2;
        let (rescued, report) = salvage(&bytes[..cut], None, 3).unwrap();
        assert_eq!(report.missing_bytes, bytes.len() - cut);
        // The epoch scalar's lost tail was all zero bytes, so zero-padding
        // reconstructs it bit-exact and its CRC passes; the two weight
        // sections are gone entirely and get zero-filled.
        assert_eq!(report.intact, vec!["meta/epoch".to_string()]);
        assert_eq!(report.zero_filled.len(), 2);
        assert_eq!(rescued.dataset("meta/epoch").unwrap().get_i64(0).unwrap(), 20);
        let out = rescued.to_bytes_v2();
        H5File::from_bytes(&out).unwrap();
    }

    #[test]
    fn salvage_refuses_an_untrustworthy_index() {
        let bytes = sample().to_bytes_v2();
        let mut bad = bytes.clone();
        bad[SUPERBLOCK_LEN + 2] ^= 0x40;
        assert!(salvage(&bad, None, 0).is_err());
        assert!(salvage(&bytes[..10], None, 0).is_err());
    }

    #[test]
    fn diff_itemizes_changed_bytes_and_structure() {
        let a = sample();
        let mut b = sample();
        {
            let ds = b.dataset_mut("model_weights/fc/W").unwrap();
            let bits = ds.get_bits(3).unwrap();
            ds.set_bits(3, bits ^ 0x8000_0001).unwrap();
        }
        b.create_dataset("extra", Dataset::scalar_i64(1)).unwrap();
        let report = diff(&a, &b);
        assert!(!report.is_identical());
        assert_eq!(report.identical, 2);
        let by_path: std::collections::BTreeMap<_, _> =
            report.changed.iter().map(|e| (e.path.as_str(), &e.state)).collect();
        assert_eq!(by_path["extra"], &DiffState::OnlyInB);
        assert_eq!(by_path["model_weights/fc/W"], &DiffState::Changed { bytes: 2, elements: 1 });
        assert_eq!(report.total_byte_delta(), 2);
        assert!(diff(&a, &a).is_identical());
    }

    #[test]
    fn diff_compares_dtype_mismatches_logically() {
        // The same logical tensor stored at two precisions: every value
        // here is exactly representable in f32, f64 and bf16, so a byte
        // comparison would be garbage but the logical diff is empty.
        let vals = [1.0f32, -2.5, 0.0, 0.25];
        let mut a = H5File::new();
        a.create_dataset("w", Dataset::from_f32(&vals, &[4], Dtype::F32).unwrap()).unwrap();
        let mut b = H5File::new();
        b.create_dataset("w", Dataset::from_f32(&vals, &[4], Dtype::F64).unwrap()).unwrap();
        let report = diff(&a, &b);
        assert_eq!(report.changed.len(), 1);
        assert_eq!(
            report.changed[0].state,
            DiffState::DtypeChanged { from: Dtype::F32, to: Dtype::F64, elements: 0 }
        );
        assert_eq!(report.total_byte_delta(), 0, "no garbage byte offsets");

        // A value that bf16 narrows (0.1 is inexact at 8 mantissa bits)
        // shows up as exactly one logically differing element.
        let mut c = H5File::new();
        c.create_dataset(
            "w",
            Dataset::from_f32(&[1.0, -2.5, 0.1, 0.25], &[4], Dtype::BF16).unwrap(),
        )
        .unwrap();
        let report = diff(&a, &c);
        assert_eq!(
            report.changed[0].state,
            DiffState::DtypeChanged { from: Dtype::F32, to: Dtype::BF16, elements: 1 }
        );

        // Shape disagreement is still a layout change, not a dtype diff.
        let mut d = H5File::new();
        d.create_dataset("w", Dataset::from_f32(&vals, &[2, 2], Dtype::F32).unwrap()).unwrap();
        let report = diff(&a, &d);
        assert_eq!(report.changed[0].state, DiffState::LayoutChanged);
    }

    #[test]
    fn salvage_preserves_i8q_scale_on_zero_fill() {
        let mut f = H5File::new();
        f.create_dataset(
            "q",
            Dataset::from_f32(&[0.5, -1.0, 0.25, 0.75], &[4], Dtype::I8Q).unwrap(),
        )
        .unwrap();
        let scale = f.dataset("q").unwrap().scale();
        let bytes = f.to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let e = index.entry("q").unwrap().clone();
        let mut bad = bytes.clone();
        bad[e.offset] ^= 0x03; // beyond single-bit repair
        let (rescued, report) = salvage(&bad, None, 0).unwrap();
        assert_eq!(report.zero_filled, vec!["q".to_string()]);
        let ds = rescued.dataset("q").unwrap();
        assert_eq!(ds.scale(), scale, "indexed scale survives zero-fill");
        // The salvage invariant holds for quantized tensors too.
        H5File::from_bytes(&rescued.to_bytes_v2()).unwrap();
    }
}
