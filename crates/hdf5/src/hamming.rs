//! Extended Hamming(72,64): 64 data bits + 7 Hamming parity bits + 1
//! overall parity bit, the classic DRAM SEC-DED word.

/// Outcome of decoding one protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeResult {
    /// No error.
    Clean(u64),
    /// A single-bit error was corrected. The flipped codeword position is
    /// reported (a parity-bit error leaves the data untouched).
    Corrected {
        /// The repaired data word.
        data: u64,
        /// True when the error hit a data bit (false: parity bit).
        data_bit: bool,
    },
    /// An even number (≥2) of flips: detected, not correctable. The data
    /// returned is the *stored* word, known to be unreliable.
    DoubleError(u64),
}

const PARITY_POSITIONS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Is `pos` (1-based codeword position) a Hamming parity position?
fn is_parity_pos(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// Lay out the 64 data bits into codeword positions 1..=71 (skipping the
/// seven Hamming parity positions; the 72nd codeword bit is the overall
/// parity, carried in the parity byte), as a u128 bitset by position.
fn spread(data: u64) -> u128 {
    let mut cw = 0u128;
    let mut bit = 0u32;
    for pos in 1u32..=71 {
        if is_parity_pos(pos) {
            continue;
        }
        if (data >> bit) & 1 == 1 {
            cw |= 1u128 << pos;
        }
        bit += 1;
    }
    cw
}

/// Inverse of [`spread`].
fn gather(cw: u128) -> u64 {
    let mut data = 0u64;
    let mut bit = 0u32;
    for pos in 1u32..=71 {
        if is_parity_pos(pos) {
            continue;
        }
        if (cw >> pos) & 1 == 1 {
            data |= 1u64 << bit;
        }
        bit += 1;
    }
    data
}

/// Hamming parities of a codeword bitset (even parity over covered
/// positions, parity positions excluded from coverage computation).
fn hamming_parities(cw: u128) -> u8 {
    let mut out = 0u8;
    for (i, &p) in PARITY_POSITIONS.iter().enumerate() {
        let mut acc = 0u32;
        for pos in 1u32..=71 {
            if !is_parity_pos(pos) && pos & p != 0 && (cw >> pos) & 1 == 1 {
                acc ^= 1;
            }
        }
        out |= (acc as u8) << i;
    }
    out
}

/// Encode a data word into its 8-bit parity byte: bits 0–6 the Hamming
/// parities, bit 7 the overall parity of data+parities.
pub fn encode(data: u64) -> u8 {
    let cw = spread(data);
    let parities = hamming_parities(cw);
    let overall = (data.count_ones() + parities.count_ones()) & 1;
    parities | ((overall as u8) << 7)
}

/// Decode a (possibly corrupted) data word against its stored parity byte.
pub fn decode(data: u64, parity: u8) -> DecodeResult {
    let cw = spread(data);
    let computed = hamming_parities(cw);
    let stored_hamming = parity & 0x7F;
    // Syndrome: XOR of check mismatches, interpreted as an error position.
    let syndrome_bits = computed ^ stored_hamming;
    let mut syndrome = 0u32;
    for (i, &p) in PARITY_POSITIONS.iter().enumerate() {
        if (syndrome_bits >> i) & 1 == 1 {
            syndrome |= p;
        }
    }
    // Overall parity over data + stored parity byte (all 8 bits: the
    // overall bit protects itself by inclusion).
    let overall_ok = (data.count_ones() + parity.count_ones()) & 1 == 0;

    match (syndrome, overall_ok) {
        (0, true) => DecodeResult::Clean(data),
        (0, false) => {
            // The overall parity bit itself flipped; data is intact.
            DecodeResult::Corrected { data, data_bit: false }
        }
        (s, false) => {
            if s > 71 {
                // Syndrome outside the codeword: multi-bit corruption that
                // aliased; report as uncorrectable.
                return DecodeResult::DoubleError(data);
            }
            if is_parity_pos(s) {
                // A Hamming parity bit flipped; data is intact.
                DecodeResult::Corrected { data, data_bit: false }
            } else {
                let repaired = gather(cw ^ (1u128 << s));
                DecodeResult::Corrected { data: repaired, data_bit: true }
            }
        }
        (_, true) => DecodeResult::DoubleError(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63, 1] {
            let p = encode(data);
            assert_eq!(decode(data, p), DecodeResult::Clean(data), "{data:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0xDEAD_BEEF_CAFE_F00Du64;
        let parity = encode(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            match decode(corrupted, parity) {
                DecodeResult::Corrected { data: repaired, data_bit: true } => {
                    assert_eq!(repaired, data, "bit {bit}");
                }
                other => panic!("bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_parity_bit_flip_is_harmless() {
        let data = 0x0F1E_2D3C_4B5A_6978u64;
        let parity = encode(data);
        for bit in 0..8 {
            let bad_parity = parity ^ (1u8 << bit);
            match decode(data, bad_parity) {
                DecodeResult::Corrected { data: d, data_bit: false } => assert_eq!(d, data),
                other => panic!("parity bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn double_flips_are_detected_not_miscorrected() {
        let data = 0x1111_2222_3333_4444u64;
        let parity = encode(data);
        let mut detected = 0;
        let mut checked = 0;
        for a in 0..64u32 {
            for b in (a + 1)..64 {
                let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
                checked += 1;
                match decode(corrupted, parity) {
                    DecodeResult::DoubleError(_) => detected += 1,
                    DecodeResult::Corrected { data: d, .. } => {
                        // SEC-DED never "corrects" a double error into
                        // silently wrong data claiming it is fine.
                        assert_ne!(d, corrupted, "a={a} b={b} left corrupted data as-is");
                        panic!("double error miscorrected at a={a} b={b}");
                    }
                    DecodeResult::Clean(_) => panic!("double error missed at a={a} b={b}"),
                }
            }
        }
        assert_eq!(detected, checked, "all two-bit data errors must be flagged");
    }

    #[test]
    fn triple_flips_are_never_silently_clean() {
        // Odd-weight errors ≥3 look like single errors to SEC-DED and get
        // "corrected" to a wrong word — the known limit the paper's
        // multi-bit masks probe. What must NOT happen is Clean.
        let data = 0xAAAA_5555_AAAA_5555u64;
        let parity = encode(data);
        let mut clean = 0;
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                for c in (b + 1)..20 {
                    let corrupted = data ^ (1 << a) ^ (1 << b) ^ (1 << c);
                    if matches!(decode(corrupted, parity), DecodeResult::Clean(_)) {
                        clean += 1;
                    }
                }
            }
        }
        assert_eq!(clean, 0);
    }
}
