//! The on-disk binary format, version 2 (sectioned).
//!
//! ```text
//! superblock:  magic "SEFIH5\x89\n" (8) | version u32 LE | index_len u64 LE
//!              | index_crc32 u32 LE                       (24 bytes total)
//! index:       <group>                  (index_crc covers only these bytes)
//! group:       attr_count u32 | attrs… | child_count u32 | children…
//! child:       name str | tag u8 (1 group, 2 dataset) | body
//! dataset:     dtype u8 | rank u32 | dims u64… | [scale f32, I8Q only] |
//!              offset u64 | byte_len u64 | section_crc32 u32
//! payload:     raw dataset bytes, concatenated in index (tree) order
//! ```
//!
//! All integers little-endian; `str` and attribute encodings are shared
//! with v1. Dataset `offset` is relative to the start of the payload area
//! (superblock + index length). Encoding walks the `BTreeMap` tree, so it
//! is deterministic and encode∘decode∘encode is byte-identical.
//!
//! Where v1 keeps one CRC over the whole payload — any flip anywhere makes
//! the entire file unloadable — v2 checksums the index and each dataset
//! *section* independently. That buys three things the storage-sensitivity
//! study needs:
//!
//! * **fault localization**: a flipped payload byte is attributable to one
//!   dataset (and, through the index, to an exact entry and bit);
//! * **partial recovery**: a corrupt section can be quarantined or
//!   zero-filled ([`LoadPolicy`]) instead of failing the load, with the
//!   damage itemized in a [`LoadReport`];
//! * **lazy access**: [`IndexedFile`] reads the 24-byte superblock plus the
//!   index and then materializes single datasets on demand, so one-tensor
//!   access no longer pays a full-tree decode.
//!
//! The superblock magic is shared with v1; the version field dispatches the
//! decoder (see `format::sniff_version`).

use crate::crc::crc32;
use crate::dataset::{Dataset, Dtype};
use crate::error::{Error, Result};
use crate::format::{self, Cursor};
use crate::limits::{MAX_DEPTH, MAX_LEN};
use crate::node::{Group, Node};
use crate::sidecar::EccSidecar;
use crate::H5File;

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

pub(crate) const VERSION_V2: u32 = 2;

/// Byte length of the fixed v2 superblock (magic, version, index length,
/// index CRC).
pub const SUPERBLOCK_LEN: usize = 24;

// ----------------------------------------------------------------- policy

/// How the v2 loader treats a dataset section whose CRC fails.
///
/// The index itself is always verified under every policy: without a
/// trustworthy index there is no way to even attribute damage, so index or
/// superblock corruption is a hard [`Error::Malformed`] regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadPolicy {
    /// Abort the load on the first bad section with
    /// [`Error::SectionCorrupt`] (v1-equivalent all-or-nothing behavior).
    Strict,
    /// Skip the bad dataset: it is absent from the returned file and its
    /// path is recorded in [`LoadReport::quarantined`].
    Quarantine,
    /// Replace the bad dataset with zeros of the indexed shape/dtype; its
    /// path is recorded in [`LoadReport::quarantined`].
    ZeroFill,
    /// Attempt SEC-DED repair through an attached [`EccSidecar`] before
    /// condemning the section: if Hamming(72,64) correction restores the
    /// stored CRC, the dataset loads from the repaired bytes and its path
    /// is recorded in [`LoadReport::corrected`]; otherwise (multi-bit
    /// damage, miscorrection, or no sidecar attached) the section is
    /// quarantined exactly as under [`LoadPolicy::Quarantine`].
    Correct,
}

/// Per-dataset outcome of a policy-driven v2 load.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Paths whose sections verified and decoded cleanly, in tree order.
    pub loaded: Vec<String>,
    /// Paths whose sections failed their CRC and were quarantined or
    /// zero-filled (empty under [`LoadPolicy::Strict`] — that policy errors
    /// instead).
    pub quarantined: Vec<String>,
    /// Paths whose sections failed their CRC but were repaired to a
    /// CRC-verified state by ECC under [`LoadPolicy::Correct`]. These
    /// datasets carry their original data, but the stored bytes are
    /// damaged — the file should be rewritten.
    pub corrected: Vec<String>,
}

impl LoadReport {
    /// True when every section verified as stored — nothing quarantined
    /// and nothing that needed ECC repair.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.corrected.is_empty()
    }
}

// --------------------------------------------------------------- encoding

pub(crate) fn encode(file: &H5File) -> Vec<u8> {
    let mut index = Vec::new();
    let mut payload = Vec::new();
    encode_group(file.root(), &mut index, &mut payload);
    let mut out = Vec::with_capacity(SUPERBLOCK_LEN + index.len() + payload.len());
    out.extend_from_slice(format::MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&index).to_le_bytes());
    out.extend_from_slice(&index);
    out.extend_from_slice(&payload);
    out
}

fn encode_group(g: &Group, index: &mut Vec<u8>, payload: &mut Vec<u8>) {
    format::encode_attrs(g, index);
    let children: Vec<_> = g.children().collect();
    index.extend_from_slice(&(children.len() as u32).to_le_bytes());
    for (name, node) in children {
        format::put_str(index, name);
        match node {
            Node::Group(sub) => {
                index.push(1);
                encode_group(sub, index, payload);
            }
            Node::Dataset(ds) => {
                index.push(2);
                format::encode_shape(ds, index);
                index.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                index.extend_from_slice(&(ds.bytes().len() as u64).to_le_bytes());
                index.extend_from_slice(&crc32(ds.bytes()).to_le_bytes());
                payload.extend_from_slice(ds.bytes());
            }
        }
    }
}

// --------------------------------------------------------------- decoding

/// Read a little-endian `u32` at `at`, as a clean error (never a panic)
/// when the slice is short.
pub(crate) fn read_u32_le(bytes: &[u8], at: usize) -> Result<u32> {
    let raw = at
        .checked_add(4)
        .and_then(|end| bytes.get(at..end))
        .ok_or_else(|| Error::Malformed(format!("file too short: {} bytes", bytes.len())))?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(raw);
    Ok(u32::from_le_bytes(buf))
}

/// Read a little-endian `u64` at `at`; clean error on a short slice.
pub(crate) fn read_u64_le(bytes: &[u8], at: usize) -> Result<u64> {
    let raw = at
        .checked_add(8)
        .and_then(|end| bytes.get(at..end))
        .ok_or_else(|| Error::Malformed(format!("file too short: {} bytes", bytes.len())))?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(raw);
    Ok(u64::from_le_bytes(buf))
}

/// Validate the fixed superblock; returns (end of index = payload start,
/// stored index CRC). All arithmetic is checked: a truncated (< 24 B)
/// header or an absurd `index_len` is a clean [`Error::Malformed`].
fn parse_superblock(bytes: &[u8]) -> Result<(usize, u32)> {
    if bytes.len() < SUPERBLOCK_LEN {
        return Err(Error::Malformed(format!("v2 file too short: {} bytes", bytes.len())));
    }
    if &bytes[..8] != format::MAGIC {
        return Err(Error::Malformed("bad magic — not a SEFI-H5 file".to_string()));
    }
    let version = read_u32_le(bytes, 8)?;
    if version != VERSION_V2 {
        return Err(Error::Malformed(format!("not a v2 file (version {version})")));
    }
    let index_len = read_u64_le(bytes, 12)?;
    if index_len > MAX_LEN {
        return Err(Error::Malformed(format!("index length {index_len} exceeds limit")));
    }
    let index_end =
        usize::try_from(index_len).ok().and_then(|n| SUPERBLOCK_LEN.checked_add(n)).ok_or_else(
            || Error::Malformed(format!("index length {index_len} overflows addressing")),
        )?;
    let stored_crc = read_u32_le(bytes, 20)?;
    Ok((index_end, stored_crc))
}

/// Shared state threaded through the recursive v2 decode: the payload
/// slice, the active policy, the optional ECC sidecar, and the running
/// section cursor (`next` byte offset, `section` ordinal in tree order).
struct DecodeCtx<'a> {
    payload: &'a [u8],
    policy: LoadPolicy,
    verify: bool,
    sidecar: Option<&'a EccSidecar>,
    report: LoadReport,
    next: usize,
    section: usize,
}

/// Decode v2 bytes under a policy.
///
/// `verify == false` models a *trusting* loader that skips the index and
/// section CRC checks (structure and length validation still apply) — the
/// storage experiment uses it to measure how many flips a checksum-free
/// reader would silently accept. With `verify == false` no section is ever
/// quarantined, so the policy is inert.
///
/// `sidecar`, when supplied, must bind to this checkpoint (its stored
/// index CRC must equal the superblock's) and is only consulted under
/// [`LoadPolicy::Correct`].
pub(crate) fn decode(
    bytes: &[u8],
    policy: LoadPolicy,
    verify: bool,
    sidecar: Option<&EccSidecar>,
) -> Result<(H5File, LoadReport)> {
    let (index_end, stored_crc) = parse_superblock(bytes)?;
    if index_end > bytes.len() {
        return Err(Error::Malformed("index extends past end of file".to_string()));
    }
    let index = &bytes[SUPERBLOCK_LEN..index_end];
    if verify {
        let actual = crc32(index);
        if actual != stored_crc {
            return Err(Error::Malformed(format!(
                "index checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            )));
        }
    }
    if let Some(sc) = sidecar {
        if sc.index_crc() != stored_crc {
            return Err(Error::Malformed(format!(
                "ECC sidecar binds to index CRC {:#010x}, checkpoint has {stored_crc:#010x}",
                sc.index_crc()
            )));
        }
    }
    let mut ctx = DecodeCtx {
        payload: &bytes[index_end..],
        policy,
        verify,
        sidecar,
        report: LoadReport::default(),
        next: 0,
        section: 0,
    };
    let mut cur = Cursor::new(index);
    let root = decode_group(&mut cur, 0, "", &mut ctx)?;
    if !cur.done() {
        return Err(Error::Malformed(format!("{} trailing bytes in index", cur.remaining())));
    }
    if ctx.next != ctx.payload.len() {
        return Err(Error::Malformed(format!(
            "{} unindexed trailing payload bytes",
            ctx.payload.len() - ctx.next
        )));
    }
    let mut file = H5File::new();
    *file.root_mut() = root;
    Ok((file, ctx.report))
}

/// Decode one dataset's index record: (dtype, shape, relative offset, byte
/// length, stored section CRC). Enforces that sections are contiguous and
/// in index order — `rel_offset` must equal `next` — so a flipped offset
/// or length field is structural damage, not a silent remap.
fn decode_section_meta(
    cur: &mut Cursor<'_>,
    next: usize,
    payload_len: usize,
    path: &str,
) -> Result<(Dtype, Vec<usize>, f32, usize, u32)> {
    let (dtype, shape, scale) = format::decode_shape(cur)?;
    let rel = cur.u64()?;
    let byte_len = cur.checked_len("dataset section")?;
    let stored_crc = cur.u32()?;
    if rel != next as u64 {
        return Err(Error::Malformed(format!(
            "section at {path:?} has offset {rel}, expected contiguous {next}"
        )));
    }
    if next.checked_add(byte_len).is_none_or(|end| end > payload_len) {
        return Err(Error::Malformed(format!("section at {path:?} extends past payload")));
    }
    Ok((dtype, shape, scale, byte_len, stored_crc))
}

fn decode_group(
    cur: &mut Cursor<'_>,
    depth: u32,
    prefix: &str,
    ctx: &mut DecodeCtx<'_>,
) -> Result<Group> {
    if depth > MAX_DEPTH {
        return Err(Error::Malformed("group nesting exceeds limit".to_string()));
    }
    let mut g = Group::new();
    format::decode_attrs(cur, &mut g)?;
    let child_count = cur.u32()?;
    for _ in 0..child_count {
        let name = cur.name()?;
        let path = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
        match cur.u8()? {
            1 => {
                let sub = decode_group(cur, depth + 1, &path, ctx)?;
                g.insert_node(name, Node::Group(sub))?;
            }
            2 => {
                let (dtype, shape, scale, byte_len, stored_crc) =
                    decode_section_meta(cur, ctx.next, ctx.payload.len(), &path)?;
                let section = &ctx.payload[ctx.next..ctx.next + byte_len];
                let ordinal = ctx.section;
                ctx.next += byte_len;
                ctx.section += 1;
                if ctx.verify && crc32(section) != stored_crc {
                    // Under `Correct` with a bound sidecar, attempt SEC-DED
                    // repair and accept only if the repaired bytes pass the
                    // stored CRC (guards against miscorrected multi-bit
                    // damage).
                    let repaired = match (ctx.policy, ctx.sidecar) {
                        (LoadPolicy::Correct, Some(sc)) => sc
                            .repaired_section(ordinal, section)
                            .filter(|buf| crc32(buf) == stored_crc),
                        _ => None,
                    };
                    if let Some(buf) = repaired {
                        let ds = Dataset::from_raw(dtype, shape, buf)?.with_scale(scale);
                        g.insert_node(name, Node::Dataset(ds))?;
                        ctx.report.corrected.push(path);
                    } else {
                        match ctx.policy {
                            LoadPolicy::Strict => return Err(Error::SectionCorrupt { path }),
                            LoadPolicy::Quarantine | LoadPolicy::Correct => {
                                ctx.report.quarantined.push(path)
                            }
                            LoadPolicy::ZeroFill => {
                                let ds = Dataset::from_raw(dtype, shape, vec![0u8; byte_len])?
                                    .with_scale(scale);
                                g.insert_node(name, Node::Dataset(ds))?;
                                ctx.report.quarantined.push(path);
                            }
                        }
                    }
                } else {
                    let ds = Dataset::from_raw(dtype, shape, section.to_vec())?.with_scale(scale);
                    g.insert_node(name, Node::Dataset(ds))?;
                    ctx.report.loaded.push(path);
                }
            }
            other => return Err(Error::Malformed(format!("unknown node tag {other}"))),
        }
    }
    Ok(g)
}

// ------------------------------------------------------------- file index

/// One dataset's entry in a parsed v2 index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Absolute dataset path (`model_weights/conv1/W`).
    pub path: String,
    /// Element type.
    pub dtype: Dtype,
    /// Dataset shape (empty for scalars).
    pub shape: Vec<usize>,
    /// Per-tensor dequantization scale (`1.0` unless the dtype is I8Q).
    /// `f32` is not `Eq`; the stored bit pattern keeps the entry hashable
    /// and comparable — recover the value with `f32::from_bits`.
    pub scale_bits: u32,
    /// Absolute byte offset of the section within the file.
    pub offset: usize,
    /// Section length in bytes (`elem_count * dtype.size()`).
    pub byte_len: usize,
    /// Stored CRC-32 of the section bytes.
    pub crc: u32,
}

/// The parsed index of a v2 file: where every dataset's bytes live.
///
/// This is the map a raw byte-level injector needs to attribute a flipped
/// file offset to a (dataset, entry, bit) — or to recognize it as an
/// out-of-band superblock/index hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileIndex {
    entries: Vec<IndexEntry>,
    payload_start: usize,
    file_len: usize,
    index_crc: u32,
}

impl FileIndex {
    /// Parse the index out of complete v2 file bytes. The index CRC is
    /// always verified — an untrustworthy index cannot attribute anything.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        Self::parse_prefix(bytes, bytes.len())
    }

    /// Parse from a prefix that holds at least the superblock and index
    /// (what [`IndexedFile`] reads), with the total file length supplied
    /// separately for payload bounds validation.
    pub fn parse_prefix(prefix: &[u8], file_len: usize) -> Result<Self> {
        Self::parse_inner(prefix, file_len, false)
    }

    /// Forensic parse of possibly-truncated file bytes: the superblock and
    /// index must still be intact and CRC-verified (without a trustworthy
    /// index nothing can be attributed or salvaged), but the payload may be
    /// cut short — entries are allowed to extend past the available bytes.
    /// Compare [`FileIndex::expected_len`] against [`FileIndex::file_len`]
    /// to see how much payload is missing.
    pub fn parse_lenient(bytes: &[u8]) -> Result<Self> {
        Self::parse_inner(bytes, bytes.len(), true)
    }

    fn parse_inner(prefix: &[u8], file_len: usize, lenient: bool) -> Result<Self> {
        let (index_end, stored_crc) = parse_superblock(prefix)?;
        if index_end > prefix.len() || index_end > file_len {
            return Err(Error::Malformed("index extends past end of file".to_string()));
        }
        let index = &prefix[SUPERBLOCK_LEN..index_end];
        let actual = crc32(index);
        if actual != stored_crc {
            return Err(Error::Malformed(format!(
                "index checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            )));
        }
        let payload_len = file_len - index_end;
        // A lenient walk bounds sections only by the format-wide section
        // limit, not the bytes actually present.
        let walk_len = if lenient { usize::MAX } else { payload_len };
        let mut cur = Cursor::new(index);
        let mut entries = Vec::new();
        let mut next = 0usize;
        walk_group(&mut cur, 0, "", walk_len, index_end, &mut entries, &mut next)?;
        if !cur.done() {
            return Err(Error::Malformed(format!("{} trailing bytes in index", cur.remaining())));
        }
        if !lenient && next != payload_len {
            return Err(Error::Malformed(format!(
                "{} unindexed trailing payload bytes",
                payload_len - next
            )));
        }
        Ok(FileIndex { entries, payload_start: index_end, file_len, index_crc: stored_crc })
    }

    /// Dataset entries in tree (ascending-offset) order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Absolute offset where the payload area begins (= superblock + index
    /// length). Bytes in `[SUPERBLOCK_LEN, payload_start)` are index bytes.
    pub fn payload_start(&self) -> usize {
        self.payload_start
    }

    /// Total file length the index was validated against. Under
    /// [`FileIndex::parse_lenient`] this is the *available* length, which
    /// may be less than [`FileIndex::expected_len`].
    pub fn file_len(&self) -> usize {
        self.file_len
    }

    /// The file length the index promises: payload start plus the sum of
    /// all section lengths (sections are contiguous, so this is the end of
    /// the last entry). Equals [`FileIndex::file_len`] for a strict parse.
    pub fn expected_len(&self) -> usize {
        self.entries.last().map_or(self.payload_start, |e| e.offset + e.byte_len)
    }

    /// Stored CRC-32 of the index bytes — the identity an [`EccSidecar`]
    /// binds to.
    pub fn index_crc(&self) -> u32 {
        self.index_crc
    }

    /// Entry for a dataset path.
    pub fn entry(&self, path: &str) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// The dataset section containing an absolute file offset, if any.
    /// Offsets in the superblock or index — and offsets coinciding with
    /// zero-length sections — return `None`.
    ///
    /// Binary search: sections are contiguous and sorted by offset, so
    /// their end offsets are monotone — the first entry ending after
    /// `offset` is the only candidate that can contain it.
    pub fn locate(&self, offset: usize) -> Option<&IndexEntry> {
        let i = self.entries.partition_point(|e| e.offset + e.byte_len <= offset);
        self.entries.get(i).filter(|e| e.offset <= offset && offset < e.offset + e.byte_len)
    }
}

fn walk_group(
    cur: &mut Cursor<'_>,
    depth: u32,
    prefix: &str,
    payload_len: usize,
    payload_start: usize,
    entries: &mut Vec<IndexEntry>,
    next: &mut usize,
) -> Result<()> {
    if depth > MAX_DEPTH {
        return Err(Error::Malformed("group nesting exceeds limit".to_string()));
    }
    let mut scratch = Group::new();
    format::decode_attrs(cur, &mut scratch)?;
    let child_count = cur.u32()?;
    for _ in 0..child_count {
        let name = cur.name()?;
        let path = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
        match cur.u8()? {
            1 => walk_group(cur, depth + 1, &path, payload_len, payload_start, entries, next)?,
            2 => {
                let (dtype, shape, scale, byte_len, crc) =
                    decode_section_meta(cur, *next, payload_len, &path)?;
                entries.push(IndexEntry {
                    path,
                    dtype,
                    shape,
                    scale_bits: scale.to_bits(),
                    offset: payload_start + *next,
                    byte_len,
                    crc,
                });
                *next += byte_len;
            }
            other => return Err(Error::Malformed(format!("unknown node tag {other}"))),
        }
    }
    Ok(())
}

// ------------------------------------------------------------- lazy loads

/// A v2 file opened lazily: the superblock and index are read and verified
/// at open; dataset sections are read, CRC-checked, and decoded on demand.
///
/// This is the fast path for per-trial access — touching one tensor costs
/// one seek and one section read instead of a full-tree decode.
#[derive(Debug)]
pub struct IndexedFile {
    file: std::fs::File,
    display_path: String,
    index: FileIndex,
    sidecar: Option<EccSidecar>,
}

/// How a lazily-read dataset section came back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionStatus {
    /// The stored bytes matched their CRC.
    Clean,
    /// The CRC failed but the attached ECC sidecar repaired the section to
    /// a CRC-verified state.
    Corrected {
        /// Number of 64-bit code words the sidecar repaired.
        words: usize,
    },
}

/// How [`IndexedFile::dataset_correct_or_zero`] recovered a section — the
/// never-fails-on-payload-damage read used by hot quarantine-reload: ECC
/// repair first, zero substitution as the last resort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionRecovery {
    /// The stored bytes matched their CRC.
    Clean,
    /// ECC repaired the section to a CRC-verified state.
    Corrected {
        /// Number of 64-bit code words the sidecar repaired.
        words: usize,
    },
    /// Damage beyond repair: the dataset was substituted with zeros of the
    /// indexed dtype and shape (the index itself is CRC-verified at open,
    /// so the substitute's geometry is trustworthy).
    ZeroFilled,
}

impl IndexedFile {
    /// Open a v2 file and parse its index without reading any payload.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let display_path = path.as_ref().display().to_string();
        let io_err = |e: std::io::Error| Error::Io(display_path.clone(), e.to_string());
        let mut file = std::fs::File::open(path.as_ref()).map_err(io_err)?;
        let file_len = file.metadata().map_err(io_err)?.len();
        if file_len < SUPERBLOCK_LEN as u64 {
            return Err(Error::Malformed(format!("v2 file too short: {file_len} bytes")));
        }
        let mut superblock = [0u8; SUPERBLOCK_LEN];
        file.read_exact(&mut superblock).map_err(io_err)?;
        let (index_end, _) = parse_superblock(&superblock)?;
        if index_end as u64 > file_len {
            return Err(Error::Malformed("index extends past end of file".to_string()));
        }
        let mut prefix = superblock.to_vec();
        prefix.resize(index_end, 0);
        file.read_exact(&mut prefix[SUPERBLOCK_LEN..]).map_err(io_err)?;
        let index = FileIndex::parse_prefix(&prefix, file_len as usize)?;
        Ok(IndexedFile { file, display_path, index, sidecar: None })
    }

    /// Attach an ECC parity sidecar so lazy reads run in `Correct` mode:
    /// a section whose CRC fails is SEC-DED-repaired before being given
    /// up on. The sidecar must bind to this checkpoint (same index CRC)
    /// and describe the same sections.
    pub fn attach_sidecar(&mut self, sidecar: EccSidecar) -> Result<()> {
        if sidecar.index_crc() != self.index.index_crc() {
            return Err(Error::Malformed(format!(
                "ECC sidecar binds to index CRC {:#010x}, checkpoint has {:#010x}",
                sidecar.index_crc(),
                self.index.index_crc()
            )));
        }
        if sidecar.section_count() != self.index.entries().len() {
            return Err(Error::Malformed(format!(
                "ECC sidecar covers {} sections, checkpoint has {}",
                sidecar.section_count(),
                self.index.entries().len()
            )));
        }
        self.sidecar = Some(sidecar);
        Ok(())
    }

    /// The parsed index.
    pub fn index(&self) -> &FileIndex {
        &self.index
    }

    /// Dataset paths in tree order, without touching the payload.
    pub fn dataset_paths(&self) -> Vec<String> {
        self.index.entries().iter().map(|e| e.path.clone()).collect()
    }

    /// Read, verify, and decode a single dataset section.
    pub fn dataset(&mut self, path: &str) -> Result<Dataset> {
        self.dataset_with_status(path).map(|(ds, _)| ds)
    }

    /// Like [`IndexedFile::dataset`], also reporting whether the section
    /// was clean as stored or needed ECC repair through an attached
    /// sidecar. Without a sidecar, a failed CRC is
    /// [`Error::SectionCorrupt`] as before.
    pub fn dataset_with_status(&mut self, path: &str) -> Result<(Dataset, SectionStatus)> {
        let ordinal = self
            .index
            .entries()
            .iter()
            .position(|e| e.path == path)
            .ok_or_else(|| Error::NotFound(path.to_string()))?;
        let entry = self.index.entries()[ordinal].clone();
        let io_err = |e: std::io::Error| Error::Io(self.display_path.clone(), e.to_string());
        self.file.seek(SeekFrom::Start(entry.offset as u64)).map_err(io_err)?;
        let mut buf = vec![0u8; entry.byte_len];
        self.file.read_exact(&mut buf).map_err(io_err)?;
        let scale = f32::from_bits(entry.scale_bits);
        if crc32(&buf) == entry.crc {
            let ds = Dataset::from_raw(entry.dtype, entry.shape, buf)?.with_scale(scale);
            return Ok((ds, SectionStatus::Clean));
        }
        if let Some(sc) = &self.sidecar {
            if let Some((fixed, repair)) = sc.repaired_section_with_report(ordinal, &buf) {
                if crc32(&fixed) == entry.crc {
                    let ds = Dataset::from_raw(entry.dtype, entry.shape, fixed)?.with_scale(scale);
                    return Ok((ds, SectionStatus::Corrected { words: repair.corrected_words }));
                }
            }
        }
        Err(Error::SectionCorrupt { path: path.to_string() })
    }

    /// Read a dataset section for hot reload: a clean or ECC-repairable
    /// section decodes exactly ([`IndexedFile::dataset_with_status`]);
    /// damage beyond repair substitutes zeros of the indexed dtype and
    /// shape instead of failing. Only lookup and I/O problems remain
    /// errors — a serving failover path must always get *a* tensor back.
    pub fn dataset_correct_or_zero(&mut self, path: &str) -> Result<(Dataset, SectionRecovery)> {
        match self.dataset_with_status(path) {
            Ok((ds, SectionStatus::Clean)) => Ok((ds, SectionRecovery::Clean)),
            Ok((ds, SectionStatus::Corrected { words })) => {
                Ok((ds, SectionRecovery::Corrected { words }))
            }
            Err(Error::SectionCorrupt { .. }) => {
                let entry = self
                    .index
                    .entries()
                    .iter()
                    .find(|e| e.path == path)
                    .expect("SectionCorrupt implies the entry exists")
                    .clone();
                let ds = Dataset::from_raw(entry.dtype, entry.shape, vec![0u8; entry.byte_len])?
                    .with_scale(f32::from_bits(entry.scale_bits));
                Ok((ds, SectionRecovery::ZeroFilled))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Attr;
    use crate::testutil::TestDir;

    fn sample() -> H5File {
        let mut f = H5File::new();
        f.root_mut().set_attr("framework", Attr::Str("chainer".into()));
        f.create_dataset(
            "model_weights/conv1/W",
            Dataset::from_f32(&[1.0, -2.0, 3.5, 0.25], &[2, 2], Dtype::F32).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            "model_weights/conv1/b",
            Dataset::from_f32(&[0.5, -0.5], &[2], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
        f.create_group("empty_group").unwrap().set_attr("note", Attr::Int(7));
        f
    }

    /// Absolute offset of the first byte of a dataset's payload section.
    fn section_offset(bytes: &[u8], path: &str) -> (usize, usize) {
        let idx = FileIndex::parse(bytes).unwrap();
        let e = idx.entry(path).unwrap();
        (e.offset, e.byte_len)
    }

    #[test]
    fn v2_roundtrip_is_byte_deterministic() {
        let f = sample();
        let bytes = encode(&f);
        let (g, report) = decode(&bytes, LoadPolicy::Strict, true, None).unwrap();
        assert_eq!(f, g, "attrs, empty groups, and datasets all survive");
        assert_eq!(bytes, encode(&g), "encode∘decode∘encode is byte-identical");
        assert!(report.is_clean());
        assert_eq!(report.loaded.len(), 3);
    }

    #[test]
    fn v2_dispatches_through_from_bytes() {
        let f = sample();
        let v2 = f.to_bytes_v2();
        assert_eq!(H5File::from_bytes(&v2).unwrap(), f);
        // v1 files still load unchanged through the same entry point.
        let v1 = f.to_bytes();
        assert_ne!(v1, v2);
        assert_eq!(H5File::from_bytes(&v1).unwrap(), f);
    }

    #[test]
    fn empty_file_roundtrips() {
        let f = H5File::new();
        let bytes = encode(&f);
        let (g, report) = decode(&bytes, LoadPolicy::Strict, true, None).unwrap();
        assert_eq!(f, g);
        assert!(report.loaded.is_empty());
    }

    #[test]
    fn payload_flip_strict_errors_with_the_dataset_path() {
        let f = sample();
        let mut bytes = encode(&f);
        let (off, _) = section_offset(&bytes, "model_weights/conv1/W");
        bytes[off] ^= 0x01;
        let err = decode(&bytes, LoadPolicy::Strict, true, None).unwrap_err();
        assert_eq!(err, Error::SectionCorrupt { path: "model_weights/conv1/W".into() });
    }

    #[test]
    fn payload_flip_quarantines_exactly_one_dataset() {
        let f = sample();
        let mut bytes = encode(&f);
        let (off, _) = section_offset(&bytes, "model_weights/conv1/W");
        bytes[off] ^= 0x80;
        let (g, report) = decode(&bytes, LoadPolicy::Quarantine, true, None).unwrap();
        assert_eq!(report.quarantined, vec!["model_weights/conv1/W".to_string()]);
        assert_eq!(report.loaded.len(), 2, "the other two datasets load");
        assert!(g.dataset("model_weights/conv1/W").is_err(), "bad dataset absent");
        assert_eq!(g.dataset("meta/epoch").unwrap(), f.dataset("meta/epoch").unwrap());
        assert_eq!(
            g.dataset("model_weights/conv1/b").unwrap(),
            f.dataset("model_weights/conv1/b").unwrap()
        );
    }

    #[test]
    fn payload_flip_zerofill_substitutes_zeros() {
        let f = sample();
        let mut bytes = encode(&f);
        let (off, len) = section_offset(&bytes, "model_weights/conv1/W");
        bytes[off + len - 1] ^= 0x40;
        let (g, report) = decode(&bytes, LoadPolicy::ZeroFill, true, None).unwrap();
        assert_eq!(report.quarantined, vec!["model_weights/conv1/W".to_string()]);
        let ds = g.dataset("model_weights/conv1/W").unwrap();
        assert_eq!(ds.shape(), &[2, 2]);
        assert_eq!(ds.dtype(), Dtype::F32);
        assert!(ds.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn index_flip_is_malformed_under_every_policy() {
        let f = sample();
        let mut bytes = encode(&f);
        bytes[SUPERBLOCK_LEN] ^= 0x01; // first index byte
        for policy in [LoadPolicy::Strict, LoadPolicy::Quarantine, LoadPolicy::ZeroFill] {
            assert!(matches!(
                decode(&bytes, policy, true, None),
                Err(Error::Malformed(m)) if m.contains("index checksum")
            ));
        }
    }

    #[test]
    fn superblock_damage_is_malformed() {
        let f = sample();
        let good = encode(&f);
        for (byte, what) in [(0usize, "magic"), (8, "version"), (12, "index length")] {
            let mut b = good.clone();
            b[byte] ^= 0xFF;
            assert!(decode(&b, LoadPolicy::Quarantine, true, None).is_err(), "flip in {what}");
        }
    }

    #[test]
    fn truncation_always_detected() {
        let b = encode(&sample());
        for cut in [0, 8, 23, 24, SUPERBLOCK_LEN + 3, b.len() / 2, b.len() - 1] {
            assert!(decode(&b[..cut], LoadPolicy::Quarantine, true, None).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut b = encode(&sample());
        b.push(0xAB);
        assert!(matches!(
            decode(&b, LoadPolicy::Strict, true, None),
            Err(Error::Malformed(m)) if m.contains("trailing payload")
        ));
    }

    #[test]
    fn unverified_decode_accepts_payload_flips() {
        let f = sample();
        let mut bytes = encode(&f);
        let (off, _) = section_offset(&bytes, "model_weights/conv1/W");
        bytes[off] ^= 0x01;
        // The trusting loader returns a silently different file.
        let (g, _) = decode(&bytes, LoadPolicy::Strict, false, None).unwrap();
        assert_ne!(f, g);
        // But structural damage still fails even without CRC checks.
        let mut trunc = encode(&f);
        trunc.truncate(trunc.len() - 1);
        assert!(decode(&trunc, LoadPolicy::Strict, false, None).is_err());
    }

    #[test]
    fn index_entries_are_contiguous_and_locatable() {
        let f = sample();
        let bytes = encode(&f);
        let idx = FileIndex::parse(&bytes).unwrap();
        assert_eq!(idx.file_len(), bytes.len());
        let mut expected = idx.payload_start();
        for e in idx.entries() {
            assert_eq!(e.offset, expected, "{}", e.path);
            expected += e.byte_len;
        }
        assert_eq!(expected, bytes.len(), "payload fully covered");
        // Every payload byte maps back to its dataset; header bytes to none.
        for e in idx.entries() {
            assert_eq!(idx.locate(e.offset).unwrap().path, e.path);
            assert_eq!(idx.locate(e.offset + e.byte_len - 1).unwrap().path, e.path);
        }
        assert!(idx.locate(0).is_none(), "superblock is out-of-band");
        assert!(idx.locate(SUPERBLOCK_LEN).is_none(), "index is out-of-band");
    }

    #[test]
    fn indexed_open_reads_single_datasets_lazily() {
        let dir = TestDir::new("hdf5_v2_lazy");
        let f = sample();
        let p = dir.file("ckpt.sefi5");
        f.save_v2(&p).unwrap();
        let mut ix = H5File::open_indexed(&p).unwrap();
        assert_eq!(
            ix.dataset_paths(),
            vec!["meta/epoch", "model_weights/conv1/W", "model_weights/conv1/b"]
        );
        let w = ix.dataset("model_weights/conv1/W").unwrap();
        assert_eq!(&w, f.dataset("model_weights/conv1/W").unwrap());
        assert!(matches!(ix.dataset("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn indexed_open_detects_section_corruption_on_access() {
        let dir = TestDir::new("hdf5_v2_lazy_bad");
        let f = sample();
        let mut bytes = encode(&f);
        let (off, _) = section_offset(&bytes, "meta/epoch");
        bytes[off] ^= 0x10;
        let p = dir.file("bad.sefi5");
        std::fs::write(&p, &bytes).unwrap();
        let mut ix = H5File::open_indexed(&p).unwrap();
        // The intact dataset still reads fine; the damaged one is caught.
        assert!(ix.dataset("model_weights/conv1/W").is_ok());
        assert_eq!(
            ix.dataset("meta/epoch").unwrap_err(),
            Error::SectionCorrupt { path: "meta/epoch".into() }
        );
    }

    #[test]
    fn correct_or_zero_escalates_clean_corrected_zerofilled() {
        let dir = TestDir::new("hdf5_v2_lazy_cz");
        let f = sample();
        let bytes = encode(&f);
        let sidecar = crate::EccSidecar::protect(&bytes).unwrap();

        // Single flipped bit: ECC repairs the section exactly.
        let mut one = bytes.clone();
        let (off, _) = section_offset(&one, "model_weights/conv1/W");
        one[off] ^= 0x10;
        let p1 = dir.file("one.sefi5");
        std::fs::write(&p1, &one).unwrap();
        let mut ix = H5File::open_indexed(&p1).unwrap();
        ix.attach_sidecar(sidecar.clone()).unwrap();
        let (w, rec) = ix.dataset_correct_or_zero("model_weights/conv1/W").unwrap();
        assert_eq!(rec, SectionRecovery::Corrected { words: 1 });
        assert_eq!(&w, f.dataset("model_weights/conv1/W").unwrap());
        let (b, rec) = ix.dataset_correct_or_zero("model_weights/conv1/b").unwrap();
        assert_eq!(rec, SectionRecovery::Clean);
        assert_eq!(&b, f.dataset("model_weights/conv1/b").unwrap());

        // Two flips in one 64-bit word defeat SEC-DED: zeros of the
        // indexed shape come back instead of an error.
        let mut two = bytes.clone();
        two[off] ^= 0x03;
        let p2 = dir.file("two.sefi5");
        std::fs::write(&p2, &two).unwrap();
        let mut ix = H5File::open_indexed(&p2).unwrap();
        ix.attach_sidecar(sidecar).unwrap();
        let (z, rec) = ix.dataset_correct_or_zero("model_weights/conv1/W").unwrap();
        assert_eq!(rec, SectionRecovery::ZeroFilled);
        assert_eq!(z.shape(), f.dataset("model_weights/conv1/W").unwrap().shape());
        assert!(z.to_f32_vec().iter().all(|&v| v == 0.0));

        // Lookup problems still error.
        assert!(matches!(ix.dataset_correct_or_zero("nope"), Err(Error::NotFound(_))));

        // Without a sidecar, any damage goes straight to zeros.
        let mut ix = H5File::open_indexed(&p1).unwrap();
        let (_, rec) = ix.dataset_correct_or_zero("model_weights/conv1/W").unwrap();
        assert_eq!(rec, SectionRecovery::ZeroFilled);
    }

    #[test]
    fn indexed_open_rejects_v1_files() {
        let dir = TestDir::new("hdf5_v2_lazy_v1");
        let p = dir.file("v1.sefi5");
        sample().save(&p).unwrap();
        assert!(matches!(
            H5File::open_indexed(&p),
            Err(Error::Malformed(m)) if m.contains("version")
        ));
    }

    #[test]
    fn from_bytes_with_policy_covers_v1_files_too() {
        let f = sample();
        let (g, report) =
            H5File::from_bytes_with_policy(&f.to_bytes(), LoadPolicy::Quarantine).unwrap();
        assert_eq!(f, g);
        assert_eq!(report.loaded.len(), 3);
        assert!(report.is_clean());
    }
}
