//! Test-only filesystem helpers (mirrors `sefi-core`'s `TestDir`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, removed on drop.
///
/// Tests in this crate run in parallel within one process, and the same
/// test binaries may run concurrently across processes; a fixed path under
/// `temp_dir()` races both ways. Uniqueness comes from pid + a process-wide
/// counter.
pub(crate) struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Create a fresh directory tagged with `tag` for debuggability.
    pub fn new(tag: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sefi_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory path.
    #[allow(dead_code)]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
