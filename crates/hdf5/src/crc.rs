//! CRC-32 (IEEE 802.3 polynomial) — integrity checksum for the payload.
//!
//! Table-driven implementation, built at first use. The superblock stores
//! the CRC of everything after itself; a mismatch on load is a hard
//! [`crate::Error::Malformed`], never silent acceptance — a fault injector's
//! own storage must be able to distinguish *intended* corruption (applied to
//! decoded values and re-encoded) from accidental file damage.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320; // reflected IEEE polynomial

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of a byte slice (init 0xFFFF_FFFF, final XOR, reflected — the
/// standard zlib/PNG variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint");
        let b = crc32(b"checkpoInt");
        assert_ne!(a, b);
    }
}
