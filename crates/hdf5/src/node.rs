//! Groups, nodes, and attributes — the hierarchical object model.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// A scalar attribute attached to a group or dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Integer attribute.
    Int(i64),
    /// Floating-point attribute.
    Float(f64),
    /// String attribute.
    Str(String),
}

/// A node in the object tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A folder of further objects.
    Group(Group),
    /// A typed array leaf.
    Dataset(Dataset),
}

/// A group: named children plus attributes. `BTreeMap` keeps iteration
/// order deterministic, which the injector's location enumeration and the
/// byte-stable encoding both rely on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Group {
    children: BTreeMap<String, Node>,
    attrs: BTreeMap<String, Attr>,
}

impl Group {
    /// An empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable child iteration in name order.
    pub fn children(&self) -> impl Iterator<Item = (&str, &Node)> {
        self.children.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the group has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Look up a direct child.
    pub fn child(&self, name: &str) -> Option<&Node> {
        self.children.get(name)
    }

    /// Attributes in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &Attr)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Set an attribute.
    pub fn set_attr(&mut self, name: &str, attr: Attr) {
        self.attrs.insert(name.to_string(), attr);
    }

    /// Get an attribute.
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        self.attrs.get(name)
    }

    /// Descend (creating groups as needed) along `parts`; error if a dataset
    /// blocks the way.
    pub(crate) fn create_group_path(&mut self, parts: &[&str]) -> Result<&mut Group> {
        let mut cur = self;
        for (i, part) in parts.iter().enumerate() {
            let entry =
                cur.children.entry(part.to_string()).or_insert_with(|| Node::Group(Group::new()));
            match entry {
                Node::Group(g) => cur = g,
                Node::Dataset(_) => {
                    return Err(Error::NotAGroup(parts[..=i].join("/")));
                }
            }
        }
        Ok(cur)
    }

    /// Insert a dataset as a direct child.
    pub(crate) fn insert_dataset(&mut self, name: &str, ds: Dataset) -> Result<()> {
        if self.children.contains_key(name) {
            return Err(Error::AlreadyExists(name.to_string()));
        }
        self.children.insert(name.to_string(), Node::Dataset(ds));
        Ok(())
    }

    /// Used by the decoder, which validates uniqueness by construction.
    pub(crate) fn insert_node(&mut self, name: String, node: Node) -> Result<()> {
        if self.children.contains_key(&name) {
            return Err(Error::Malformed(format!("duplicate child name {name:?}")));
        }
        self.children.insert(name, node);
        Ok(())
    }

    pub(crate) fn get_path(&self, parts: &[&str]) -> Option<&Node> {
        let (first, rest) = parts.split_first()?;
        let node = self.children.get(*first)?;
        if rest.is_empty() {
            Some(node)
        } else {
            match node {
                Node::Group(g) => g.get_path(rest),
                Node::Dataset(_) => None,
            }
        }
    }

    pub(crate) fn get_path_mut(&mut self, parts: &[&str]) -> Option<&mut Node> {
        let (first, rest) = parts.split_first()?;
        let node = self.children.get_mut(*first)?;
        if rest.is_empty() {
            Some(node)
        } else {
            match node {
                Node::Group(g) => g.get_path_mut(rest),
                Node::Dataset(_) => None,
            }
        }
    }

    pub(crate) fn collect_dataset_paths(&self, prefix: &str, out: &mut Vec<String>) {
        for (name, node) in &self.children {
            let path = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
            match node {
                Node::Dataset(_) => out.push(path),
                Node::Group(g) => g.collect_dataset_paths(&path, out),
            }
        }
    }

    pub(crate) fn collect_object_paths(&self, prefix: &str, out: &mut Vec<String>) {
        for (name, node) in &self.children {
            let path = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
            out.push(path.clone());
            if let Node::Group(g) = node {
                g.collect_object_paths(&path, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dtype;

    #[test]
    fn attrs_set_and_get() {
        let mut g = Group::new();
        g.set_attr("framework", Attr::Str("chainer".into()));
        g.set_attr("epoch", Attr::Int(20));
        g.set_attr("lr", Attr::Float(0.01));
        assert_eq!(g.attr("framework"), Some(&Attr::Str("chainer".into())));
        assert_eq!(g.attr("epoch"), Some(&Attr::Int(20)));
        assert_eq!(g.attrs().count(), 3);
        assert!(g.attr("missing").is_none());
    }

    #[test]
    fn dataset_blocks_group_creation() {
        let mut g = Group::new();
        g.insert_dataset("w", Dataset::zeros(&[2], Dtype::F32)).unwrap();
        let err = g.create_group_path(&["w", "sub"]).unwrap_err();
        assert!(matches!(err, Error::NotAGroup(p) if p == "w"));
    }

    #[test]
    fn traversal_through_dataset_fails_cleanly() {
        let mut g = Group::new();
        g.insert_dataset("w", Dataset::zeros(&[2], Dtype::F32)).unwrap();
        assert!(g.get_path(&["w", "deeper"]).is_none());
    }

    #[test]
    fn children_iterate_in_name_order() {
        let mut g = Group::new();
        for name in ["zeta", "alpha", "mid"] {
            g.insert_dataset(name, Dataset::zeros(&[1], Dtype::U8)).unwrap();
        }
        let names: Vec<&str> = g.children().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
