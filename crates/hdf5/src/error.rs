//! Error type for the checkpoint container.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong reading, writing, or addressing a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// No object at this path.
    NotFound(String),
    /// Path exists but is a group where a dataset was required.
    NotADataset(String),
    /// Path exists but is a dataset where a group was required.
    NotAGroup(String),
    /// An object already exists at this path.
    AlreadyExists(String),
    /// A path failed validation (empty segment, leading/trailing slash, …).
    InvalidPath(String),
    /// Shape/data-length mismatch when constructing or writing a dataset.
    ShapeMismatch {
        /// Expected element count (dimension product).
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// Element index out of bounds for a dataset.
    IndexOutOfBounds {
        /// Offending linear index.
        index: usize,
        /// Dataset length.
        len: usize,
    },
    /// Operation requires a floating-point dataset but dtype is integral
    /// (or vice versa).
    DtypeMismatch(String),
    /// The on-disk bytes are not a valid file (bad magic, truncation,
    /// unknown version/dtype, checksum failure, …).
    Malformed(String),
    /// A v2 dataset section failed its own CRC while the rest of the file
    /// is intact. Under [`crate::LoadPolicy::Strict`] this aborts the
    /// load; the quarantine policies convert it into a
    /// [`crate::LoadReport`] entry instead.
    SectionCorrupt {
        /// Path of the dataset whose payload section failed its CRC.
        path: String,
    },
    /// Filesystem-level failure (path, OS message).
    Io(String, String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(p) => write!(f, "no object at path {p:?}"),
            Error::NotADataset(p) => write!(f, "object at {p:?} is a group, not a dataset"),
            Error::NotAGroup(p) => write!(f, "object at {p:?} is a dataset, not a group"),
            Error::AlreadyExists(p) => write!(f, "an object already exists at {p:?}"),
            Error::InvalidPath(p) => write!(f, "invalid object path {p:?}"),
            Error::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: dimension product {expected}, data length {got}")
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "entry index {index} out of bounds for dataset of {len} entries")
            }
            Error::DtypeMismatch(msg) => write!(f, "dtype mismatch: {msg}"),
            Error::Malformed(msg) => write!(f, "malformed file: {msg}"),
            Error::SectionCorrupt { path } => {
                write!(f, "dataset section at {path:?} failed its checksum")
            }
            Error::Io(path, msg) => write!(f, "I/O error on {path}: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::ShapeMismatch { expected: 6, got: 5 };
        assert!(e.to_string().contains('6') && e.to_string().contains('5'));
        assert!(Error::NotFound("a/b".into()).to_string().contains("a/b"));
        assert!(Error::Malformed("bad magic".into()).to_string().contains("bad magic"));
    }
}
