//! Decoder hardening limits shared by every on-disk format.
//!
//! The v1 hierarchical decoder and the flat (NPZ-style) decoder grew their
//! length caps independently and drifted: names were capped at 64 KiB in one
//! and 1 GiB in the other. Any cap that exists in one decoder but not
//! another is a corruption amplifier — a flipped length byte that one format
//! rejects instantly makes the other allocate a gigabyte. Hoisting the caps
//! here means the v2 sectioned decoder (and any future format) cannot
//! reintroduce the drift.

/// Hard cap on any single payload-carrying length field (dataset bytes,
/// dimension, attribute string): 1 GiB. A corrupted length can therefore
/// never trigger an allocation larger than this before a checksum or
/// truncation check catches it.
pub const MAX_LEN: u64 = 1 << 30;

/// Hard cap on object and attribute name lengths: 64 KiB. Checkpoint paths
/// are tens of bytes; anything near this limit is corruption.
pub const MAX_NAME_LEN: u64 = 1 << 16;

/// Maximum dataset rank. Real checkpoints top out at 4-D kernels.
pub const MAX_RANK: u32 = 16;

/// Maximum group-nesting depth: object trees in checkpoints are shallow;
/// 64 is generous and prevents stack exhaustion on maliciously nested
/// input.
pub const MAX_DEPTH: u32 = 64;
