//! A from-scratch hierarchical checkpoint container, HDF5-style.
//!
//! The paper's injector operates on HDF5 checkpoint files: "an HDF5 file has
//! a collection of groups (i.e., folders), which are sets of objects (i.e.,
//! files) or other groups […] objects are common data types, such as
//! strings, integers, floats, arrays, datasets" (Section IV-A). Rust's HDF5
//! bindings are immature (and bind C libraries we cannot vendor), so this
//! crate rebuilds the *contract* the study depends on:
//!
//! * a tree of named **groups** containing **datasets** (typed n-dimensional
//!   arrays) and scalar **attributes**;
//! * absolute **path addressing** (`model_weights/block1_conv1/kernel`);
//! * datasets stored at a declared element precision (f16/f32/f64, plus
//!   integer types), mutable **in place** at the bit level;
//! * a binary on-disk format with a superblock, a checksummed payload, and
//!   hard failure (never panic, never silent corruption) on malformed input;
//! * tree walking and **entry counting** ("in dataset objects, the product
//!   of their dimensions represents how many entries that object has"),
//!   which the injector's `percentage` mode requires.
//!
//! Nothing in the fault-injection study depends on HDF5's B-tree/chunking
//! internals, so those are intentionally out of scope (see DESIGN.md §1).

#![deny(missing_docs)]

pub mod crc;
mod dataset;
mod error;
pub mod flat;
pub mod forensics;
mod format;
mod format_v2;
pub mod hamming;
pub mod limits;
mod node;
mod path;
pub mod sidecar;
#[cfg(test)]
mod testutil;

pub use dataset::{Dataset, Dtype};
pub use error::{Error, Result};
pub use format_v2::{
    FileIndex, IndexEntry, IndexedFile, LoadPolicy, LoadReport, SectionRecovery, SectionStatus,
    SUPERBLOCK_LEN,
};
pub use node::{Attr, Group, Node};
pub use path::{join_path, split_path, validate_path};
pub use sidecar::EccSidecar;

use std::fs;
use std::path::Path;

/// An in-memory hierarchical checkpoint file.
///
/// The root is an anonymous group; every object is addressed by a
/// `/`-separated absolute path (no leading slash).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct H5File {
    root: Group,
}

impl H5File {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// The root group.
    pub fn root(&self) -> &Group {
        &self.root
    }

    /// Mutable root group.
    pub fn root_mut(&mut self) -> &mut Group {
        &mut self.root
    }

    /// Create (or return existing) nested groups along `path`.
    pub fn create_group(&mut self, path: &str) -> Result<&mut Group> {
        validate_path(path)?;
        self.root.create_group_path(&split_path(path))
    }

    /// Insert a dataset at `path`, creating intermediate groups. Fails if an
    /// object already exists at that path.
    pub fn create_dataset(&mut self, path: &str, ds: Dataset) -> Result<()> {
        validate_path(path)?;
        let parts = split_path(path);
        let (name, dirs) = parts.split_last().expect("validated path is non-empty");
        let group = self.root.create_group_path(dirs)?;
        group.insert_dataset(name, ds)
    }

    /// Look up a node by absolute path.
    pub fn get(&self, path: &str) -> Option<&Node> {
        if path.is_empty() {
            return None;
        }
        self.root.get_path(&split_path(path))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Node> {
        if path.is_empty() {
            return None;
        }
        self.root.get_path_mut(&split_path(path))
    }

    /// Look up a dataset by path.
    pub fn dataset(&self, path: &str) -> Result<&Dataset> {
        match self.get(path) {
            Some(Node::Dataset(ds)) => Ok(ds),
            Some(Node::Group(_)) => Err(Error::NotADataset(path.to_string())),
            None => Err(Error::NotFound(path.to_string())),
        }
    }

    /// Mutable dataset lookup — the corrupter's entry point.
    pub fn dataset_mut(&mut self, path: &str) -> Result<&mut Dataset> {
        match self.get_mut(path) {
            Some(Node::Dataset(ds)) => Ok(ds),
            Some(Node::Group(_)) => Err(Error::NotADataset(path.to_string())),
            None => Err(Error::NotFound(path.to_string())),
        }
    }

    /// Absolute paths of every dataset, in deterministic (sorted) order.
    pub fn dataset_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.root.collect_dataset_paths("", &mut out);
        out
    }

    /// Absolute paths of all objects (groups and datasets), sorted order.
    pub fn object_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.root.collect_object_paths("", &mut out);
        out
    }

    /// Dataset paths under a location prefix: the location itself if it is a
    /// dataset, or "all sublocations inside a location" (Table I,
    /// `locations_to_corrupt`) if it is a group.
    pub fn datasets_under(&self, location: &str) -> Result<Vec<String>> {
        match self.get(location) {
            Some(Node::Dataset(_)) => Ok(vec![location.to_string()]),
            Some(Node::Group(g)) => {
                let mut out = Vec::new();
                g.collect_dataset_paths(location, &mut out);
                Ok(out)
            }
            None => Err(Error::NotFound(location.to_string())),
        }
    }

    /// Total number of corruptible numeric entries in the file (the
    /// injector's `percentage` accounting).
    pub fn total_entries(&self) -> u64 {
        self.dataset_paths()
            .iter()
            .map(|p| self.dataset(p).map(|d| d.len() as u64).unwrap_or(0))
            .sum()
    }

    /// Serialize to the on-disk binary format, version 1 (monolithic: one
    /// CRC over the whole payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::encode(self)
    }

    /// Serialize to the sectioned v2 format (superblock + dataset index +
    /// per-section CRCs; see `format_v2` module docs).
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        format_v2::encode(self)
    }

    /// Deserialize from the on-disk binary format. The version field in the
    /// superblock selects the decoder, so v1 and v2 files both load here.
    /// v2 files are decoded strictly (any section CRC failure is an error);
    /// use [`H5File::from_bytes_with_policy`] for partial recovery.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        match format::sniff_version(bytes) {
            Some(format_v2::VERSION_V2) => {
                format_v2::decode(bytes, LoadPolicy::Strict, true, None).map(|(f, _)| f)
            }
            _ => format::decode(bytes),
        }
    }

    /// Deserialize with an explicit [`LoadPolicy`] for corrupt dataset
    /// sections, reporting per-dataset outcomes. v1 files have a single
    /// whole-payload CRC, so for them every policy behaves like
    /// [`LoadPolicy::Strict`] and a successful load reports all datasets as
    /// loaded. Without a sidecar, [`LoadPolicy::Correct`] degrades to
    /// [`LoadPolicy::Quarantine`]; use [`H5File::from_bytes_with_ecc`] to
    /// supply one.
    pub fn from_bytes_with_policy(bytes: &[u8], policy: LoadPolicy) -> Result<(Self, LoadReport)> {
        match format::sniff_version(bytes) {
            Some(format_v2::VERSION_V2) => format_v2::decode(bytes, policy, true, None),
            _ => format::decode(bytes).map(|f| {
                let loaded = f.dataset_paths();
                (f, LoadReport { loaded, quarantined: Vec::new(), corrected: Vec::new() })
            }),
        }
    }

    /// Deserialize a v2 file with an ECC parity sidecar available for
    /// repair. The sidecar must bind to this checkpoint (matching index
    /// CRC) and is consulted only under [`LoadPolicy::Correct`]: sections
    /// whose CRC fails are SEC-DED-repaired and accepted when the repaired
    /// bytes re-verify, reported in [`LoadReport::corrected`]. v1 files are
    /// rejected — there is no sectioned layout to bind parities to.
    pub fn from_bytes_with_ecc(
        bytes: &[u8],
        policy: LoadPolicy,
        sidecar: &EccSidecar,
    ) -> Result<(Self, LoadReport)> {
        match format::sniff_version(bytes) {
            Some(format_v2::VERSION_V2) => format_v2::decode(bytes, policy, true, Some(sidecar)),
            _ => Err(Error::Malformed(
                "ECC sidecars protect the sectioned v2 format only".to_string(),
            )),
        }
    }

    /// Deserialize a v2 file *without* verifying the index or section CRCs
    /// — the trusting loader a checksum-free format would have. Structural
    /// validation (lengths, bounds, shapes) still applies. The storage
    /// experiment uses this to measure how much corruption such a reader
    /// silently accepts; v1 files fall back to the normal checked decoder.
    pub fn from_bytes_unverified(bytes: &[u8]) -> Result<Self> {
        match format::sniff_version(bytes) {
            Some(format_v2::VERSION_V2) => {
                format_v2::decode(bytes, LoadPolicy::Strict, false, None).map(|(f, _)| f)
            }
            _ => format::decode(bytes),
        }
    }

    /// Write to a file (v1 format).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))
    }

    /// Write to a file in the sectioned v2 format.
    pub fn save_v2(&self, path: impl AsRef<Path>) -> Result<()> {
        fs::write(path.as_ref(), self.to_bytes_v2())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))
    }

    /// Read from a file (v1 or v2, dispatched by the version field).
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = fs::read(path.as_ref())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Open a v2 file lazily: parse the index now, read dataset sections on
    /// demand through the returned [`IndexedFile`].
    pub fn open_indexed(path: impl AsRef<Path>) -> Result<IndexedFile> {
        IndexedFile::open(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> H5File {
        let mut f = H5File::new();
        f.create_dataset(
            "model_weights/block1_conv1/kernel",
            Dataset::from_f32(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3], Dtype::F32).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            "model_weights/block1_conv1/bias",
            Dataset::from_f32(&[0.1, 0.2, 0.3], &[3], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn create_and_lookup() {
        let f = sample_file();
        assert!(matches!(f.get("model_weights"), Some(Node::Group(_))));
        assert!(matches!(f.get("model_weights/block1_conv1/kernel"), Some(Node::Dataset(_))));
        assert!(f.get("nope").is_none());
        assert!(f.get("").is_none());
        assert_eq!(f.dataset("model_weights/block1_conv1/kernel").unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn dataset_errors_are_typed() {
        let f = sample_file();
        assert!(matches!(f.dataset("model_weights"), Err(Error::NotADataset(_))));
        assert!(matches!(f.dataset("missing/x"), Err(Error::NotFound(_))));
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let mut f = sample_file();
        let err = f.create_dataset("meta/epoch", Dataset::scalar_i64(30)).unwrap_err();
        assert!(matches!(err, Error::AlreadyExists(_)));
    }

    #[test]
    fn dataset_paths_sorted_and_complete() {
        let f = sample_file();
        assert_eq!(
            f.dataset_paths(),
            vec![
                "meta/epoch".to_string(),
                "model_weights/block1_conv1/bias".to_string(),
                "model_weights/block1_conv1/kernel".to_string(),
            ]
        );
    }

    #[test]
    fn datasets_under_group_and_leaf() {
        let f = sample_file();
        let under = f.datasets_under("model_weights").unwrap();
        assert_eq!(under.len(), 2);
        let leaf = f.datasets_under("meta/epoch").unwrap();
        assert_eq!(leaf, vec!["meta/epoch".to_string()]);
        assert!(f.datasets_under("bogus").is_err());
    }

    #[test]
    fn entry_counting_uses_dimension_products() {
        let f = sample_file();
        // 2*3 + 3 + 1 (scalar)
        assert_eq!(f.total_entries(), 10);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let f = sample_file();
        let bytes = f.to_bytes();
        let g = H5File::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
        // Byte-stability: encoding is deterministic.
        assert_eq!(bytes, g.to_bytes());
    }

    #[test]
    fn save_and_load_file() {
        let dir = crate::testutil::TestDir::new("hdf5");
        let p = dir.file("ckpt.sefi5");
        let f = sample_file();
        f.save(&p).unwrap();
        let g = H5File::load(&p).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn save_v2_and_load_dispatches_by_version() {
        let dir = crate::testutil::TestDir::new("hdf5_v2");
        let p = dir.file("ckpt_v2.sefi5");
        let f = sample_file();
        f.save_v2(&p).unwrap();
        let g = H5File::load(&p).unwrap();
        assert_eq!(f, g);
    }
}
