//! Typed n-dimensional datasets with bit-level element access.
//!
//! Elements are stored little-endian in a flat byte buffer at the declared
//! dtype's width. The corrupter reads and writes *raw bit patterns* at the
//! stored precision — exactly what "altering a checkpoint file" means — and
//! the training frameworks read/write the numeric views.

use crate::error::{Error, Result};
use sefi_float::{bf16, f16, FpValue, Precision};
use std::sync::Arc;

/// Element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE-754 binary16.
    F16,
    /// bfloat16 (binary32's exponent range, 7 mantissa bits).
    BF16,
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Unsigned byte.
    U8,
    /// Int8 symmetric quantization with a per-tensor scale: stored element
    /// `q ∈ [-127, 127]` represents the value `q * scale`. Not a float
    /// dtype — the injector corrupts it with integer `bin()` semantics.
    I8Q,
}

impl Dtype {
    /// Element width in bytes.
    pub const fn size(self) -> usize {
        match self {
            Dtype::F16 | Dtype::BF16 => 2,
            Dtype::F32 | Dtype::I32 => 4,
            Dtype::F64 | Dtype::I64 => 8,
            Dtype::U8 | Dtype::I8Q => 1,
        }
    }

    /// True for floating-point dtypes (I8Q is integer storage).
    pub const fn is_float(self) -> bool {
        matches!(self, Dtype::F16 | Dtype::BF16 | Dtype::F32 | Dtype::F64)
    }

    /// True for dtypes that carry logical real values — floats plus the
    /// quantized-int representation.
    pub const fn is_real(self) -> bool {
        self.is_float() || matches!(self, Dtype::I8Q)
    }

    /// The IEEE-754 precision of a float dtype.
    pub fn precision(self) -> Option<Precision> {
        match self {
            Dtype::F16 => Some(Precision::Fp16),
            Dtype::BF16 => Some(Precision::Bf16),
            Dtype::F32 => Some(Precision::Fp32),
            Dtype::F64 => Some(Precision::Fp64),
            _ => None,
        }
    }

    /// The float dtype storing a given precision.
    pub fn from_precision(p: Precision) -> Self {
        match p {
            Precision::Fp16 => Dtype::F16,
            Precision::Bf16 => Dtype::BF16,
            Precision::Fp32 => Dtype::F32,
            Precision::Fp64 => Dtype::F64,
        }
    }

    /// Stable on-disk tag.
    pub(crate) const fn tag(self) -> u8 {
        match self {
            Dtype::F16 => 1,
            Dtype::F32 => 2,
            Dtype::F64 => 3,
            Dtype::I32 => 4,
            Dtype::I64 => 5,
            Dtype::U8 => 6,
            Dtype::BF16 => 7,
            Dtype::I8Q => 8,
        }
    }

    /// Stable on-disk tag (shared by the hierarchical and flat formats).
    pub fn tag_public(self) -> u8 {
        self.tag()
    }

    /// Inverse of [`Dtype::tag_public`].
    pub fn from_tag_public(tag: u8) -> Result<Self> {
        Self::from_tag(tag)
    }

    /// Inverse of [`Dtype::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            1 => Dtype::F16,
            2 => Dtype::F32,
            3 => Dtype::F64,
            4 => Dtype::I32,
            5 => Dtype::I64,
            6 => Dtype::U8,
            7 => Dtype::BF16,
            8 => Dtype::I8Q,
            other => return Err(Error::Malformed(format!("unknown dtype tag {other}"))),
        })
    }
}

/// A typed n-dimensional array. Scalars are rank-0 (empty shape, one entry).
///
/// The byte payload is behind an [`Arc`] with copy-on-write semantics:
/// cloning a dataset (and therefore a whole checkpoint tree) shares the
/// payload, and the first mutation through any setter copies only the
/// buffer being written. A fault-injection trial that clones a pristine
/// checkpoint and corrupts a handful of datasets pays for exactly those
/// datasets' bytes, not the full model. Equality still compares contents
/// (`Arc`'s `PartialEq` delegates to the inner `Vec<u8>`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dtype: Dtype,
    shape: Vec<usize>,
    /// Little-endian packed elements, `len() * dtype.size()` bytes.
    data: Arc<Vec<u8>>,
    /// Per-tensor dequantization scale. Meaningful only for [`Dtype::I8Q`]
    /// (stored value = element * scale); always `1.0` for every other
    /// dtype so derived equality is unaffected.
    scale: f32,
}

/// Number of entries implied by a shape ("the product of their dimensions").
/// Only valid for shapes already vetted by [`checked_elem_count`]; trusted
/// in-memory constructors use it after their own size checks.
fn shape_len(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// [`shape_len`] without wrap-around: `None` when the dimension product
/// overflows `usize`. Decoded shapes must go through this — each dimension
/// is individually capped by the decoders, but the *product* of up to
/// [`crate::limits::MAX_RANK`] capped dimensions can still wrap in release
/// builds and slip a short buffer past the byte-length validation.
pub(crate) fn checked_elem_count(shape: &[usize]) -> Option<usize> {
    shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))
}

impl Dataset {
    /// A dataset of zeros.
    pub fn zeros(shape: &[usize], dtype: Dtype) -> Self {
        Dataset {
            dtype,
            shape: shape.to_vec(),
            data: Arc::new(vec![0u8; shape_len(shape) * dtype.size()]),
            scale: 1.0,
        }
    }

    /// Build a real-valued dataset from `f32` values, narrowing/widening to
    /// `dtype` (a float type or [`Dtype::I8Q`]).
    ///
    /// Rounding contract: `F64` widens losslessly (`f32 -> f64 -> f32`
    /// round-trips exactly), `F32` is the identity, and the 16-bit formats
    /// narrow with IEEE round-to-nearest-even — `F16` rounds the 13
    /// dropped mantissa bits (overflowing > 65504 to ±∞, flushing below
    /// the subnormal range to ±0), `BF16` rounds the 16 dropped bits (same
    /// exponent range as `f32`, so only rounding carry at the very top
    /// overflows). `I8Q` quantizes symmetrically: scale = max|v|/127
    /// (1.0 for an all-zero tensor), elements = round(v/scale) clamped to
    /// [-127, 127].
    pub fn from_f32(values: &[f32], shape: &[usize], dtype: Dtype) -> Result<Self> {
        if !dtype.is_real() {
            return Err(Error::DtypeMismatch(format!("from_f32 into {dtype:?}")));
        }
        let expected = checked_elem_count(shape).ok_or_else(|| {
            Error::Malformed(format!("dataset shape {shape:?} overflows the element count"))
        })?;
        if expected != values.len() {
            return Err(Error::ShapeMismatch { expected, got: values.len() });
        }
        let mut ds = Dataset::zeros(shape, dtype);
        if dtype == Dtype::I8Q {
            let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            ds.scale = if max_abs > 0.0 && max_abs.is_finite() { max_abs / 127.0 } else { 1.0 };
        }
        for (i, &v) in values.iter().enumerate() {
            ds.write_f64_unchecked(i, v as f64);
        }
        Ok(ds)
    }

    /// Build an integer dataset from `i64` values (dtype I32/I64/U8;
    /// values are truncated to the storage width).
    pub fn from_i64(values: &[i64], shape: &[usize], dtype: Dtype) -> Result<Self> {
        if dtype.is_float() {
            return Err(Error::DtypeMismatch(format!("from_i64 into {dtype:?}")));
        }
        let expected = checked_elem_count(shape).ok_or_else(|| {
            Error::Malformed(format!("dataset shape {shape:?} overflows the element count"))
        })?;
        if expected != values.len() {
            return Err(Error::ShapeMismatch { expected, got: values.len() });
        }
        let mut ds = Dataset::zeros(shape, dtype);
        for (i, &v) in values.iter().enumerate() {
            ds.write_i64_unchecked(i, v);
        }
        Ok(ds)
    }

    /// A rank-0 I64 scalar (e.g. the checkpoint's epoch counter).
    pub fn scalar_i64(v: i64) -> Self {
        Dataset::from_i64(&[v], &[], Dtype::I64).expect("scalar shape always valid")
    }

    /// A rank-0 F64 scalar.
    pub fn scalar_f64(v: f64) -> Self {
        let mut ds = Dataset::zeros(&[], Dtype::F64);
        ds.write_f64_unchecked(0, v);
        ds
    }

    /// Reconstruct from raw parts with length validation (used by both
    /// on-disk decoders).
    pub fn from_raw_public(dtype: Dtype, shape: Vec<usize>, data: Vec<u8>) -> Result<Self> {
        Self::from_raw(dtype, shape, data)
    }

    /// Reconstruct from raw parts (used by the decoder).
    pub(crate) fn from_raw(dtype: Dtype, shape: Vec<usize>, data: Vec<u8>) -> Result<Self> {
        let expected =
            checked_elem_count(&shape).and_then(|n| n.checked_mul(dtype.size())).ok_or_else(
                || Error::Malformed(format!("dataset shape {shape:?} overflows the element count")),
            )?;
        if data.len() != expected {
            return Err(Error::Malformed(format!(
                "dataset byte length {} does not match shape (expected {expected})",
                data.len()
            )));
        }
        Ok(Dataset { dtype, shape, data: Arc::new(data), scale: 1.0 })
    }

    /// Element type.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// The per-tensor dequantization scale (`1.0` for non-I8Q dtypes).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Replace the dequantization scale (decoders restoring an I8Q
    /// dataset; a non-finite or non-positive scale is coerced to `1.0`).
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = if scale.is_finite() && scale > 0.0 { scale } else { 1.0 };
        self
    }

    /// Shape (empty for scalars).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of entries (dimension product; 1 for scalars).
    pub fn len(&self) -> usize {
        shape_len(&self.shape)
    }

    /// True when the dataset holds no entries (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw byte buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Copy-on-write access to the payload: unshares the buffer if this
    /// dataset still shares it with clones. Every setter funnels through
    /// here, so reads never pay for the copy.
    fn bytes_mut(&mut self) -> &mut [u8] {
        let buf: &mut Vec<u8> = Arc::make_mut(&mut self.data);
        buf
    }

    fn check_index(&self, index: usize) -> Result<()> {
        if index >= self.len() {
            return Err(Error::IndexOutOfBounds { index, len: self.len() });
        }
        Ok(())
    }

    /// Raw bit pattern of entry `index`, zero-extended to 64 bits.
    pub fn get_bits(&self, index: usize) -> Result<u64> {
        self.check_index(index)?;
        let w = self.dtype.size();
        let off = index * w;
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(&self.data[off..off + w]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Overwrite entry `index` with a raw bit pattern (low `size()` bytes).
    pub fn set_bits(&mut self, index: usize, bits: u64) -> Result<()> {
        self.check_index(index)?;
        let w = self.dtype.size();
        let off = index * w;
        self.bytes_mut()[off..off + w].copy_from_slice(&bits.to_le_bytes()[..w]);
        Ok(())
    }

    /// Read a float entry at its stored precision.
    pub fn get_fp(&self, index: usize) -> Result<FpValue> {
        let p = self
            .dtype
            .precision()
            .ok_or_else(|| Error::DtypeMismatch(format!("get_fp on {:?}", self.dtype)))?;
        Ok(FpValue::from_bits(p, self.get_bits(index)?))
    }

    /// Write a float entry at its stored precision.
    pub fn set_fp(&mut self, index: usize, v: FpValue) -> Result<()> {
        let p = self
            .dtype
            .precision()
            .ok_or_else(|| Error::DtypeMismatch(format!("set_fp on {:?}", self.dtype)))?;
        if v.precision() != p {
            return Err(Error::DtypeMismatch(format!(
                "value precision {:?} vs dataset {:?}",
                v.precision(),
                p
            )));
        }
        self.set_bits(index, v.to_bits())
    }

    /// Read any entry widened to `f64` (integers convert exactly for
    /// I32/U8; I8Q dequantizes through the per-tensor scale).
    pub fn get_f64(&self, index: usize) -> Result<f64> {
        match self.dtype {
            Dtype::F16 | Dtype::BF16 | Dtype::F32 | Dtype::F64 => Ok(self.get_fp(index)?.to_f64()),
            Dtype::I32 => Ok(self.get_bits(index)? as u32 as i32 as f64),
            Dtype::I64 => Ok(self.get_bits(index)? as i64 as f64),
            Dtype::U8 => Ok(self.get_bits(index)? as u8 as f64),
            Dtype::I8Q => Ok(self.get_bits(index)? as u8 as i8 as f64 * self.scale as f64),
        }
    }

    /// Write an `f64`, narrowing to the stored dtype (round-to-nearest-even
    /// for floats; saturating cast for integers).
    pub fn set_f64(&mut self, index: usize, v: f64) -> Result<()> {
        self.check_index(index)?;
        self.write_f64_unchecked(index, v);
        Ok(())
    }

    fn write_f64_unchecked(&mut self, index: usize, v: f64) {
        let bits = match self.dtype {
            Dtype::F16 => f16::from_f64(v).to_bits() as u64,
            Dtype::BF16 => bf16::from_f64(v).to_bits() as u64,
            Dtype::F32 => (v as f32).to_bits() as u64,
            Dtype::F64 => v.to_bits(),
            Dtype::I32 => (v as i32) as u32 as u64,
            Dtype::I64 => (v as i64) as u64,
            Dtype::U8 => (v as u8) as u64,
            Dtype::I8Q => {
                let q = (v / self.scale as f64).round().clamp(-127.0, 127.0);
                (q as i8) as u8 as u64
            }
        };
        let w = self.dtype.size();
        let off = index * w;
        self.bytes_mut()[off..off + w].copy_from_slice(&bits.to_le_bytes()[..w]);
    }

    /// Read an integer entry (I8Q yields the raw quantized element, not
    /// the dequantized value).
    pub fn get_i64(&self, index: usize) -> Result<i64> {
        match self.dtype {
            Dtype::I32 => Ok(self.get_bits(index)? as u32 as i32 as i64),
            Dtype::I64 => Ok(self.get_bits(index)? as i64),
            Dtype::U8 => Ok(self.get_bits(index)? as u8 as i64),
            Dtype::I8Q => Ok(self.get_bits(index)? as u8 as i8 as i64),
            _ => Err(Error::DtypeMismatch(format!("get_i64 on {:?}", self.dtype))),
        }
    }

    /// Write an integer entry (truncating to the storage width).
    pub fn set_i64(&mut self, index: usize, v: i64) -> Result<()> {
        if self.dtype.is_float() {
            return Err(Error::DtypeMismatch(format!("set_i64 on {:?}", self.dtype)));
        }
        self.check_index(index)?;
        self.write_i64_unchecked(index, v);
        Ok(())
    }

    fn write_i64_unchecked(&mut self, index: usize, v: i64) {
        let w = self.dtype.size();
        let off = index * w;
        self.bytes_mut()[off..off + w].copy_from_slice(&(v as u64).to_le_bytes()[..w]);
    }

    /// All entries widened to `f32` (the frameworks' working precision).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get_f64(i).expect("in-bounds") as f32).collect()
    }

    /// All entries widened to `f64`.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get_f64(i).expect("in-bounds")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes_and_tags_roundtrip() {
        for d in [
            Dtype::F16,
            Dtype::BF16,
            Dtype::F32,
            Dtype::F64,
            Dtype::I32,
            Dtype::I64,
            Dtype::U8,
            Dtype::I8Q,
        ] {
            assert_eq!(Dtype::from_tag(d.tag()).unwrap(), d);
        }
        assert!(Dtype::from_tag(0).is_err());
        assert!(Dtype::from_tag(99).is_err());
        assert_eq!(Dtype::F16.size(), 2);
        assert_eq!(Dtype::BF16.size(), 2);
        assert_eq!(Dtype::U8.size(), 1);
        assert_eq!(Dtype::I8Q.size(), 1);
        assert!(Dtype::BF16.is_float());
        assert!(!Dtype::I8Q.is_float() && Dtype::I8Q.is_real());
    }

    #[test]
    fn f32_dataset_stores_and_reads() {
        let ds = Dataset::from_f32(&[1.5, -2.25, 0.0], &[3], Dtype::F32).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.get_f64(1).unwrap(), -2.25);
        assert_eq!(ds.to_f32_vec(), vec![1.5, -2.25, 0.0]);
    }

    #[test]
    fn f16_dataset_narrows_with_rne() {
        let ds = Dataset::from_f32(&[1.0, 65504.0, 1e-8], &[3], Dtype::F16).unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), 1.0);
        assert_eq!(ds.get_f64(1).unwrap(), 65504.0);
        assert_eq!(ds.get_f64(2).unwrap(), 0.0); // underflow to zero
        assert_eq!(ds.bytes().len(), 6);

        // RNE tie cases: halfway between two f16s with even lower mantissa
        // rounds down; odd lower mantissa rounds up.
        let tie_even = 1.0f32 + 2.0f32.powi(-11);
        let tie_odd = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        let ds = Dataset::from_f32(&[tie_even, tie_odd], &[2], Dtype::F16).unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), 1.0);
        assert_eq!(ds.get_f64(1).unwrap(), (1.0f32 + 2.0f32.powi(-9)) as f64);

        // Subnormals: min f16 subnormal survives; overflow saturates to ∞;
        // infinities pass through with sign.
        let min_sub = 5.960_464_5e-8f32; // 2^-24
        let ds = Dataset::from_f32(
            &[min_sub, -min_sub, 1e6, -1e6, f32::INFINITY, f32::NEG_INFINITY],
            &[6],
            Dtype::F16,
        )
        .unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), min_sub as f64);
        assert_eq!(ds.get_f64(1).unwrap(), -min_sub as f64);
        assert_eq!(ds.get_f64(2).unwrap(), f64::INFINITY);
        assert_eq!(ds.get_f64(3).unwrap(), f64::NEG_INFINITY);
        assert_eq!(ds.get_f64(4).unwrap(), f64::INFINITY);
        assert_eq!(ds.get_f64(5).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn bf16_dataset_narrows_with_rne() {
        // RNE ties at bfloat16's 7-bit mantissa.
        let tie_even = 1.0f32 + 2.0f32.powi(-8);
        let tie_odd = 1.0f32 + 3.0 * 2.0f32.powi(-8);
        let ds = Dataset::from_f32(&[tie_even, tie_odd], &[2], Dtype::BF16).unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), 1.0);
        assert_eq!(ds.get_f64(1).unwrap(), (1.0f32 + 2.0f32.powi(-6)) as f64);

        // bfloat16 shares f32's exponent range: 1e-38 survives as a normal
        // value where f16 flushed it; f32::MAX rounds up to ∞; f32's min
        // subnormal is below bf16's subnormal range and flushes to zero.
        let ds = Dataset::from_f32(
            &[1e-38, f32::MAX, f32::INFINITY, f32::NEG_INFINITY, f32::from_bits(1)],
            &[5],
            Dtype::BF16,
        )
        .unwrap();
        assert!(ds.get_f64(0).unwrap() > 0.9e-38 && ds.get_f64(0).unwrap() < 1.1e-38);
        assert_eq!(ds.get_f64(1).unwrap(), f64::INFINITY);
        assert_eq!(ds.get_f64(2).unwrap(), f64::INFINITY);
        assert_eq!(ds.get_f64(3).unwrap(), f64::NEG_INFINITY);
        assert_eq!(ds.get_f64(4).unwrap(), 0.0);
    }

    #[test]
    fn f64_widen_then_narrow_is_lossless() {
        // f32 -> f64 -> f32 must round-trip exactly for every value,
        // including subnormals and infinities.
        let vals = [0.1f32, -3.5e-42, f32::MIN_POSITIVE, f32::MAX, f32::INFINITY, 1e-45];
        let ds = Dataset::from_f32(&vals, &[vals.len()], Dtype::F64).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(ds.get_f64(i).unwrap() as f32, v, "index {i}");
            assert_eq!(ds.get_f64(i).unwrap(), v as f64, "widening exact at {i}");
        }
    }

    #[test]
    fn i8q_quantizes_with_per_tensor_scale() {
        let vals = [0.5f32, -1.0, 0.0, 0.25];
        let ds = Dataset::from_f32(&vals, &[4], Dtype::I8Q).unwrap();
        assert_eq!(ds.scale(), 1.0 / 127.0);
        // Raw elements are the quantized integers…
        assert_eq!(ds.get_i64(0).unwrap(), 64); // round(0.5 * 127) = 64
        assert_eq!(ds.get_i64(1).unwrap(), -127);
        assert_eq!(ds.get_i64(2).unwrap(), 0);
        // …and get_f64 dequantizes within half a step.
        for (i, &v) in vals.iter().enumerate() {
            let err = (ds.get_f64(i).unwrap() - v as f64).abs();
            assert!(err <= 0.5 / 127.0 + 1e-9, "index {i} err {err}");
        }
        // The max-magnitude element reconstructs to within f32 scale rounding
        // (scale = max_abs/127 is itself rounded to f32, so -127 * scale is
        // close to but not bit-exactly -1.0).
        assert!((ds.get_f64(1).unwrap() - (-1.0)).abs() < 1e-7);
        // An all-zero tensor quantizes with scale 1.0.
        let z = Dataset::from_f32(&[0.0, 0.0], &[2], Dtype::I8Q).unwrap();
        assert_eq!(z.scale(), 1.0);
        assert_eq!(z.get_f64(0).unwrap(), 0.0);
        // Scale survives a with_scale round-trip; bad scales are coerced.
        let rs = Dataset::zeros(&[2], Dtype::I8Q).with_scale(0.5);
        assert_eq!(rs.scale(), 0.5);
        assert_eq!(Dataset::zeros(&[1], Dtype::I8Q).with_scale(0.0).scale(), 1.0);
        assert_eq!(Dataset::zeros(&[1], Dtype::I8Q).with_scale(f32::NAN).scale(), 1.0);
    }

    #[test]
    fn f64_dataset_is_lossless() {
        let v = 0.1f64;
        let mut ds = Dataset::zeros(&[1], Dtype::F64);
        ds.set_f64(0, v).unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), v);
    }

    #[test]
    fn scalar_has_one_entry() {
        let ds = Dataset::scalar_i64(20);
        assert_eq!(ds.shape(), &[] as &[usize]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.get_i64(0).unwrap(), 20);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(matches!(
            Dataset::from_f32(&[1.0, 2.0], &[3], Dtype::F32),
            Err(Error::ShapeMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn bit_level_access_matches_native_layout() {
        let mut ds = Dataset::from_f32(&[0.25], &[1], Dtype::F64).unwrap();
        assert_eq!(ds.get_bits(0).unwrap(), 0.25f64.to_bits());
        // Flip the exponent MSB (paper's example) via raw bits.
        ds.set_bits(0, ds.get_bits(0).unwrap() ^ (1 << 62)).unwrap();
        assert!((ds.get_f64(0).unwrap() - 4.49423283715579e307).abs() < 1e295);
    }

    #[test]
    fn out_of_bounds_is_an_error_not_a_panic() {
        let ds = Dataset::from_f32(&[1.0], &[1], Dtype::F32).unwrap();
        assert!(matches!(ds.get_bits(1), Err(Error::IndexOutOfBounds { .. })));
        assert!(matches!(ds.get_f64(5), Err(Error::IndexOutOfBounds { .. })));
    }

    #[test]
    fn dtype_mismatch_errors() {
        let ds = Dataset::scalar_i64(7);
        assert!(matches!(ds.get_fp(0), Err(Error::DtypeMismatch(_))));
        let fds = Dataset::from_f32(&[1.0], &[1], Dtype::F32).unwrap();
        assert!(matches!(fds.get_i64(0), Err(Error::DtypeMismatch(_))));
        assert!(Dataset::from_f32(&[1.0], &[1], Dtype::I32).is_err());
        assert!(Dataset::from_i64(&[1], &[1], Dtype::F32).is_err());
    }

    #[test]
    fn integer_storage_widths() {
        let ds = Dataset::from_i64(&[-5, 300], &[2], Dtype::I32).unwrap();
        assert_eq!(ds.get_i64(0).unwrap(), -5);
        assert_eq!(ds.get_i64(1).unwrap(), 300);
        let ds = Dataset::from_i64(&[200, 255], &[2], Dtype::U8).unwrap();
        assert_eq!(ds.get_i64(0).unwrap(), 200);
    }

    #[test]
    fn wrapping_shape_product_rejected_not_wrapped() {
        // 16 dimensions of 2^30 each: every dimension passes the per-dim
        // cap, but the product is 2^480 ≡ 0 (mod 2^64). An unchecked
        // `shape.iter().product()` wraps to 0 in release builds, making the
        // `elem_count * size == data.len()` validation accept an empty
        // buffer for an astronomically-sized dataset.
        let shape = vec![1usize << 30; 16];
        assert_eq!(checked_elem_count(&shape), None);
        let err = Dataset::from_raw(Dtype::F64, shape.clone(), Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Malformed(m) if m.contains("overflow")));
        // A shape that wraps exactly to a plausible small count is the
        // nastiest variant: 2^32 × 2^32 wraps to 0 == data length 0.
        let err = Dataset::from_raw(Dtype::U8, vec![1 << 32, 1 << 32], Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)));
        // from_f32 goes through the same check.
        assert!(Dataset::from_f32(&[], &shape, Dtype::F32).is_err());
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::zeros(&[0, 3], Dtype::F32);
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert!(ds.get_f64(0).is_err());
    }

    #[test]
    fn clones_share_bytes_until_written() {
        let a = Dataset::from_f32(&[1.0, 2.0, 3.0], &[3], Dtype::F32).unwrap();
        let mut b = a.clone();
        // The clone is a pointer copy of the payload…
        assert_eq!(a.bytes().as_ptr(), b.bytes().as_ptr());
        // …until the first write, which unshares exactly this buffer.
        b.set_f64(1, 9.0).unwrap();
        assert_ne!(a.bytes().as_ptr(), b.bytes().as_ptr());
        assert_eq!(a.get_f64(1).unwrap(), 2.0);
        assert_eq!(b.get_f64(1).unwrap(), 9.0);
        assert_ne!(a, b);
        // A uniquely-owned dataset mutates in place (no copy per write).
        let before = b.bytes().as_ptr();
        b.set_f64(0, 4.0).unwrap();
        assert_eq!(b.bytes().as_ptr(), before);
    }

    #[test]
    fn set_fp_enforces_precision() {
        use sefi_float::Precision;
        let mut ds = Dataset::zeros(&[1], Dtype::F32);
        let wrong = FpValue::from_f64(Precision::Fp64, 1.0);
        assert!(ds.set_fp(0, wrong).is_err());
        let right = FpValue::from_f64(Precision::Fp32, 1.0);
        ds.set_fp(0, right).unwrap();
        assert_eq!(ds.get_f64(0).unwrap(), 1.0);
    }
}
