//! ECC parity sidecar for the sectioned v2 container.
//!
//! ```text
//! header:      magic "SEFIECC\x89" (8) | version u32 LE |
//!              index_crc u32 LE | section_count u64 LE    (24 bytes total)
//! per section: word_count u64 LE | parity bytes…
//! ```
//!
//! One Hamming(72,64) parity byte per 64-bit little-endian word of each
//! dataset section, sections in index (tree) order; a short trailing word
//! is zero-padded before encoding, exactly as [`crate::hamming`] expects.
//! The sidecar binds to one specific checkpoint through the stored
//! `index_crc` — the CRC-32 of the checkpoint's index bytes — so a sidecar
//! can never be applied to a structurally different file.
//!
//! Deliberately there is **no whole-sidecar checksum**: the SEC-DED code
//! itself tolerates a flipped parity byte (it decodes as a harmless
//! parity-bit correction), so payload-region damage to the sidecar must
//! stay *masked* rather than render the whole sidecar unusable. Damage to
//! the 24-byte header or a `word_count` field is structural and is
//! detected by [`EccSidecar::from_bytes`] validation instead.

use crate::error::{Error, Result};
use crate::format_v2::{read_u32_le, read_u64_le};
use crate::hamming::{decode, encode, DecodeResult};
use crate::limits::MAX_LEN;
use crate::FileIndex;

use std::path::{Path, PathBuf};

/// Magic prefix of a serialized sidecar.
pub const SIDECAR_MAGIC: &[u8; 8] = b"SEFIECC\x89";

const SIDECAR_VERSION: u32 = 1;

/// Byte length of the fixed sidecar header (magic, version, index CRC,
/// section count).
pub const SIDECAR_HEADER_LEN: usize = 24;

/// Per-section parity arrays protecting one specific v2 checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccSidecar {
    index_crc: u32,
    sections: Vec<Vec<u8>>,
}

/// Outcome of one section repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionRepair {
    /// 64-bit code words whose data was rewritten by SEC correction.
    pub corrected_words: usize,
    /// Code words flagged uncorrectable (even-weight multi-bit damage);
    /// their stored bytes were left untouched.
    pub uncorrectable_words: usize,
    /// Words whose *parity byte* (in the sidecar) was the corrupted side:
    /// the data is intact, but the sidecar should be re-minted.
    pub parity_faults: usize,
}

/// Where a byte offset into the serialized sidecar lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityLocation {
    /// The fixed header or a per-section `word_count` field — structural
    /// bytes whose corruption fails [`EccSidecar::from_bytes`].
    Header,
    /// A parity byte proper.
    Word {
        /// Section ordinal (index/tree order).
        section: usize,
        /// Code-word index within the section.
        word: usize,
    },
}

impl EccSidecar {
    /// Compute parities over every dataset section of complete v2
    /// checkpoint bytes. The checkpoint must parse strictly (intact
    /// superblock, index, and payload coverage) — minting parities for an
    /// already-damaged file would notarize the damage.
    pub fn protect(ckpt_bytes: &[u8]) -> Result<Self> {
        let index = FileIndex::parse(ckpt_bytes)?;
        let sections = index
            .entries()
            .iter()
            .map(|e| {
                let section = &ckpt_bytes[e.offset..e.offset + e.byte_len];
                section.chunks(8).map(word_of).map(encode).collect()
            })
            .collect();
        Ok(EccSidecar { index_crc: index.index_crc(), sections })
    }

    /// CRC-32 of the protected checkpoint's index bytes — the binding
    /// identity checked before any repair is attempted.
    pub fn index_crc(&self) -> u32 {
        self.index_crc
    }

    /// Number of protected sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Parity bytes of one section.
    pub fn section_parities(&self, ordinal: usize) -> Option<&[u8]> {
        self.sections.get(ordinal).map(|s| s.as_slice())
    }

    /// Total parity bytes across all sections.
    pub fn parity_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.len()).sum()
    }

    /// Repair a copy of one section's stored bytes. Returns `None` when
    /// the ordinal is out of range or the byte length disagrees with the
    /// recorded word count (the sidecar describes a different file).
    /// A `Some` return is *not* a guarantee of recovery: callers must
    /// re-verify the section CRC — uncorrectable words keep their stored
    /// bytes, and odd-weight multi-bit damage can miscorrect.
    pub fn repaired_section_with_report(
        &self,
        ordinal: usize,
        stored: &[u8],
    ) -> Option<(Vec<u8>, SectionRepair)> {
        let parities = self.sections.get(ordinal)?;
        if stored.len().div_ceil(8) != parities.len() {
            return None;
        }
        let mut fixed = stored.to_vec();
        let mut repair = SectionRepair::default();
        for (w, &parity) in parities.iter().enumerate() {
            let end = ((w + 1) * 8).min(fixed.len());
            let chunk = &fixed[w * 8..end];
            match decode(word_of(chunk), parity) {
                DecodeResult::Clean(_) => {}
                DecodeResult::Corrected { data, data_bit } => {
                    if data_bit {
                        let le = data.to_le_bytes();
                        fixed[w * 8..end].copy_from_slice(&le[..end - w * 8]);
                        repair.corrected_words += 1;
                    } else {
                        // The flip lives in the sidecar's parity byte, not
                        // the section: the data is already right.
                        repair.parity_faults += 1;
                    }
                }
                DecodeResult::DoubleError(_) => repair.uncorrectable_words += 1,
            }
        }
        Some((fixed, repair))
    }

    /// [`EccSidecar::repaired_section_with_report`] without the tally.
    pub fn repaired_section(&self, ordinal: usize, stored: &[u8]) -> Option<Vec<u8>> {
        self.repaired_section_with_report(ordinal, stored).map(|(fixed, _)| fixed)
    }

    /// Decode every word of a section against its parities without
    /// rewriting anything — the scrub a health scan wants. Returns `None`
    /// on ordinal/length mismatch.
    pub fn scrub_section(&self, ordinal: usize, stored: &[u8]) -> Option<SectionRepair> {
        self.repaired_section_with_report(ordinal, stored).map(|(_, repair)| repair)
    }

    /// Serialize to the sidecar binary layout (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let total: usize = self.sections.iter().map(|s| 8 + s.len()).sum();
        let mut out = Vec::with_capacity(SIDECAR_HEADER_LEN + total);
        out.extend_from_slice(SIDECAR_MAGIC);
        out.extend_from_slice(&SIDECAR_VERSION.to_le_bytes());
        out.extend_from_slice(&self.index_crc.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s);
        }
        out
    }

    /// Deserialize, with checked arithmetic throughout: truncated headers,
    /// absurd counts, and trailing bytes are all clean errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SIDECAR_HEADER_LEN {
            return Err(Error::Malformed(format!("sidecar too short: {} bytes", bytes.len())));
        }
        if &bytes[..8] != SIDECAR_MAGIC {
            return Err(Error::Malformed("bad magic — not an ECC sidecar".to_string()));
        }
        let version = read_u32_le(bytes, 8)?;
        if version != SIDECAR_VERSION {
            return Err(Error::Malformed(format!("unknown sidecar version {version}")));
        }
        let index_crc = read_u32_le(bytes, 12)?;
        let section_count = read_u64_le(bytes, 16)?;
        if section_count > MAX_LEN {
            return Err(Error::Malformed(format!("section count {section_count} exceeds limit")));
        }
        let mut sections = Vec::new();
        let mut at = SIDECAR_HEADER_LEN;
        for _ in 0..section_count {
            let word_count = read_u64_le(bytes, at)?;
            if word_count > MAX_LEN / 8 + 1 {
                return Err(Error::Malformed(format!("word count {word_count} exceeds limit")));
            }
            let start = at
                .checked_add(8)
                .ok_or_else(|| Error::Malformed("sidecar offset overflow".to_string()))?;
            let end =
                start.checked_add(word_count as usize).filter(|&e| e <= bytes.len()).ok_or_else(
                    || Error::Malformed("sidecar section extends past end of file".to_string()),
                )?;
            sections.push(bytes[start..end].to_vec());
            at = end;
        }
        if at != bytes.len() {
            return Err(Error::Malformed(format!(
                "{} trailing bytes in sidecar",
                bytes.len() - at
            )));
        }
        Ok(EccSidecar { index_crc, sections })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| Error::Io(path.as_ref().display().to_string(), e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Conventional sidecar filename for a checkpoint: `<ckpt>.ecc`.
    pub fn sidecar_path(ckpt: impl AsRef<Path>) -> PathBuf {
        let mut name = ckpt.as_ref().as_os_str().to_os_string();
        name.push(".ecc");
        PathBuf::from(name)
    }

    /// Classify a byte offset into the *serialized* sidecar: structural
    /// header/word-count bytes vs a parity byte of a specific code word.
    /// `None` for offsets past the end.
    pub fn locate(&self, offset: usize) -> Option<ParityLocation> {
        if offset < SIDECAR_HEADER_LEN {
            return Some(ParityLocation::Header);
        }
        let mut at = SIDECAR_HEADER_LEN;
        for (section, s) in self.sections.iter().enumerate() {
            if offset < at + 8 {
                return Some(ParityLocation::Header);
            }
            at += 8;
            if offset < at + s.len() {
                return Some(ParityLocation::Word { section, word: offset - at });
            }
            at += s.len();
        }
        None
    }
}

/// Zero-pad a ≤8-byte chunk into a little-endian u64 code word.
fn word_of(chunk: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(buf)
}

/// Verify sidecar↔checkpoint binding and coverage against a parsed index.
/// An `Ok` sidecar has one parity array per section with matching word
/// counts, so repairs can never write out of bounds.
pub fn check_binding(sidecar: &EccSidecar, index: &FileIndex) -> Result<()> {
    if sidecar.index_crc() != index.index_crc() {
        return Err(Error::Malformed(format!(
            "ECC sidecar binds to index CRC {:#010x}, checkpoint has {:#010x}",
            sidecar.index_crc(),
            index.index_crc()
        )));
    }
    if sidecar.section_count() != index.entries().len() {
        return Err(Error::Malformed(format!(
            "ECC sidecar covers {} sections, checkpoint has {}",
            sidecar.section_count(),
            index.entries().len()
        )));
    }
    for (i, e) in index.entries().iter().enumerate() {
        let words = sidecar.section_parities(i).map(|p| p.len()).unwrap_or(0);
        if words != e.byte_len.div_ceil(8) {
            return Err(Error::Malformed(format!(
                "ECC sidecar section {i} has {words} words, {:?} needs {}",
                e.path,
                e.byte_len.div_ceil(8)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Dtype, H5File, LoadPolicy};

    fn sample() -> H5File {
        let mut f = H5File::new();
        let w: Vec<f32> = (0..37).map(|i| (i as f32) * 0.5 - 9.0).collect();
        f.create_dataset(
            "model_weights/conv1/W",
            Dataset::from_f32(&w, &[37], Dtype::F32).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            "model_weights/conv1/b",
            Dataset::from_f32(&[1.5; 3], &[3], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn sidecar_roundtrips_byte_deterministically() {
        let bytes = sample().to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let ser = sc.to_bytes();
        let back = EccSidecar::from_bytes(&ser).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.to_bytes(), ser);
    }

    #[test]
    fn binding_matches_the_protected_checkpoint_only() {
        let bytes = sample().to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        check_binding(&sc, &index).unwrap();

        let mut other = sample();
        other.create_dataset("extra", Dataset::scalar_i64(1)).unwrap();
        let other_index = FileIndex::parse(&other.to_bytes_v2()).unwrap();
        assert!(check_binding(&sc, &other_index).is_err());
    }

    #[test]
    fn correct_policy_repairs_single_bit_payload_flips() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        // One flip in every section, all repaired in one load.
        let mut bad = bytes.clone();
        for e in index.entries() {
            bad[e.offset + e.byte_len / 2] ^= 0x20;
        }
        let (g, report) = H5File::from_bytes_with_ecc(&bad, LoadPolicy::Correct, &sc).unwrap();
        assert_eq!(g, f, "repair must restore the original data");
        assert_eq!(report.corrected.len(), index.entries().len());
        assert!(report.quarantined.is_empty());
        assert!(!report.is_clean(), "a repaired load is not a clean load");
    }

    #[test]
    fn double_bit_damage_in_one_word_falls_back_to_quarantine() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        let e = index.entry("model_weights/conv1/W").unwrap();
        let mut bad = bytes.clone();
        bad[e.offset] ^= 0x41; // two flips in the same code word
        let (g, report) = H5File::from_bytes_with_ecc(&bad, LoadPolicy::Correct, &sc).unwrap();
        assert_eq!(report.quarantined, vec!["model_weights/conv1/W".to_string()]);
        assert!(report.corrected.is_empty());
        assert!(g.dataset("model_weights/conv1/W").is_err());
    }

    #[test]
    fn mismatched_sidecar_is_rejected_up_front() {
        let bytes = sample().to_bytes_v2();
        let mut other = sample();
        other.create_dataset("extra", Dataset::scalar_i64(1)).unwrap();
        let sc = EccSidecar::protect(&other.to_bytes_v2()).unwrap();
        assert!(matches!(
            H5File::from_bytes_with_ecc(&bytes, LoadPolicy::Correct, &sc),
            Err(Error::Malformed(m)) if m.contains("binds to index CRC")
        ));
    }

    #[test]
    fn correct_without_flips_reports_clean() {
        let f = sample();
        let bytes = f.to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let (g, report) = H5File::from_bytes_with_ecc(&bytes, LoadPolicy::Correct, &sc).unwrap();
        assert_eq!(g, f);
        assert!(report.is_clean());
    }

    #[test]
    fn truncated_or_mutated_sidecar_structure_is_a_clean_error() {
        let bytes = sample().to_bytes_v2();
        let ser = EccSidecar::protect(&bytes).unwrap().to_bytes();
        for cut in [0, 7, 12, SIDECAR_HEADER_LEN, ser.len() - 1] {
            assert!(EccSidecar::from_bytes(&ser[..cut]).is_err(), "cut at {cut}");
        }
        let mut magic = ser.clone();
        magic[0] ^= 0xFF;
        assert!(EccSidecar::from_bytes(&magic).is_err());
        let mut count = ser.clone();
        count[16] ^= 0xFF; // section_count
        assert!(EccSidecar::from_bytes(&count).is_err());
        let mut trailing = ser.clone();
        trailing.push(0);
        assert!(EccSidecar::from_bytes(&trailing).is_err());
    }

    #[test]
    fn flipped_parity_byte_is_masked_not_fatal() {
        // A flip in a parity byte of the sidecar itself decodes as a
        // harmless parity-bit correction: the checkpoint still loads
        // bit-exact and the damaged word is not rewritten.
        let f = sample();
        let bytes = f.to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let mut ser = sc.to_bytes();
        let off = (0..ser.len())
            .find(|&o| matches!(sc.locate(o), Some(ParityLocation::Word { .. })))
            .unwrap();
        ser[off] ^= 0x04;
        let damaged = EccSidecar::from_bytes(&ser).unwrap();
        let (g, report) =
            H5File::from_bytes_with_ecc(&bytes, LoadPolicy::Correct, &damaged).unwrap();
        assert_eq!(g, f);
        assert!(report.is_clean(), "clean CRCs mean the sidecar is never consulted");
        // A scrub still attributes the damage to the sidecar side.
        let index = FileIndex::parse(&bytes).unwrap();
        let (mut data_events, mut parity_events) = (0usize, 0usize);
        for (i, e) in index.entries().iter().enumerate() {
            let stored = &bytes[e.offset..e.offset + e.byte_len];
            let scrub = damaged.scrub_section(i, stored).unwrap();
            data_events += scrub.corrected_words + scrub.uncorrectable_words;
            parity_events += scrub.parity_faults;
        }
        assert_eq!(data_events, 0, "the checkpoint data is untouched");
        assert_eq!(parity_events, 1, "the scrub pins the flip on the parity byte");
    }

    #[test]
    fn locate_classifies_every_sidecar_byte() {
        let bytes = sample().to_bytes_v2();
        let sc = EccSidecar::protect(&bytes).unwrap();
        let ser = sc.to_bytes();
        let mut words = 0usize;
        let mut headers = 0usize;
        for o in 0..ser.len() {
            match sc.locate(o).expect("in bounds") {
                ParityLocation::Header => headers += 1,
                ParityLocation::Word { section, word } => {
                    assert!(word < sc.section_parities(section).unwrap().len());
                    words += 1;
                }
            }
        }
        assert_eq!(words, sc.parity_bytes());
        assert_eq!(headers, SIDECAR_HEADER_LEN + 8 * sc.section_count());
        assert!(sc.locate(ser.len()).is_none());
    }

    #[test]
    fn sidecar_path_appends_ecc() {
        assert_eq!(
            EccSidecar::sidecar_path("/tmp/ckpt.sefi5"),
            PathBuf::from("/tmp/ckpt.sefi5.ecc")
        );
    }

    #[test]
    fn protect_rejects_damaged_checkpoints() {
        let mut bytes = sample().to_bytes_v2();
        let n = bytes.len();
        bytes.truncate(n - 1);
        assert!(EccSidecar::protect(&bytes).is_err());
    }
}
