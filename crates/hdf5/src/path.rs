//! Object-path handling: `/`-separated absolute paths without a leading
//! slash, e.g. `predictor/conv1_1/W`.

use crate::error::{Error, Result};

/// Split a path into its segments. Assumes validation already happened.
pub fn split_path(path: &str) -> Vec<&str> {
    path.split('/').collect()
}

/// Join segments into a path.
pub fn join_path(parts: &[&str]) -> String {
    parts.join("/")
}

/// Validate a path: non-empty, no empty segments (i.e. no leading/trailing
/// or doubled slashes), no `.`/`..` segments.
pub fn validate_path(path: &str) -> Result<()> {
    if path.is_empty() {
        return Err(Error::InvalidPath(path.to_string()));
    }
    for seg in path.split('/') {
        if seg.is_empty() || seg == "." || seg == ".." {
            return Err(Error::InvalidPath(path.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_paths() {
        for p in ["a", "a/b", "model_weights/block1_conv1/kernel", "with space/ok"] {
            assert!(validate_path(p).is_ok(), "{p}");
        }
    }

    #[test]
    fn invalid_paths() {
        for p in ["", "/a", "a/", "a//b", "a/./b", "a/../b", "."] {
            assert!(validate_path(p).is_err(), "{p:?}");
        }
    }

    #[test]
    fn split_join_roundtrip() {
        let p = "a/b/c";
        assert_eq!(join_path(&split_path(p)), p);
    }
}
