//! Property-based tests for the checkpoint container.

use proptest::prelude::*;
use sefi_hdf5::{Attr, Dataset, Dtype, H5File};

fn any_dtype() -> impl Strategy<Value = Dtype> {
    prop_oneof![
        Just(Dtype::F16),
        Just(Dtype::F32),
        Just(Dtype::F64),
        Just(Dtype::I32),
        Just(Dtype::I64),
        Just(Dtype::U8),
    ]
}

fn path_segment() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// A small random file: a handful of datasets at random depths.
fn any_file() -> impl Strategy<Value = H5File> {
    let entry = (
        prop::collection::vec(path_segment(), 1..4),
        any_dtype(),
        prop::collection::vec(-1000.0f32..1000.0, 0..20),
    );
    prop::collection::vec(entry, 0..8).prop_map(|entries| {
        let mut f = H5File::new();
        for (segs, dtype, values) in entries {
            let path = segs.join("/");
            let ds = if dtype.is_float() {
                Dataset::from_f32(&values, &[values.len()], dtype).unwrap()
            } else {
                let ints: Vec<i64> = values.iter().map(|&v| v as i64).collect();
                Dataset::from_i64(&ints, &[ints.len()], dtype).unwrap()
            };
            // Collisions (dataset blocking a group or duplicate path) are
            // legitimate: skip those entries.
            let _ = f.create_dataset(&path, ds);
        }
        f
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(f in any_file()) {
        let bytes = f.to_bytes();
        let g = H5File::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&f, &g);
        // Deterministic encoding: decode∘encode is byte-stable.
        prop_assert_eq!(bytes, g.to_bytes());
    }

    #[test]
    fn single_byte_corruption_never_panics_and_is_detected_or_rejected(
        f in any_file(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = f.to_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        // Any single-byte flip must produce a clean error (magic, version,
        // CRC, or structural) — never a panic, never an Ok with different
        // content accepted silently. An Ok is only possible if the flip was
        // somehow compensated, which CRC32 prevents for single bytes.
        prop_assert!(H5File::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_never_panics(f in any_file(), cut_seed in any::<usize>()) {
        let bytes = f.to_bytes();
        let cut = cut_seed % (bytes.len() + 1);
        let _ = H5File::from_bytes(&bytes[..cut]); // must not panic
    }

    #[test]
    fn entry_count_equals_sum_of_dataset_lengths(f in any_file()) {
        let total: u64 = f
            .dataset_paths()
            .iter()
            .map(|p| f.dataset(p).unwrap().len() as u64)
            .sum();
        prop_assert_eq!(f.total_entries(), total);
    }

    #[test]
    fn set_bits_get_bits_roundtrip(
        dtype in any_dtype(),
        len in 1usize..16,
        idx_seed in any::<usize>(),
        raw in any::<u64>(),
    ) {
        let mut ds = Dataset::zeros(&[len], dtype);
        let idx = idx_seed % len;
        let masked = raw & (u64::MAX >> (64 - 8 * dtype.size() as u32));
        ds.set_bits(idx, masked).unwrap();
        prop_assert_eq!(ds.get_bits(idx).unwrap(), masked);
        // Neighbours untouched.
        for i in 0..len {
            if i != idx {
                prop_assert_eq!(ds.get_bits(i).unwrap(), 0);
            }
        }
    }

    #[test]
    fn attrs_roundtrip(name in path_segment(), iv in any::<i64>(), fv in any::<f64>(), sv in ".{0,20}") {
        prop_assume!(!fv.is_nan()); // NaN != NaN under PartialEq
        let mut f = H5File::new();
        let g = f.create_group("g").unwrap();
        g.set_attr(&format!("{name}_i"), Attr::Int(iv));
        g.set_attr(&format!("{name}_f"), Attr::Float(fv));
        g.set_attr(&format!("{name}_s"), Attr::Str(sv));
        let g2 = H5File::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(f, g2);
    }
}
