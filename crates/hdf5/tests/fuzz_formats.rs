//! One mutation-fuzz harness, three container formats.
//!
//! The v1 (hierarchical), flat (NPZ-style), and v2 (sectioned, indexed)
//! encoders all feed the same decoder contract: a mutated or truncated
//! file must come back as a clean `Err` — never a panic, never a silent
//! `Ok` with different content. Each format is described by an
//! (encode, decode) pair and every property below runs over all of them,
//! so a future fourth format joins the harness by adding one table row.

use proptest::prelude::*;
use sefi_hdf5::{flat, Dataset, Dtype, H5File, Result};

/// One container format under test.
struct Format {
    name: &'static str,
    encode: fn(&H5File) -> Vec<u8>,
    decode: fn(&[u8]) -> Result<H5File>,
}

/// The format table. `H5File::from_bytes` dispatches v1 and v2 by the
/// version field, and for v2 it is the Strict, fully-verified path.
fn formats() -> [Format; 3] {
    [
        Format { name: "v1", encode: |f| f.to_bytes(), decode: H5File::from_bytes },
        Format { name: "flat", encode: flat::to_flat_bytes, decode: flat::from_flat_bytes },
        Format { name: "v2", encode: |f| f.to_bytes_v2(), decode: H5File::from_bytes },
    ]
}

fn any_dtype() -> impl Strategy<Value = Dtype> {
    prop_oneof![
        Just(Dtype::F16),
        Just(Dtype::F32),
        Just(Dtype::F64),
        Just(Dtype::I32),
        Just(Dtype::I64),
        Just(Dtype::U8),
    ]
}

/// A small random file: datasets only (the flat format drops attributes,
/// so attribute round-tripping is out of scope for the shared harness).
fn any_file() -> impl Strategy<Value = H5File> {
    let entry = (
        prop::collection::vec("[a-z][a-z0-9_]{0,6}", 1..4),
        any_dtype(),
        prop::collection::vec(-1000.0f32..1000.0, 0..16),
    );
    prop::collection::vec(entry, 0..6).prop_map(|entries| {
        let mut f = H5File::new();
        for (segs, dtype, values) in entries {
            let ds = if dtype.is_float() {
                Dataset::from_f32(&values, &[values.len()], dtype).unwrap()
            } else {
                let ints: Vec<i64> = values.iter().map(|&v| v as i64).collect();
                Dataset::from_i64(&ints, &[ints.len()], dtype).unwrap()
            };
            // Collisions (duplicate path, dataset blocking a group) are
            // legitimate generator outputs: skip those entries.
            let _ = f.create_dataset(&segs.join("/"), ds);
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every format round-trips, and encoding is byte-deterministic
    /// (encode ∘ decode ∘ encode is the identity on bytes).
    #[test]
    fn roundtrip_and_byte_determinism(f in any_file()) {
        for fmt in formats() {
            let bytes = (fmt.encode)(&f);
            let back = (fmt.decode)(&bytes)
                .unwrap_or_else(|e| panic!("{}: clean decode failed: {e}", fmt.name));
            prop_assert_eq!(&back, &f, "{} roundtrip", fmt.name);
            prop_assert_eq!((fmt.encode)(&back), bytes, "{} byte-determinism", fmt.name);
        }
    }

    /// XORing 1–4 random bytes with non-zero masks is always a clean
    /// error: the whole-payload CRCs (v1, flat) and the superblock +
    /// index + section CRCs (v2) leave no unprotected byte.
    #[test]
    fn mutation_is_always_an_error(
        f in any_file(),
        positions in prop::collection::vec(any::<usize>(), 1..5),
        xors in prop::collection::vec(1u8..=255, 1..5),
    ) {
        for fmt in formats() {
            let pristine = (fmt.encode)(&f);
            let mut bytes = pristine.clone();
            for (pos, xor) in positions.iter().zip(&xors) {
                let i = pos % bytes.len();
                bytes[i] ^= xor;
            }
            // Paired mutations can cancel (same position, same mask twice);
            // only a file that actually differs must be rejected.
            prop_assume!(bytes != pristine);
            prop_assert!((fmt.decode)(&bytes).is_err(), "{} accepted a mutation", fmt.name);
        }
    }

    /// Every strict prefix is a clean error, never a panic — length
    /// fields, CRC trailers, and the v2 index never read past the end.
    #[test]
    fn truncation_is_always_an_error(f in any_file(), cut_seed in any::<usize>()) {
        for fmt in formats() {
            let bytes = (fmt.encode)(&f);
            let cut = cut_seed % bytes.len();
            prop_assert!((fmt.decode)(&bytes[..cut]).is_err(), "{} accepted a truncation", fmt.name);
        }
    }
}
