//! One mutation-fuzz harness, three container formats.
//!
//! The v1 (hierarchical), flat (NPZ-style), and v2 (sectioned, indexed)
//! encoders all feed the same decoder contract: a mutated or truncated
//! file must come back as a clean `Err` — never a panic, never a silent
//! `Ok` with different content. Each format is described by an
//! (encode, decode) pair and every property below runs over all of them,
//! so a future fourth format joins the harness by adding one table row.

use proptest::prelude::*;
use sefi_hdf5::forensics::{locate_byte, salvage, ByteLocation};
use sefi_hdf5::{flat, Dataset, Dtype, EccSidecar, FileIndex, H5File, LoadPolicy, Result};

/// One container format under test.
struct Format {
    name: &'static str,
    encode: fn(&H5File) -> Vec<u8>,
    decode: fn(&[u8]) -> Result<H5File>,
}

/// The format table. `H5File::from_bytes` dispatches v1 and v2 by the
/// version field, and for v2 it is the Strict, fully-verified path.
fn formats() -> [Format; 3] {
    [
        Format { name: "v1", encode: |f| f.to_bytes(), decode: H5File::from_bytes },
        Format { name: "flat", encode: flat::to_flat_bytes, decode: flat::from_flat_bytes },
        Format { name: "v2", encode: |f| f.to_bytes_v2(), decode: H5File::from_bytes },
    ]
}

fn any_dtype() -> impl Strategy<Value = Dtype> {
    prop_oneof![
        Just(Dtype::F16),
        Just(Dtype::BF16),
        Just(Dtype::F32),
        Just(Dtype::F64),
        Just(Dtype::I32),
        Just(Dtype::I64),
        Just(Dtype::U8),
        Just(Dtype::I8Q),
    ]
}

/// A file with one non-empty dataset per element width — 1 byte (u8,
/// i8q), 2 (f16, bf16), 4 (f32, i32), 8 (f64, i64) — so payload
/// attribution is exercised at every stride the index can describe.
fn width_file() -> impl Strategy<Value = H5File> {
    prop::collection::vec(-1000.0f32..1000.0, 1..9).prop_map(|values| {
        let ints: Vec<i64> = values.iter().map(|&v| v as i64).collect();
        let n = values.len();
        let mut f = H5File::new();
        for (path, dtype) in [
            ("w1/u8", Dtype::U8),
            ("w1/q", Dtype::I8Q),
            ("w2/f16", Dtype::F16),
            ("w2/bf16", Dtype::BF16),
            ("w4/f32", Dtype::F32),
            ("w4/i32", Dtype::I32),
            ("w8/f64", Dtype::F64),
            ("w8/i64", Dtype::I64),
        ] {
            let ds = if dtype.is_real() {
                Dataset::from_f32(&values, &[n], dtype).unwrap()
            } else {
                Dataset::from_i64(&ints, &[n], dtype).unwrap()
            };
            f.create_dataset(path, ds).unwrap();
        }
        f
    })
}

/// A small random file: datasets only (the flat format drops attributes,
/// so attribute round-tripping is out of scope for the shared harness).
fn any_file() -> impl Strategy<Value = H5File> {
    let entry = (
        prop::collection::vec("[a-z][a-z0-9_]{0,6}", 1..4),
        any_dtype(),
        prop::collection::vec(-1000.0f32..1000.0, 0..16),
    );
    prop::collection::vec(entry, 0..6).prop_map(|entries| {
        let mut f = H5File::new();
        for (segs, dtype, values) in entries {
            let ds = if dtype.is_real() {
                Dataset::from_f32(&values, &[values.len()], dtype).unwrap()
            } else {
                let ints: Vec<i64> = values.iter().map(|&v| v as i64).collect();
                Dataset::from_i64(&ints, &[ints.len()], dtype).unwrap()
            };
            // Collisions (duplicate path, dataset blocking a group) are
            // legitimate generator outputs: skip those entries.
            let _ = f.create_dataset(&segs.join("/"), ds);
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every format round-trips, and encoding is byte-deterministic
    /// (encode ∘ decode ∘ encode is the identity on bytes).
    #[test]
    fn roundtrip_and_byte_determinism(f in any_file()) {
        for fmt in formats() {
            let bytes = (fmt.encode)(&f);
            let back = (fmt.decode)(&bytes)
                .unwrap_or_else(|e| panic!("{}: clean decode failed: {e}", fmt.name));
            prop_assert_eq!(&back, &f, "{} roundtrip", fmt.name);
            prop_assert_eq!((fmt.encode)(&back), bytes, "{} byte-determinism", fmt.name);
        }
    }

    /// XORing 1–4 random bytes with non-zero masks is always a clean
    /// error: the whole-payload CRCs (v1, flat) and the superblock +
    /// index + section CRCs (v2) leave no unprotected byte.
    #[test]
    fn mutation_is_always_an_error(
        f in any_file(),
        positions in prop::collection::vec(any::<usize>(), 1..5),
        xors in prop::collection::vec(1u8..=255, 1..5),
    ) {
        for fmt in formats() {
            let pristine = (fmt.encode)(&f);
            let mut bytes = pristine.clone();
            for (pos, xor) in positions.iter().zip(&xors) {
                let i = pos % bytes.len();
                bytes[i] ^= xor;
            }
            // Paired mutations can cancel (same position, same mask twice);
            // only a file that actually differs must be rejected.
            prop_assume!(bytes != pristine);
            prop_assert!((fmt.decode)(&bytes).is_err(), "{} accepted a mutation", fmt.name);
        }
    }

    /// Every strict prefix is a clean error, never a panic — length
    /// fields, CRC trailers, and the v2 index never read past the end.
    #[test]
    fn truncation_is_always_an_error(f in any_file(), cut_seed in any::<usize>()) {
        for fmt in formats() {
            let bytes = (fmt.encode)(&f);
            let cut = cut_seed % bytes.len();
            prop_assert!((fmt.decode)(&bytes[..cut]).is_err(), "{} accepted a truncation", fmt.name);
        }
    }

    /// A mutated ECC sidecar can never change what a *clean* checkpoint
    /// loads as: deserialization rejects it, binding rejects it, or the
    /// load ignores it (every section CRC passes, so no repair runs) and
    /// the result is bit-exact. Never a panic, never altered data.
    #[test]
    fn sidecar_mutation_never_changes_a_clean_load(
        f in any_file(),
        positions in prop::collection::vec(any::<usize>(), 1..5),
        xors in prop::collection::vec(1u8..=255, 1..5),
    ) {
        let bytes = f.to_bytes_v2();
        let mut ser = EccSidecar::protect(&bytes).unwrap().to_bytes();
        for (pos, xor) in positions.iter().zip(&xors) {
            let i = pos % ser.len();
            ser[i] ^= xor;
        }
        if let Ok(sc) = EccSidecar::from_bytes(&ser) {
            if let Ok((loaded, report)) = H5File::from_bytes_with_ecc(&bytes, LoadPolicy::Correct, &sc) {
                prop_assert_eq!(&loaded, &f, "a damaged sidecar altered a clean load");
                prop_assert!(report.is_clean(), "clean CRCs never trigger repair");
            }
        }
    }

    /// The salvage invariant: *any* input salvage accepts — mutated,
    /// truncated, with or without a (possibly mutated) sidecar —
    /// re-encodes to bytes that load under the Strict policy.
    #[test]
    fn salvage_output_always_loads_strict(
        f in any_file(),
        positions in prop::collection::vec(any::<usize>(), 0..5),
        xors in prop::collection::vec(1u8..=255, 0..5),
        cut_seed in any::<usize>(),
        truncate in any::<bool>(),
        with_sidecar in any::<bool>(),
        default_epoch in -3i64..1000,
    ) {
        let pristine = f.to_bytes_v2();
        let sidecar = if with_sidecar {
            Some(EccSidecar::protect(&pristine).unwrap())
        } else {
            None
        };
        let mut bytes = pristine;
        for (pos, xor) in positions.iter().zip(&xors) {
            let i = pos % bytes.len();
            bytes[i] ^= xor;
        }
        if truncate {
            bytes.truncate(cut_seed % (bytes.len() + 1));
        }
        if let Ok((salvaged, _)) = salvage(&bytes, sidecar.as_ref(), default_epoch) {
            let reencoded = salvaged.to_bytes_v2();
            let strict = H5File::from_bytes(&reencoded);
            prop_assert!(strict.is_ok(), "salvage output failed a Strict load: {:?}", strict.err());
        }
    }

    /// Raw-byte attribution closes the loop with the logical view: for a
    /// payload bit flip at *any* offset — the first and last byte of every
    /// section always included, plus a random draw — `locate_byte` and
    /// `FileIndex::locate` agree on the owning (dataset, element, byte),
    /// and replaying that flip through the logical `get_bits`/`set_bits`
    /// path reproduces bit-for-bit what a trusting decoder reads from the
    /// flipped bytes. Exercises every element width (1/2/4/8 bytes).
    #[test]
    fn payload_flip_attribution_matches_logical_flip(
        f in width_file(),
        offset_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = f.to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let payload_len = bytes.len() - index.payload_start();
        let mut offsets = Vec::new();
        for e in index.entries() {
            offsets.push(e.offset);
            offsets.push(e.offset + e.byte_len - 1);
        }
        offsets.push(index.payload_start() + offset_seed % payload_len);
        for offset in offsets {
            let entry = index.locate(offset).unwrap_or_else(|| panic!("offset {offset} unowned"));
            let (path, element, byte_in_element) = match locate_byte(&index, offset) {
                ByteLocation::Dataset { path, element, byte_in_element } => {
                    (path, element, byte_in_element)
                }
                other => panic!("payload offset {offset} attributed to {other:?}"),
            };
            prop_assert_eq!(&entry.path, &path, "locate and locate_byte disagree");
            prop_assert_eq!(
                entry.offset + element * entry.dtype.size() + byte_in_element,
                offset,
                "(element, byte) does not reconstruct the offset"
            );
            let mut bad = bytes.clone();
            bad[offset] ^= 1 << bit;
            let loaded = H5File::from_bytes_unverified(&bad).unwrap();
            let mut replay = f.clone();
            let ds = replay.dataset_mut(&path).unwrap();
            let old = ds.get_bits(element).unwrap();
            ds.set_bits(element, old ^ (1u64 << (byte_in_element as u32 * 8 + u32::from(bit))))
                .unwrap();
            prop_assert_eq!(
                &replay, &loaded,
                "logical replay of ({}, {}, bit {}) diverges from the raw flip at offset {}",
                path, element, byte_in_element as u32 * 8 + u32::from(bit), offset
            );
        }
    }

    /// SEC-DED coverage: one flipped payload bit is always fully repaired
    /// by a Correct-policy load — the result equals the original file and
    /// the repaired dataset is named in the report.
    #[test]
    fn single_payload_bit_flip_is_always_corrected(
        f in any_file(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = f.to_bytes_v2();
        let index = FileIndex::parse(&bytes).unwrap();
        let payload_len = bytes.len() - index.payload_start();
        prop_assume!(payload_len > 0);
        let sc = EccSidecar::protect(&bytes).unwrap();
        let mut bad = bytes.clone();
        let at = index.payload_start() + pos_seed % payload_len;
        bad[at] ^= 1 << bit;
        let (loaded, report) = H5File::from_bytes_with_ecc(&bad, LoadPolicy::Correct, &sc).unwrap();
        prop_assert_eq!(&loaded, &f, "repair must restore the original data");
        prop_assert_eq!(report.corrected.len(), 1);
        prop_assert!(report.quarantined.is_empty());
    }
}
