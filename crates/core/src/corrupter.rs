//! The injection engine.

use crate::config::{CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use crate::error::CorruptError;
use crate::log::{InjectionLog, LogRecord};
use crate::report::{InjectionRecord, InjectionReport, ValueChange};
use sefi_float::{corrupt_int, minimal_bit_width, FpValue};
use sefi_hdf5::H5File;
use sefi_rng::DetRng;
use std::path::Path;

/// Bound on the NaN-avoidance redraw loop. The paper retries "until a valid
/// value is obtained"; a bound keeps pathological configs (e.g. a mask that
/// always sets the full exponent of every value) from spinning forever,
/// and exceeding it is a loud error rather than a silent skip.
const MAX_NAN_REDRAWS: u64 = 10_000;

/// A configured, validated fault injector.
pub struct Corrupter {
    config: CorrupterConfig,
}

impl Corrupter {
    /// Validate the configuration and build the injector.
    pub fn new(config: CorrupterConfig) -> Result<Self, CorruptError> {
        config.validate()?;
        Ok(Corrupter { config })
    }

    /// The configuration.
    pub fn config(&self) -> &CorrupterConfig {
        &self.config
    }

    /// Corrupt a checkpoint in place and report what changed.
    pub fn corrupt(&self, file: &mut H5File) -> Result<InjectionReport, CorruptError> {
        let (report, _log) = self.corrupt_with_log(file)?;
        Ok(report)
    }

    /// Corrupt a checkpoint and also produce the equivalent-injection log
    /// (Section IV-C): "the number of weights that are modified with the
    /// bit-flips, the position of the bit that is flipped, and the layer in
    /// which the weight is located".
    pub fn corrupt_with_log(
        &self,
        file: &mut H5File,
    ) -> Result<(InjectionReport, InjectionLog), CorruptError> {
        let locations = self.resolve_locations(file)?;
        // Upfront, file-aware precision validation over every eligible
        // location (only those selected by `locations`): a mismatched
        // dataset fails before the first injection mutates anything.
        for location in &locations {
            self.config.check_precision(location, file.dataset(location)?.dtype().precision())?;
        }
        let attempts = self.num_attempts(file, &locations);
        let mut rng = DetRng::new(self.config.seed).substream("injector");
        let mut report = InjectionReport::default();
        let mut log = InjectionLog::new();
        report.attempts = attempts;

        for _ in 0..attempts {
            // Probability gate first (one Bernoulli per attempt, matching
            // the paper's "the injection is attempted … we change the value
            // with a probability of injection_probability").
            if !rng.bernoulli(self.config.injection_probability) {
                report.skipped += 1;
                continue;
            }
            let record = self.inject_once(file, &locations, &mut rng, &mut report)?;
            log.push(LogRecord::from_record(&record));
            report.records.push(record);
            report.injections += 1;
        }
        Ok((report, log))
    }

    /// One injection: draw (location, entry, action); if the result is
    /// NaN/Inf and `allow_nan_values` is false, redraw the whole attempt
    /// ("a new corruption attempt is performed until a valid value is
    /// obtained").
    fn inject_once(
        &self,
        file: &mut H5File,
        locations: &[String],
        rng: &mut DetRng,
        report: &mut InjectionReport,
    ) -> Result<InjectionRecord, CorruptError> {
        let mut redraws = 0u64;
        loop {
            let location = rng.choose(locations).clone();
            let ds = file.dataset_mut(&location)?;
            let entry_index = rng.index(ds.len());

            let candidate = if let Some(precision) = ds.dtype().precision() {
                // Defense in depth: every eligible location was already
                // checked upfront in `corrupt_with_log`.
                if precision != self.config.float_precision {
                    return Err(CorruptError::PrecisionMismatch {
                        location,
                        stored: precision,
                        configured: self.config.float_precision,
                    });
                }
                let old = FpValue::from_bits(precision, ds.get_bits(entry_index)?);
                let (new, change) = match &self.config.mode {
                    CorruptionMode::BitRange(range) => {
                        let bit = range.nth(rng.below(range.len() as u64) as u32);
                        (
                            FpValue::from_bits(precision, old.to_bits() ^ (1u64 << bit)),
                            ValueChange::BitFlip { bit },
                        )
                    }
                    CorruptionMode::BitMask(mask) => {
                        let max =
                            mask.max_offset(precision).expect("validated against this precision");
                        let offset = rng.below(max as u64 + 1) as u32;
                        (
                            FpValue::from_bits(precision, mask.apply(old.to_bits(), offset)),
                            ValueChange::MaskApplied { offset, bits_flipped: mask.ones() },
                        )
                    }
                    CorruptionMode::ScalingFactor(factor) => (
                        FpValue::from_f64(precision, old.to_f64() * factor),
                        ValueChange::Scaled { factor: *factor },
                    ),
                };
                if !self.config.allow_nan_values && (new.is_nan() || new.is_infinite()) {
                    redraws += 1;
                    report.nan_redraws += 1;
                    if redraws > MAX_NAN_REDRAWS {
                        return Err(CorruptError::NanRetryExhausted {
                            location,
                            index: entry_index,
                        });
                    }
                    continue;
                }
                Some((old.to_f64(), new.to_bits(), new.to_f64(), change))
            } else {
                // Integer dataset: Python-bin() semantics — flip one random
                // bit within the magnitude's minimal binary width
                // (Section IV-B, regardless of corruption mode).
                let old = ds.get_i64(entry_index)?;
                let width = minimal_bit_width(old);
                let bit = rng.below(width as u64) as u32;
                match corrupt_int(old, bit) {
                    Some(new) => {
                        Some((old as f64, new as u64, new as f64, ValueChange::BitFlip { bit }))
                    }
                    None => {
                        // Magnitude overflow (|i64::MIN| edge): redraw, and
                        // account for it exactly like the float NaN path so
                        // `report.nan_redraws` covers every redrawn attempt.
                        redraws += 1;
                        report.nan_redraws += 1;
                        if redraws > MAX_NAN_REDRAWS {
                            return Err(CorruptError::NanRetryExhausted {
                                location,
                                index: entry_index,
                            });
                        }
                        continue;
                    }
                }
            };

            let (old_value, new_bits, new_value, change) =
                candidate.expect("loop continues on redraw");
            let ds = file.dataset_mut(&location)?;
            if ds.dtype().is_float() {
                ds.set_bits(entry_index, new_bits)?;
            } else {
                ds.set_i64(entry_index, new_bits as i64)?;
            }
            return Ok(InjectionRecord {
                order: report.injections,
                location,
                entry_index,
                change,
                old_value,
                new_value,
            });
        }
    }

    /// Expand the location selection into concrete, non-empty dataset paths.
    fn resolve_locations(&self, file: &H5File) -> Result<Vec<String>, CorruptError> {
        let mut out = Vec::new();
        match &self.config.locations {
            LocationSelection::AllRandom => out = file.dataset_paths(),
            LocationSelection::Listed(locs) => {
                for loc in locs {
                    let expanded = file
                        .datasets_under(loc)
                        .map_err(|_| CorruptError::LocationNotFound(loc.clone()))?;
                    out.extend(expanded);
                }
                out.sort_unstable();
                out.dedup();
            }
        }
        out.retain(|p| file.dataset(p).map(|d| !d.is_empty()).unwrap_or(false));
        if out.is_empty() {
            return Err(CorruptError::NothingToCorrupt);
        }
        Ok(out)
    }

    /// Attempts implied by the configured amount, counting entries within
    /// the resolved locations ("the total number of entries … that can be
    /// corrupted").
    fn num_attempts(&self, file: &H5File, locations: &[String]) -> u64 {
        match self.config.amount {
            InjectionAmount::Count(n) => n,
            InjectionAmount::Percentage(p) => {
                let total: u64 = locations
                    .iter()
                    .map(|l| file.dataset(l).map(|d| d.len() as u64).unwrap_or(0))
                    .sum();
                ((total as f64) * p / 100.0).round() as u64
            }
        }
    }
}

/// Convenience wrapper mirroring the original command-line tool: load an
/// on-disk checkpoint, corrupt it, write it back, return the report.
pub fn corrupt_file(
    path: impl AsRef<Path>,
    config: CorrupterConfig,
) -> Result<InjectionReport, CorruptError> {
    let corrupter = Corrupter::new(config)?;
    let mut file = H5File::load(&path)?;
    let report = corrupter.corrupt(&mut file)?;
    file.save(&path)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_float::{BitMask, BitRange, NevPolicy, Precision};
    use sefi_hdf5::{Dataset, Dtype};

    fn test_file(dtype: Dtype) -> H5File {
        let mut f = H5File::new();
        let values: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 25.0).collect();
        f.create_dataset("model/layer1/W", Dataset::from_f32(&values, &[10, 10], dtype).unwrap())
            .unwrap();
        f.create_dataset("model/layer1/b", Dataset::from_f32(&[0.5; 10], &[10], dtype).unwrap())
            .unwrap();
        f.create_dataset("model/layer2/W", Dataset::from_f32(&values, &[100], dtype).unwrap())
            .unwrap();
        f.create_dataset("meta/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn count_mode_changes_exactly_n_values() {
        let mut f = test_file(Dtype::F64);
        let before = f.clone();
        let c = Corrupter::new(CorrupterConfig::bit_flips(10, Precision::Fp64, 42)).unwrap();
        let report = c.corrupt(&mut f).unwrap();
        assert_eq!(report.attempts, 10);
        assert_eq!(report.injections, 10);
        assert_eq!(report.records.len(), 10);
        // Each record's old value matches the uncorrupted file at that slot
        // *at the time of injection*; at least assert the file changed and
        // differs in ≤ 10 entries (collisions can re-flip).
        let mut diffs = 0;
        for p in before.dataset_paths() {
            let a = before.dataset(&p).unwrap();
            let b = f.dataset(&p).unwrap();
            for i in 0..a.len() {
                if a.get_bits(i).unwrap() != b.get_bits(i).unwrap() {
                    diffs += 1;
                }
            }
        }
        assert!(diffs > 0 && diffs <= 10, "{diffs} entries differ");
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let run = |seed| {
            let mut f = test_file(Dtype::F32);
            let c = Corrupter::new(CorrupterConfig::bit_flips(25, Precision::Fp32, seed)).unwrap();
            c.corrupt(&mut f).unwrap();
            f.to_bytes()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn probability_gate_skips() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(1000, Precision::Fp64, 1);
        cfg.injection_probability = 0.25;
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        assert_eq!(report.injections + report.skipped, 1000);
        let rate = report.injections as f64 / 1000.0;
        assert!((rate - 0.25).abs() < 0.07, "rate {rate}");
    }

    #[test]
    fn zero_probability_never_injects() {
        let mut f = test_file(Dtype::F64);
        let before = f.to_bytes();
        let mut cfg = CorrupterConfig::bit_flips(100, Precision::Fp64, 1);
        cfg.injection_probability = 0.0;
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        assert_eq!(report.injections, 0);
        assert_eq!(report.skipped, 100);
        assert_eq!(f.to_bytes(), before);
    }

    #[test]
    fn percentage_mode_counts_entries() {
        let mut f = test_file(Dtype::F64);
        // Floats: 100 + 10 + 100 = 210; ints: 1. Locations = all datasets.
        let mut cfg = CorrupterConfig::bit_flips(0, Precision::Fp64, 3);
        cfg.amount = InjectionAmount::Percentage(10.0);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        assert_eq!(report.attempts, 21); // round(211 * 0.10)
    }

    #[test]
    fn listed_locations_expand_groups_and_restrict_targets() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(50, Precision::Fp64, 4);
        cfg.locations = LocationSelection::Listed(vec!["model/layer1".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            assert!(r.location.starts_with("model/layer1/"), "{}", r.location);
        }
        let touched = report.locations_touched();
        assert!(touched.contains(&"model/layer1/W"));
    }

    #[test]
    fn unknown_location_is_an_error() {
        let f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(1, Precision::Fp64, 4);
        cfg.locations = LocationSelection::Listed(vec!["model/ghost".to_string()]);
        let err = Corrupter::new(cfg).unwrap().corrupt(&mut f.clone()).unwrap_err();
        assert!(matches!(err, CorruptError::LocationNotFound(_)));
    }

    #[test]
    fn nan_avoidance_never_produces_nan_or_inf() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(500, Precision::Fp64, 5);
        // Full range INCLUDING the exponent MSB, but NaN disallowed: the
        // redraw loop must filter every NaN/Inf.
        cfg.mode = CorruptionMode::BitRange(BitRange::full(Precision::Fp64));
        cfg.allow_nan_values = false;
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            assert!(r.new_value.is_finite(), "record {} is {}", r.order, r.new_value);
        }
        for p in f.dataset_paths() {
            let ds = f.dataset(&p).unwrap();
            if ds.dtype().is_float() {
                for i in 0..ds.len() {
                    assert!(ds.get_f64(i).unwrap().is_finite());
                }
            }
        }
        // Flipping the exponent MSB of small values makes huge-but-finite
        // values, and NaN needs all exponent bits set — so redraws happen
        // mostly via Inf-producing flips on already-extreme values; the
        // counter may legitimately be 0 here, so only check consistency.
        assert_eq!(report.injections, 500);
    }

    #[test]
    fn full_range_with_nan_allowed_produces_nev_at_high_counts() {
        let mut f = test_file(Dtype::F64);
        let cfg = CorrupterConfig::bit_flips_full_range(1000, Precision::Fp64, 6);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        // With 1000 flips over the full range, extreme values are near
        // certain (paper Table IV: ~99% of trainings collapse).
        assert!(report.produced_nev(&NevPolicy::default()));
    }

    #[test]
    fn scaling_factor_multiplies() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(20, Precision::Fp64, 7);
        cfg.mode = CorruptionMode::ScalingFactor(4500.0);
        cfg.locations = LocationSelection::Listed(vec!["model/layer1/W".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            if r.old_value != 0.0 {
                assert!((r.new_value / r.old_value - 4500.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bit_mask_mode_flips_mask_bits() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(30, Precision::Fp64, 8);
        cfg.mode = CorruptionMode::BitMask(BitMask::parse("11101101").unwrap());
        cfg.allow_nan_values = true;
        cfg.locations = LocationSelection::Listed(vec!["model".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            match r.change {
                ValueChange::MaskApplied { offset, bits_flipped } => {
                    assert_eq!(bits_flipped, 6);
                    assert!(offset <= 56);
                }
                other => panic!("unexpected change {other:?}"),
            }
        }
    }

    #[test]
    fn integer_datasets_use_bin_semantics() {
        let mut f = test_file(Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(200, Precision::Fp64, 9);
        cfg.locations = LocationSelection::Listed(vec!["meta/epoch".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        // epoch = 20 = 0b10100 (5 bits); every flip stays within 5 bits of
        // the running value's width.
        assert_eq!(report.injections, 200);
        let v = f.dataset("meta/epoch").unwrap().get_i64(0).unwrap();
        assert!(v >= 0, "sign never flips under bin() semantics: {v}");
    }

    #[test]
    fn precision_mismatch_is_loud() {
        let mut f = test_file(Dtype::F32);
        let cfg = CorrupterConfig::bit_flips(1, Precision::Fp64, 10);
        let err = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap_err();
        assert!(matches!(err, CorruptError::PrecisionMismatch { .. }));
    }

    #[test]
    fn precision_mismatch_fails_before_any_injection() {
        // Fp32 configured against every other real width: the error must
        // fire upfront, leaving the file byte-identical — not after some
        // attempts already landed.
        for dtype in [Dtype::F16, Dtype::BF16, Dtype::F64] {
            let mut f = test_file(dtype);
            let before = f.to_bytes();
            let cfg = CorrupterConfig::bit_flips(100, Precision::Fp32, 10);
            let err = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap_err();
            let CorruptError::PrecisionMismatch { stored, configured, .. } = err else {
                panic!("expected PrecisionMismatch for {dtype:?}, got {err:?}");
            };
            assert_eq!(stored, dtype.precision().unwrap());
            assert_eq!(configured, Precision::Fp32);
            assert_eq!(f.to_bytes(), before, "{dtype:?}: no partial corruption escapes");
        }
        // The two 16-bit precisions are distinct, not width-aliased.
        let mut f = test_file(Dtype::BF16);
        let cfg = CorrupterConfig::bit_flips(1, Precision::Fp16, 10);
        let err = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap_err();
        assert!(err.to_string().contains("Bf16"), "{err}");
    }

    #[test]
    fn precision_check_honors_location_eligibility() {
        // An out-of-scope f64 dataset must not trip the upfront check when
        // the listed locations only cover matching-width data.
        let mut f = test_file(Dtype::F32);
        f.create_dataset("aux/stats", Dataset::from_f32(&[1.0; 4], &[4], Dtype::F64).unwrap())
            .unwrap();
        let mut cfg = CorrupterConfig::bit_flips(10, Precision::Fp32, 11);
        cfg.locations = LocationSelection::Listed(vec!["model".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        assert_eq!(report.injections, 10);
        // Widening the selection to include it is the loud path.
        let mut cfg = CorrupterConfig::bit_flips(10, Precision::Fp32, 11);
        cfg.locations = LocationSelection::Listed(vec!["aux".to_string()]);
        let err = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap_err();
        assert!(matches!(err, CorruptError::PrecisionMismatch { .. }));
    }

    #[test]
    fn quantized_datasets_use_integer_semantics() {
        // I8Q has no float precision: it is exempt from the precision check
        // and corrupts through the integer bin() path on the raw quantized
        // elements, whatever float width the config names.
        let mut f = H5File::new();
        f.create_dataset("q", Dataset::from_f32(&[0.5, -1.0, 0.25], &[3], Dtype::I8Q).unwrap())
            .unwrap();
        let before = f.dataset("q").unwrap().clone();
        let cfg = CorrupterConfig::bit_flips(20, Precision::Fp64, 12);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        assert_eq!(report.injections, 20);
        let after = f.dataset("q").unwrap();
        assert_eq!(after.scale(), before.scale(), "scale is metadata, not a target");
        let changed = (0..3).filter(|&i| after.get_i64(i) != before.get_i64(i)).count();
        assert!(changed > 0, "quantized elements corrupt");
    }

    #[test]
    fn f16_and_f32_checkpoints_corrupt_at_their_width() {
        for (dtype, precision) in [
            (Dtype::F16, Precision::Fp16),
            (Dtype::BF16, Precision::Bf16),
            (Dtype::F32, Precision::Fp32),
        ] {
            let mut f = test_file(dtype);
            let cfg = CorrupterConfig::bit_flips_full_range(50, precision, 11);
            let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
            for r in &report.records {
                if let ValueChange::BitFlip { bit } = r.change {
                    assert!(bit < precision.width());
                }
            }
        }
    }

    #[test]
    fn empty_location_set_is_error() {
        let mut f = H5File::new();
        f.create_dataset("empty", Dataset::zeros(&[0], Dtype::F64)).unwrap();
        let cfg = CorrupterConfig::bit_flips(1, Precision::Fp64, 12);
        let err = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap_err();
        assert!(matches!(err, CorruptError::NothingToCorrupt));
    }

    #[test]
    fn corrupt_file_roundtrips_on_disk() {
        let dir = crate::testutil::TestDir::new("core_corrupt");
        let p = dir.file("ckpt.sefi5");
        test_file(Dtype::F64).save(&p).unwrap();
        let report = corrupt_file(&p, CorrupterConfig::bit_flips(5, Precision::Fp64, 13)).unwrap();
        assert_eq!(report.injections, 5);
        let loaded = H5File::load(&p).unwrap();
        assert_ne!(loaded, test_file(Dtype::F64));
    }

    #[test]
    fn integer_overflow_redraws_are_counted_in_the_report() {
        // |i64::MIN| = 2^63 occupies the full 64-bit magnitude: flipping any
        // bit but 63 overflows (corrupt_int returns None) and must be
        // redrawn. Those redraws are accounted in `report.nan_redraws`
        // exactly like the float path's NaN redraws.
        let mut f = H5File::new();
        f.create_dataset("meta/step", Dataset::from_i64(&[i64::MIN], &[1], Dtype::I64).unwrap())
            .unwrap();
        let c = Corrupter::new(CorrupterConfig::bit_flips(1, Precision::Fp64, 3)).unwrap();
        let report = c.corrupt(&mut f).unwrap();
        assert_eq!(report.injections, 1);
        assert!(
            report.nan_redraws > 0,
            "seed 3 must draw at least one overflowing bit before bit 63"
        );
        // The only survivable flip zeroes the magnitude.
        assert_eq!(f.dataset("meta/step").unwrap().get_i64(0).unwrap(), 0);
    }
}
