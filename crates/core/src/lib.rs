//! The checkpoint-alteration fault injector — the paper's contribution.
//!
//! "Contrary to the common approach of injecting a fault during the
//! execution of the application, soft errors are simulated by altering a
//! previously saved checkpoint file. Thus, when the process loads the
//! corrupted model, it continues execution normally as if nothing
//! happened." (Section IV-B)
//!
//! This crate reimplements the paper's Python `hdf5_corrupter` with every
//! setting of its Table I:
//!
//! | setting | here |
//! |---|---|
//! | `hdf5_file` | any [`sefi_hdf5::H5File`] (or a path via [`corrupt_file`]) |
//! | `injection_probability` | [`CorrupterConfig::injection_probability`] |
//! | `injection_type` / `injection_attempts` | [`InjectionAmount`] (count or percentage) |
//! | `float_precision` | [`CorrupterConfig::float_precision`] |
//! | `corruption_mode` | [`CorruptionMode`]: bit mask / bit range / scaling factor |
//! | `allow_NaN_values` | [`CorrupterConfig::allow_nan_values`] |
//! | `locations_to_corrupt` / `use_random_locations` | [`LocationSelection`] |
//!
//! plus the paper's **equivalent injection** (Section IV-C): every run can
//! emit an [`InjectionLog`] (a JSON document, like the original tool's
//! `.json` file) whose location strings can be remapped and replayed
//! against a checkpoint produced by a *different* framework, flipping the
//! same number of bits, at the same bit positions, in the same order, at
//! the equivalent location.

#![deny(missing_docs)]

mod config;
mod corrupter;
pub mod diff;
mod error;
pub mod guard;
mod log;
mod raw;
mod report;
#[cfg(test)]
mod testutil;

pub use config::{CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection, RawConfig};
pub use corrupter::{corrupt_file, Corrupter};
pub use diff::{diff_checkpoint_values, diff_checkpoints, CheckpointDiff, DatasetDiff};
pub use error::CorruptError;
pub use guard::{GuardFinding, GuardReport, NevGuard, RepairPolicy};
pub use log::{InjectionLog, LogRecord};
pub use raw::RawCorrupter;
pub use report::{
    FileRegion, InjectionRecord, InjectionReport, RawFlipRecord, RawReport, RawTarget, ValueChange,
};
