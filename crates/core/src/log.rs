//! Equivalent injection: save, remap, and replay bit-flip sequences
//! (Section IV-C of the paper).
//!
//! A log records, for each injection in order, the checkpoint location,
//! the exact action (bit position / mask placement / scale factor), and —
//! informationally — the entry index that was hit. Replaying against a
//! different framework's checkpoint remaps the location string and applies
//! the same actions in the same order; the *entry index is redrawn* inside
//! the remapped location, because "each framework saves the weights of the
//! network differently … saving the dataset and the index for each bit-flip
//! is not very useful because it cannot be mapped to a different
//! framework". That is what makes the injection *equivalent* rather than
//! *equal*.

use crate::error::CorruptError;
use crate::report::{InjectionRecord, InjectionReport, ValueChange};
use sefi_float::FpValue;
use sefi_hdf5::H5File;
use sefi_rng::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// One logged injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Order within the run.
    pub order: u64,
    /// Checkpoint location (dataset path) that was corrupted.
    pub location: String,
    /// The action taken.
    pub change: ValueChange,
    /// The entry index hit in the *original* file. Informational only;
    /// replay redraws it (see module docs).
    pub entry_index: usize,
}

impl LogRecord {
    /// Build from a report record.
    pub fn from_record(r: &InjectionRecord) -> Self {
        LogRecord {
            order: r.order,
            location: r.location.clone(),
            change: r.change,
            entry_index: r.entry_index,
        }
    }
}

/// A saved injection sequence — the `.json` artifact of the original tool.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InjectionLog {
    records: Vec<LogRecord>,
}

impl InjectionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: LogRecord) {
        self.records.push(r);
    }

    /// The records in injection order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of injections logged ("the number of weights that are
    /// modified").
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to JSON (human-diffable, like the paper's artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log is always serializable")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, CorruptError> {
        serde_json::from_str(json).map_err(|e| CorruptError::Log(e.to_string()))
    }

    /// Write JSON to disk.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CorruptError> {
        std::fs::write(path, self.to_json()).map_err(|e| CorruptError::Io(e.to_string()))
    }

    /// Read JSON from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CorruptError> {
        let s = std::fs::read_to_string(path).map_err(|e| CorruptError::Io(e.to_string()))?;
        Self::from_json(&s)
    }

    /// Rewrite location strings — "changing the location string in the
    /// .json" to point at framework B's equivalent paths. Locations not in
    /// the map are kept (so logs within one framework replay unchanged).
    ///
    /// Keys may be full dataset paths or prefixes; the longest matching
    /// prefix wins. A prefix only matches at a path-segment boundary.
    pub fn remap_locations(&self, map: &HashMap<String, String>) -> InjectionLog {
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort_by_key(|k| std::cmp::Reverse(k.len()));
        let remap_one = |loc: &str| -> String {
            for key in &keys {
                if loc == key.as_str() {
                    return map[*key].clone();
                }
                if let Some(rest) = loc.strip_prefix(key.as_str()) {
                    if let Some(tail) = rest.strip_prefix('/') {
                        return format!("{}/{}", map[*key], tail);
                    }
                }
            }
            loc.to_string()
        };
        InjectionLog {
            records: self
                .records
                .iter()
                .map(|r| LogRecord { location: remap_one(&r.location), ..r.clone() })
                .collect(),
        }
    }

    /// Replay the logged sequence against a checkpoint: same number of
    /// injections, same order, same bit positions / mask placements /
    /// factors, at the (possibly remapped) locations. Entry indices are
    /// redrawn deterministically from `seed`.
    ///
    /// If a logged location names a group in the target file, a dataset
    /// beneath it is drawn at random — this is what lets a Chainer layer
    /// group map onto a TensorFlow layer group even though their inner
    /// dataset names differ.
    pub fn replay(&self, file: &mut H5File, seed: u64) -> Result<InjectionReport, CorruptError> {
        let mut rng = DetRng::new(seed).substream("replay");
        let mut report =
            InjectionReport { attempts: self.records.len() as u64, ..Default::default() };
        for rec in &self.records {
            let candidates = file
                .datasets_under(&rec.location)
                .map_err(|_| CorruptError::LocationNotFound(rec.location.clone()))?;
            let candidates: Vec<String> = candidates
                .into_iter()
                .filter(|p| file.dataset(p).map(|d| !d.is_empty()).unwrap_or(false))
                .collect();
            if candidates.is_empty() {
                return Err(CorruptError::NothingToCorrupt);
            }
            let location = rng.choose(&candidates).clone();
            let ds = file.dataset_mut(&location)?;
            let entry_index = rng.index(ds.len());
            let precision = ds.dtype().precision().ok_or_else(|| {
                CorruptError::Log(format!("replay target {location:?} is not a float dataset"))
            })?;
            let old = FpValue::from_bits(precision, ds.get_bits(entry_index)?);
            let new = match rec.change {
                ValueChange::BitFlip { bit } => {
                    if bit >= precision.width() {
                        return Err(CorruptError::Log(format!(
                            "logged bit {bit} exceeds {}-bit replay precision",
                            precision.width()
                        )));
                    }
                    FpValue::from_bits(precision, old.to_bits() ^ (1u64 << bit))
                }
                ValueChange::MaskApplied { offset, bits_flipped } => {
                    // The aligned XOR pattern cannot be reconstructed from
                    // ones-count alone; logs of mask runs store offset and
                    // population for analysis, and replay refuses rather
                    // than guessing a different mask.
                    let _ = (offset, bits_flipped);
                    return Err(CorruptError::Log(
                        "bit-mask runs are replayed by re-running the corrupter with the same \
                         mask and seed, not via log replay"
                            .to_string(),
                    ));
                }
                ValueChange::Scaled { factor } => {
                    FpValue::from_f64(precision, old.to_f64() * factor)
                }
            };
            let new_bits = new.to_bits();
            let new_value = new.to_f64();
            let old_value = old.to_f64();
            ds.set_bits(entry_index, new_bits)?;
            report.records.push(InjectionRecord {
                order: report.injections,
                location,
                entry_index,
                change: rec.change,
                old_value,
                new_value,
            });
            report.injections += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CorrupterConfig, LocationSelection};
    use crate::corrupter::Corrupter;
    use sefi_float::Precision;
    use sefi_hdf5::{Dataset, Dtype};

    fn file_with_layout(root: &str) -> H5File {
        let mut f = H5File::new();
        let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 16.0).collect();
        f.create_dataset(
            &format!("{root}/conv1/W"),
            Dataset::from_f32(&values, &[64], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            &format!("{root}/conv1/b"),
            Dataset::from_f32(&[0.1; 8], &[8], Dtype::F64).unwrap(),
        )
        .unwrap();
        f
    }

    fn logged_run(seed: u64) -> (H5File, InjectionLog) {
        let mut f = file_with_layout("predictor");
        let mut cfg = CorrupterConfig::bit_flips(12, Precision::Fp64, seed);
        cfg.locations = LocationSelection::Listed(vec!["predictor/conv1".to_string()]);
        let c = Corrupter::new(cfg).unwrap();
        let (_, log) = c.corrupt_with_log(&mut f).unwrap();
        (f, log)
    }

    #[test]
    fn log_json_roundtrip() {
        let (_, log) = logged_run(1);
        assert_eq!(log.len(), 12);
        let back = InjectionLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(InjectionLog::from_json("not json").is_err());
        assert!(InjectionLog::from_json("{\"records\": 5}").is_err());
    }

    #[test]
    fn remap_rewrites_prefixes_at_segment_boundaries() {
        let (_, log) = logged_run(2);
        let mut map = HashMap::new();
        map.insert("predictor/conv1".to_string(), "model_weights/conv1".to_string());
        let remapped = log.remap_locations(&map);
        for r in remapped.records() {
            assert!(r.location.starts_with("model_weights/conv1/"), "{}", r.location);
        }
        // Non-boundary prefixes must not match.
        let mut log2 = InjectionLog::new();
        log2.push(LogRecord {
            order: 0,
            location: "predictor/conv10/W".to_string(),
            change: ValueChange::BitFlip { bit: 1 },
            entry_index: 0,
        });
        let remapped2 = log2.remap_locations(&map);
        assert_eq!(remapped2.records()[0].location, "predictor/conv10/W");
    }

    #[test]
    fn replay_applies_same_bits_same_order_at_equivalent_location() {
        let (_, log) = logged_run(3);
        let mut map = HashMap::new();
        map.insert("predictor".to_string(), "model_weights".to_string());
        let remapped = log.remap_locations(&map);

        let mut target = file_with_layout("model_weights");
        let report = remapped.replay(&mut target, 99).unwrap();
        assert_eq!(report.injections as usize, log.len());
        for (orig, replayed) in log.records().iter().zip(&report.records) {
            assert_eq!(orig.change, replayed.change, "same bit position, same order");
            assert!(replayed.location.starts_with("model_weights/conv1"));
        }
    }

    #[test]
    fn replay_is_deterministic_in_its_seed() {
        let (_, log) = logged_run(4);
        let run = |seed| {
            let mut t = file_with_layout("predictor");
            log.replay(&mut t, seed).unwrap();
            t.to_bytes()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn replay_group_location_draws_inner_dataset() {
        let mut log = InjectionLog::new();
        for i in 0..6 {
            log.push(LogRecord {
                order: i,
                location: "predictor/conv1".to_string(), // a group
                change: ValueChange::BitFlip { bit: 2 },
                entry_index: 0,
            });
        }
        let mut f = file_with_layout("predictor");
        let report = log.replay(&mut f, 0).unwrap();
        assert_eq!(report.injections, 6);
        for r in &report.records {
            assert!(r.location == "predictor/conv1/W" || r.location == "predictor/conv1/b");
        }
    }

    #[test]
    fn replay_missing_location_errors() {
        let (_, log) = logged_run(5);
        let mut wrong = file_with_layout("model_weights");
        assert!(matches!(log.replay(&mut wrong, 0), Err(CorruptError::LocationNotFound(_))));
    }

    #[test]
    fn replay_rejects_oversized_bit_for_precision() {
        let mut log = InjectionLog::new();
        log.push(LogRecord {
            order: 0,
            location: "g/w".to_string(),
            change: ValueChange::BitFlip { bit: 40 },
            entry_index: 0,
        });
        let mut f = H5File::new();
        f.create_dataset("g/w", Dataset::from_f32(&[1.0; 4], &[4], Dtype::F16).unwrap()).unwrap();
        assert!(matches!(log.replay(&mut f, 0), Err(CorruptError::Log(_))));
    }

    #[test]
    fn save_and_load_from_disk() {
        let (_, log) = logged_run(6);
        let dir = crate::testutil::TestDir::new("log");
        let p = dir.file("inj.json");
        log.save(&p).unwrap();
        assert_eq!(InjectionLog::load(&p).unwrap(), log);
    }
}
