//! N-EV detection and repair — the paper's Section VI-1 direction.
//!
//! "There is practically only one critical bit. […] If the detection of
//! N-EV was implemented at either the hardware or software level, then DL
//! platforms would be virtually unbreakable."
//!
//! [`NevGuard`] is that software-level detector: it scans a checkpoint for
//! NaN / Inf / extreme values and (optionally) repairs them before the
//! model is loaded. Repair policies follow what a framework could cheaply
//! do without any reference data:
//!
//! * [`RepairPolicy::Zero`] — overwrite with 0.0 (a dropped weight; the
//!   model's natural redundancy absorbs it exactly like a benign flip).
//! * [`RepairPolicy::ClampTo`] — clamp the magnitude to a safe bound
//!   (preserves sign and "direction" of the weight).
//! * [`RepairPolicy::DetectOnly`] — report, don't touch.

use crate::report::{InjectionRecord, ValueChange};
use sefi_float::{FpValue, Nev, NevPolicy};
use sefi_hdf5::H5File;
use serde::{Deserialize, Serialize};

/// What to do with a detected N-EV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Report only.
    DetectOnly,
    /// Replace the value with 0.0.
    Zero,
    /// Clamp the magnitude to the carried bound; NaN becomes 0.0.
    ///
    /// The bound must be small enough that downstream arithmetic cannot
    /// overflow — clamping to the *detection* threshold (1e30) is not safe,
    /// because a 1e30 weight still overflows an f32 forward pass on first
    /// use (squaring it exceeds f32::MAX). The unit tests pin this trap.
    ClampTo(f64),
}

/// One detected (and possibly repaired) value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuardFinding {
    /// Dataset path.
    pub location: String,
    /// Entry index within the dataset.
    pub entry_index: usize,
    /// Classification of the offending value.
    pub kind: Nev,
    /// The offending value (widened).
    pub value: f64,
    /// The replacement written, if any.
    pub repaired_to: Option<f64>,
}

/// Scan summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GuardReport {
    /// Values scanned.
    pub scanned: u64,
    /// All findings in path order.
    pub findings: Vec<GuardFinding>,
}

impl GuardReport {
    /// True when the checkpoint was clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per [`Nev`] kind: `(nan, inf, extreme)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.kind {
                Nev::NaN => c.0 += 1,
                Nev::Inf => c.1 += 1,
                Nev::Extreme => c.2 += 1,
            }
        }
        c
    }
}

/// A checkpoint scrubber: detects and repairs N-EV values.
#[derive(Debug, Clone)]
pub struct NevGuard {
    policy: NevPolicy,
    repair: RepairPolicy,
}

impl NevGuard {
    /// Guard with the given N-EV policy and repair action.
    pub fn new(policy: NevPolicy, repair: RepairPolicy) -> Self {
        NevGuard { policy, repair }
    }

    /// A zero-repair guard with the default N-EV policy — the
    /// "virtually unbreakable" configuration.
    pub fn default_repair() -> Self {
        NevGuard::new(NevPolicy::default(), RepairPolicy::Zero)
    }

    /// Scan all float datasets of `file`, applying the repair policy.
    pub fn scrub(&self, file: &mut H5File) -> GuardReport {
        let mut report = GuardReport::default();
        for path in file.dataset_paths() {
            let ds = file.dataset_mut(&path).expect("path enumerated from file");
            let Some(precision) = ds.dtype().precision() else {
                continue; // integer datasets cannot hold NaN/Inf
            };
            for i in 0..ds.len() {
                report.scanned += 1;
                let v = FpValue::from_bits(precision, ds.get_bits(i).expect("in bounds"));
                let Some(kind) = self.policy.classify(v) else {
                    continue;
                };
                let repaired_to = match self.repair {
                    RepairPolicy::DetectOnly => None,
                    RepairPolicy::Zero => Some(0.0),
                    RepairPolicy::ClampTo(bound) => {
                        let raw = v.to_f64();
                        Some(if raw.is_nan() { 0.0 } else { raw.clamp(-bound, bound) })
                    }
                };
                if let Some(r) = repaired_to {
                    ds.set_fp(i, FpValue::from_f64(precision, r)).expect("in bounds");
                }
                report.findings.push(GuardFinding {
                    location: path.clone(),
                    entry_index: i,
                    kind,
                    value: v.to_f64(),
                    repaired_to,
                });
            }
        }
        report
    }

    /// Cross-check a scrub against an injection report: which injected
    /// N-EVs the guard caught (by location and index).
    pub fn caught(
        report: &GuardReport,
        injections: &[InjectionRecord],
        policy: &NevPolicy,
    ) -> (usize, usize) {
        let injected_nev: Vec<&InjectionRecord> =
            injections.iter().filter(|r| policy.classify_f64(r.new_value).is_some()).collect();
        let caught = injected_nev
            .iter()
            .filter(|r| {
                report
                    .findings
                    .iter()
                    .any(|f| f.location == r.location && f.entry_index == r.entry_index)
            })
            .count();
        let _ = ValueChange::BitFlip { bit: 0 }; // anchor the re-export
        (caught, injected_nev.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corrupter, CorrupterConfig};
    use sefi_float::Precision;
    use sefi_hdf5::{Dataset, Dtype};

    fn poisoned_file() -> H5File {
        let mut f = H5File::new();
        let values = [1.0f32, -2.0, 3.0, -4.0];
        f.create_dataset("m/w", Dataset::from_f32(&values, &[4], Dtype::F64).unwrap()).unwrap();
        f.create_dataset("m/epoch", Dataset::scalar_i64(20)).unwrap();
        let ds = f.dataset_mut("m/w").unwrap();
        ds.set_f64(1, f64::NAN).unwrap();
        ds.set_f64(2, f64::INFINITY).unwrap();
        ds.set_f64(3, -1e300).unwrap();
        f
    }

    #[test]
    fn detects_all_three_kinds() {
        let mut f = poisoned_file();
        let guard = NevGuard::new(NevPolicy::default(), RepairPolicy::DetectOnly);
        let report = guard.scrub(&mut f);
        assert_eq!(report.scanned, 4); // integer epoch skipped
        assert_eq!(report.counts(), (1, 1, 1));
        // Detect-only: the file still holds the poison.
        assert!(f.dataset("m/w").unwrap().get_f64(1).unwrap().is_nan());
    }

    #[test]
    fn zero_repair_cleans_the_file() {
        let mut f = poisoned_file();
        let report = NevGuard::default_repair().scrub(&mut f);
        assert_eq!(report.findings.len(), 3);
        let ds = f.dataset("m/w").unwrap();
        for i in 0..ds.len() {
            assert!(ds.get_f64(i).unwrap().is_finite());
        }
        assert_eq!(ds.get_f64(1).unwrap(), 0.0);
        // Re-scrub finds nothing.
        let again = NevGuard::default_repair().scrub(&mut f);
        assert!(again.is_clean());
    }

    #[test]
    fn clamp_preserves_sign() {
        let mut f = poisoned_file();
        let guard = NevGuard::new(NevPolicy::default(), RepairPolicy::ClampTo(10.0));
        guard.scrub(&mut f);
        let ds = f.dataset("m/w").unwrap();
        assert_eq!(ds.get_f64(2).unwrap(), 10.0); // +Inf clamped to +bound
        assert_eq!(ds.get_f64(3).unwrap(), -10.0); // -1e300 clamped to -bound
        assert_eq!(ds.get_f64(1).unwrap(), 0.0); // NaN has no sign to keep
    }

    #[test]
    fn benign_values_are_untouched() {
        let mut f = H5File::new();
        f.create_dataset("w", Dataset::from_f32(&[0.5, -0.25, 1e20], &[3], Dtype::F32).unwrap())
            .unwrap();
        let before = f.to_bytes();
        let report = NevGuard::default_repair().scrub(&mut f);
        assert!(report.is_clean());
        assert_eq!(f.to_bytes(), before);
    }

    #[test]
    fn guard_catches_every_injected_nev() {
        let mut f = H5File::new();
        let values: Vec<f32> = (0..200).map(|i| (i as f32 - 100.0) / 50.0).collect();
        f.create_dataset("m/w", Dataset::from_f32(&values, &[200], Dtype::F64).unwrap()).unwrap();
        let cfg = CorrupterConfig::bit_flips_full_range(100, Precision::Fp64, 11);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        let policy = NevPolicy::default();

        let guard_report = NevGuard::default_repair().scrub(&mut f);
        let (caught, injected) = NevGuard::caught(&guard_report, &report.records, &policy);
        // Every injected N-EV that is still an N-EV in the file must be
        // found. (A later flip can re-corrupt the same slot, so caught can
        // exceed what survives, but never fall below findings.)
        assert!(injected > 0, "100 full-range flips should create N-EVs");
        assert_eq!(caught, injected, "guard missed injected N-EVs");
        // And the cleaned file carries none.
        assert!(NevGuard::default_repair().scrub(&mut f).is_clean());
    }
}
