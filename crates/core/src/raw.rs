//! Raw byte-level injection: flip bits in checkpoint *file bytes*.
//!
//! The paper's tool corrupts decoded values, which by construction can only
//! hit numeric entries. A real soft error in storage or DMA has no such
//! courtesy — it lands anywhere in the file: superblock, index, a checksum
//! field, or a dataset's raw bytes. [`RawCorrupter`] models that physical
//! fault on the sectioned v2 format and then uses the file's own index to
//! *attribute* every flip: payload hits map back to an exact
//! (dataset, entry, bit); anything else is reported as an out-of-band
//! superblock or index hit. This keeps the injection faithful to the
//! paper's "only touches the file" contract while extending coverage to
//! the bytes the value-level injector cannot reach.

use crate::config::RawConfig;
use crate::error::CorruptError;
use crate::report::{FileRegion, RawFlipRecord, RawReport, RawTarget};
use sefi_hdf5::sidecar::ParityLocation;
use sefi_hdf5::{EccSidecar, FileIndex, SUPERBLOCK_LEN};
use sefi_rng::DetRng;

/// Flips bits directly in v2 file bytes, deterministically per seed.
#[derive(Debug, Clone)]
pub struct RawCorrupter {
    config: RawConfig,
}

impl RawCorrupter {
    /// Validate the config and build a corrupter.
    pub fn new(config: RawConfig) -> Result<Self, CorruptError> {
        config.validate()?;
        Ok(RawCorrupter { config })
    }

    /// Flip the configured number of bits in `bytes` in place.
    ///
    /// The index is parsed from the pristine bytes *before* any flip, so
    /// attribution reflects the file as it was written — exactly what a
    /// post-mortem with the original checkpoint's index would conclude.
    /// Requires a well-formed v2 file (the raw injector needs the index to
    /// attribute offsets; v1 files have no index to parse).
    pub fn corrupt_bytes(&self, bytes: &mut [u8]) -> Result<RawReport, CorruptError> {
        let index = FileIndex::parse(bytes)?;
        let (start, end) = match self.config.region {
            None => (0, bytes.len()),
            Some(FileRegion::Superblock) => (0, SUPERBLOCK_LEN),
            Some(FileRegion::Index) => (SUPERBLOCK_LEN, index.payload_start()),
            Some(FileRegion::Payload) => (index.payload_start(), bytes.len()),
            Some(FileRegion::Parity) => {
                return Err(CorruptError::InvalidConfig(
                    "the parity region needs a sidecar — use corrupt_with_sidecar".to_string(),
                ))
            }
        };
        if start >= end {
            return Err(CorruptError::NothingToCorrupt);
        }
        let mut rng = DetRng::new(self.config.seed).substream("raw");
        let mut report = RawReport::default();
        for order in 0..self.config.flips {
            let offset = start + rng.below((end - start) as u64) as usize;
            let bit_in_byte = rng.below(8) as u8;
            bytes[offset] ^= 1 << bit_in_byte;
            let (region, target) = attribute(&index, offset, bit_in_byte);
            report.flips.push(RawFlipRecord { order, offset, bit_in_byte, region, target });
        }
        Ok(report)
    }

    /// Flip bits across a checkpoint *and its ECC parity sidecar*, modeling
    /// a fault domain (disk, DMA buffer) that holds both files.
    ///
    /// Region semantics extend [`RawCorrupter::corrupt_bytes`]:
    /// `None` draws offsets over the concatenated
    /// `checkpoint ++ sidecar` span, [`FileRegion::Parity`] confines flips
    /// to the sidecar, and the checkpoint-only regions behave as before.
    /// Sidecar hits are recorded with the offset *within the sidecar
    /// file*, region [`FileRegion::Parity`], and — for parity bytes proper
    /// — a [`RawTarget`] naming the protected dataset and code-word index;
    /// structural sidecar bytes (header, word counts) attribute to `None`
    /// like superblock hits do.
    pub fn corrupt_with_sidecar(
        &self,
        bytes: &mut [u8],
        sidecar_bytes: &mut [u8],
    ) -> Result<RawReport, CorruptError> {
        let index = FileIndex::parse(bytes)?;
        let sidecar = EccSidecar::from_bytes(sidecar_bytes)?;
        let ckpt_len = bytes.len();
        let (start, end) = match self.config.region {
            None => (0, ckpt_len + sidecar_bytes.len()),
            Some(FileRegion::Superblock) => (0, SUPERBLOCK_LEN),
            Some(FileRegion::Index) => (SUPERBLOCK_LEN, index.payload_start()),
            Some(FileRegion::Payload) => (index.payload_start(), ckpt_len),
            Some(FileRegion::Parity) => (ckpt_len, ckpt_len + sidecar_bytes.len()),
        };
        if start >= end {
            return Err(CorruptError::NothingToCorrupt);
        }
        let mut rng = DetRng::new(self.config.seed).substream("raw");
        let mut report = RawReport::default();
        for order in 0..self.config.flips {
            let span_offset = start + rng.below((end - start) as u64) as usize;
            let bit_in_byte = rng.below(8) as u8;
            let record = if span_offset < ckpt_len {
                bytes[span_offset] ^= 1 << bit_in_byte;
                let (region, target) = attribute(&index, span_offset, bit_in_byte);
                RawFlipRecord { order, offset: span_offset, bit_in_byte, region, target }
            } else {
                let offset = span_offset - ckpt_len;
                sidecar_bytes[offset] ^= 1 << bit_in_byte;
                let target = match sidecar.locate(offset) {
                    Some(ParityLocation::Word { section, word }) => {
                        index.entries().get(section).map(|e| RawTarget {
                            dataset: e.path.clone(),
                            entry_index: word,
                            bit: bit_in_byte as u32,
                        })
                    }
                    _ => None,
                };
                RawFlipRecord { order, offset, bit_in_byte, region: FileRegion::Parity, target }
            };
            report.flips.push(record);
        }
        Ok(report)
    }
}

/// Map an absolute file offset to its structural region and, for payload
/// hits, through the index to the exact (dataset, entry, bit).
fn attribute(index: &FileIndex, offset: usize, bit_in_byte: u8) -> (FileRegion, Option<RawTarget>) {
    if offset < SUPERBLOCK_LEN {
        return (FileRegion::Superblock, None);
    }
    if offset < index.payload_start() {
        return (FileRegion::Index, None);
    }
    let target = index.locate(offset).map(|e| {
        let within = offset - e.offset;
        let width = e.dtype.size();
        RawTarget {
            dataset: e.path.clone(),
            entry_index: within / width,
            bit: ((within % width) * 8) as u32 + bit_in_byte as u32,
        }
    });
    (FileRegion::Payload, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_hdf5::{Dataset, Dtype, H5File};

    fn sample_v2() -> (H5File, Vec<u8>) {
        let mut f = H5File::new();
        f.create_dataset(
            "predictor/conv1/W",
            Dataset::from_f32(&[1.0, -2.0, 3.5, 0.25, 8.0, -0.125], &[3, 2], Dtype::F32).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            "predictor/fc/b",
            Dataset::from_f32(&[0.5, -0.5, 0.75], &[3], Dtype::F64).unwrap(),
        )
        .unwrap();
        f.create_dataset("updater/epoch", Dataset::scalar_i64(20)).unwrap();
        let bytes = f.to_bytes_v2();
        (f, bytes)
    }

    #[test]
    fn same_seed_same_flips() {
        let (_, pristine) = sample_v2();
        let c = RawCorrupter::new(RawConfig { flips: 5, region: None, seed: 42 }).unwrap();
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        let ra = c.corrupt_bytes(&mut a).unwrap();
        let rb = c.corrupt_bytes(&mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_ne!(a, pristine);
    }

    #[test]
    fn region_targeting_respects_boundaries() {
        let (_, pristine) = sample_v2();
        let payload_start = FileIndex::parse(&pristine).unwrap().payload_start();
        for (region, lo, hi) in [
            (FileRegion::Superblock, 0, SUPERBLOCK_LEN),
            (FileRegion::Index, SUPERBLOCK_LEN, payload_start),
            (FileRegion::Payload, payload_start, pristine.len()),
        ] {
            let c =
                RawCorrupter::new(RawConfig { flips: 32, region: Some(region), seed: 9 }).unwrap();
            let mut bytes = pristine.clone();
            let report = c.corrupt_bytes(&mut bytes).unwrap();
            for flip in &report.flips {
                assert!(flip.offset >= lo && flip.offset < hi, "{region:?} {}", flip.offset);
                assert_eq!(flip.region, region);
            }
            // Only the targeted region differs from the pristine bytes.
            assert_eq!(bytes[..lo], pristine[..lo]);
            assert_eq!(bytes[hi..], pristine[hi..]);
        }
    }

    #[test]
    fn every_payload_flip_maps_to_dataset_entry_bit() {
        let (pristine_file, pristine) = sample_v2();
        let c =
            RawCorrupter::new(RawConfig { flips: 64, region: Some(FileRegion::Payload), seed: 3 })
                .unwrap();
        let mut bytes = pristine.clone();
        let report = c.corrupt_bytes(&mut bytes).unwrap();
        assert!(report.flips.iter().all(|f| f.target.is_some()), "payload fully attributed");

        // Cross-check the mapping: replaying each reported (dataset, entry,
        // bit) flip against the pristine in-memory file must produce the
        // same values a trusting loader reads out of the corrupted bytes
        // (an even number of flips on the same bit cancels — XOR replay
        // handles that naturally). The corrupted bytes still carry the
        // pristine CRCs, so the comparison goes through the unverified
        // decoder rather than re-encoding.
        let mut replay = pristine_file.clone();
        for f in &report.flips {
            let t = f.target.as_ref().unwrap();
            let ds = replay.dataset_mut(&t.dataset).unwrap();
            let bits = ds.get_bits(t.entry_index).unwrap();
            ds.set_bits(t.entry_index, bits ^ (1u64 << t.bit)).unwrap();
        }
        assert_eq!(replay, H5File::from_bytes_unverified(&bytes).unwrap());
    }

    #[test]
    fn parity_region_flips_land_only_in_the_sidecar() {
        let (_, pristine) = sample_v2();
        let pristine_sc = EccSidecar::protect(&pristine).unwrap().to_bytes();
        let c =
            RawCorrupter::new(RawConfig { flips: 48, region: Some(FileRegion::Parity), seed: 11 })
                .unwrap();
        let mut bytes = pristine.clone();
        let mut sc = pristine_sc.clone();
        let report = c.corrupt_with_sidecar(&mut bytes, &mut sc).unwrap();
        assert_eq!(bytes, pristine, "the checkpoint itself is untouched");
        assert_ne!(sc, pristine_sc);
        assert_eq!(report.region_count(FileRegion::Parity), 48);
        // Parity-byte hits attribute to (dataset, code word); structural
        // sidecar bytes to None.
        let sidecar = EccSidecar::from_bytes(&pristine_sc).unwrap();
        for f in &report.flips {
            match sidecar.locate(f.offset).unwrap() {
                ParityLocation::Word { section, word } => {
                    let t = f.target.as_ref().expect("parity byte attributes");
                    let index = FileIndex::parse(&pristine).unwrap();
                    assert_eq!(t.dataset, index.entries()[section].path);
                    assert_eq!(t.entry_index, word);
                }
                ParityLocation::Header => assert!(f.target.is_none()),
            }
        }
    }

    #[test]
    fn whole_domain_flips_cover_both_files_deterministically() {
        let (_, pristine) = sample_v2();
        let pristine_sc = EccSidecar::protect(&pristine).unwrap().to_bytes();
        let c = RawCorrupter::new(RawConfig { flips: 64, region: None, seed: 5 }).unwrap();
        let (mut a, mut a_sc) = (pristine.clone(), pristine_sc.clone());
        let (mut b, mut b_sc) = (pristine.clone(), pristine_sc.clone());
        let ra = c.corrupt_with_sidecar(&mut a, &mut a_sc).unwrap();
        let rb = c.corrupt_with_sidecar(&mut b, &mut b_sc).unwrap();
        assert_eq!((&a, &a_sc, &ra), (&b, &b_sc, &rb));
        assert!(ra.region_count(FileRegion::Parity) > 0, "some flips reach the sidecar");
        assert!(
            ra.flips.len() > ra.region_count(FileRegion::Parity),
            "some flips stay in the checkpoint"
        );
        // Checkpoint-region flips keep the exact corrupt_bytes attribution.
        for f in &ra.flips {
            if f.region != FileRegion::Parity {
                assert!(f.offset < pristine.len());
            } else {
                assert!(f.offset < pristine_sc.len());
            }
        }
    }

    #[test]
    fn parity_region_without_sidecar_is_invalid() {
        let (_, pristine) = sample_v2();
        let mut bytes = pristine.clone();
        let c = RawCorrupter::new(RawConfig::single_flip(Some(FileRegion::Parity), 0)).unwrap();
        assert!(matches!(c.corrupt_bytes(&mut bytes), Err(CorruptError::InvalidConfig(_))));
    }

    #[test]
    fn v1_files_are_rejected() {
        let (f, _) = sample_v2();
        let mut v1 = f.to_bytes();
        let c = RawCorrupter::new(RawConfig::single_flip(None, 0)).unwrap();
        assert!(matches!(c.corrupt_bytes(&mut v1), Err(CorruptError::H5(_))));
    }

    #[test]
    fn empty_payload_region_is_nothing_to_corrupt() {
        let f = H5File::new();
        let mut bytes = f.to_bytes_v2();
        let c = RawCorrupter::new(RawConfig::single_flip(Some(FileRegion::Payload), 0)).unwrap();
        assert!(matches!(c.corrupt_bytes(&mut bytes), Err(CorruptError::NothingToCorrupt)));
    }
}
