//! Checkpoint differencing — the analysis tool behind the paper's
//! Figure 6 ("the propagation was calculated based on the difference
//! between the value of the error-free weights and the same weights of
//! the checkpoint injected with the bit-flips").
//!
//! Compares two structurally identical checkpoints value-by-value and
//! summarizes where and how much they diverge, per dataset and overall.

use crate::error::CorruptError;
use sefi_hdf5::H5File;

/// Per-dataset divergence summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetDiff {
    /// Dataset path.
    pub location: String,
    /// Entries compared.
    pub entries: usize,
    /// Entries whose values differ.
    pub differing: usize,
    /// Largest absolute difference (NaN-affected entries count as
    /// infinite divergence).
    pub max_abs_diff: f64,
    /// Sum of absolute differences over differing entries (f64; NaN/Inf
    /// propagate).
    pub total_abs_diff: f64,
}

/// Whole-file divergence summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointDiff {
    /// Per-dataset rows, in path order, only datasets with differences.
    pub datasets: Vec<DatasetDiff>,
    /// Total entries compared.
    pub entries: usize,
    /// Total differing entries.
    pub differing: usize,
}

impl CheckpointDiff {
    /// True when the files are value-identical.
    pub fn is_identical(&self) -> bool {
        self.differing == 0
    }
}

/// Compare two checkpoints. Errors if their structure (paths, shapes,
/// dtypes) differs — value comparison across different models is
/// meaningless.
pub fn diff_checkpoints(a: &H5File, b: &H5File) -> Result<CheckpointDiff, CorruptError> {
    let pa = a.dataset_paths();
    let pb = b.dataset_paths();
    if pa != pb {
        return Err(CorruptError::InvalidConfig(
            "checkpoints have different dataset sets".to_string(),
        ));
    }
    let mut out = CheckpointDiff::default();
    for path in pa {
        let da = a.dataset(&path)?;
        let db = b.dataset(&path)?;
        if da.shape() != db.shape() || da.dtype() != db.dtype() {
            return Err(CorruptError::InvalidConfig(format!(
                "dataset {path:?} differs in shape or dtype"
            )));
        }
        let mut row = DatasetDiff {
            location: path.clone(),
            entries: da.len(),
            differing: 0,
            max_abs_diff: 0.0,
            total_abs_diff: 0.0,
        };
        for i in 0..da.len() {
            let (x, y) = (da.get_f64(i)?, db.get_f64(i)?);
            let same_bits = da.get_bits(i)? == db.get_bits(i)?;
            if same_bits {
                continue;
            }
            row.differing += 1;
            let d = if x.is_nan() || y.is_nan() { f64::INFINITY } else { (x - y).abs() };
            row.max_abs_diff = row.max_abs_diff.max(d);
            row.total_abs_diff += d;
        }
        out.entries += row.entries;
        out.differing += row.differing;
        if row.differing > 0 {
            out.datasets.push(row);
        }
    }
    Ok(out)
}

/// Like [`diff_checkpoints`] but also returns the finite non-zero absolute
/// differences for distribution analysis (Figure 6's boxplots).
pub fn diff_checkpoint_values(
    a: &H5File,
    b: &H5File,
) -> Result<(CheckpointDiff, Vec<f64>), CorruptError> {
    let summary = diff_checkpoints(a, b)?;
    let mut values = Vec::with_capacity(summary.differing);
    for path in a.dataset_paths() {
        let da = a.dataset(&path)?;
        let db = b.dataset(&path)?;
        for i in 0..da.len() {
            if da.get_bits(i)? != db.get_bits(i)? {
                let (x, y) = (da.get_f64(i)?, db.get_f64(i)?);
                let d = (x - y).abs();
                if d.is_finite() && d > 0.0 {
                    values.push(d);
                }
            }
        }
    }
    Ok((summary, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corrupter, CorrupterConfig};
    use sefi_float::Precision;
    use sefi_hdf5::{Dataset, Dtype};

    fn file() -> H5File {
        let mut f = H5File::new();
        let values: Vec<f32> = (0..50).map(|i| (i as f32) * 0.1 - 2.5).collect();
        f.create_dataset("m/w", Dataset::from_f32(&values, &[50], Dtype::F64).unwrap()).unwrap();
        f.create_dataset("m/b", Dataset::from_f32(&[0.1; 5], &[5], Dtype::F64).unwrap()).unwrap();
        f
    }

    #[test]
    fn identical_files_diff_empty() {
        let f = file();
        let d = diff_checkpoints(&f, &f.clone()).unwrap();
        assert!(d.is_identical());
        assert_eq!(d.entries, 55);
        assert!(d.datasets.is_empty());
    }

    #[test]
    fn injections_show_up_with_exact_counts() {
        let a = file();
        let mut b = a.clone();
        let report = Corrupter::new(CorrupterConfig::bit_flips(7, Precision::Fp64, 2))
            .unwrap()
            .corrupt(&mut b)
            .unwrap();
        let (d, values) = diff_checkpoint_values(&a, &b).unwrap();
        // Each injection flips one bit; collisions can restore a previous
        // flip, so differing ≤ injections.
        assert!(d.differing >= 1 && d.differing <= report.injections as usize);
        assert_eq!(values.len(), d.differing);
        assert!(d.datasets.iter().all(|r| r.max_abs_diff > 0.0));
    }

    #[test]
    fn nan_differences_are_infinite() {
        let a = file();
        let mut b = a.clone();
        b.dataset_mut("m/w").unwrap().set_f64(0, f64::NAN).unwrap();
        let d = diff_checkpoints(&a, &b).unwrap();
        assert_eq!(d.differing, 1);
        assert_eq!(d.datasets[0].max_abs_diff, f64::INFINITY);
        // But the distribution values skip non-finite entries.
        let (_, values) = diff_checkpoint_values(&a, &b).unwrap();
        assert!(values.is_empty());
    }

    #[test]
    fn structural_mismatch_is_an_error() {
        let a = file();
        let mut b = H5File::new();
        b.create_dataset("other", Dataset::zeros(&[3], Dtype::F32)).unwrap();
        assert!(diff_checkpoints(&a, &b).is_err());
        // Same paths, different shape.
        let mut c = H5File::new();
        c.create_dataset("m/w", Dataset::zeros(&[50], Dtype::F32)).unwrap();
        c.create_dataset("m/b", Dataset::zeros(&[5], Dtype::F64)).unwrap();
        assert!(diff_checkpoints(&a, &c).is_err());
    }
}
