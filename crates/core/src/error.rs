//! Corrupter error type.

use sefi_float::Precision;
use std::fmt;

/// Configuration or injection failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptError {
    /// The configuration is self-inconsistent (bad probability, inverted
    /// bit range, oversized mask, …).
    InvalidConfig(String),
    /// A configured location does not exist in the file.
    LocationNotFound(String),
    /// The resolved location list contains no corruptible entries.
    NothingToCorrupt,
    /// A float dataset's stored precision does not match the configured
    /// `float_precision`. Carries the precisions themselves (not widths):
    /// binary16 and bfloat16 are both 16 bits wide but have different
    /// exponent/mantissa splits, so a width alone cannot name the mismatch.
    PrecisionMismatch {
        /// Dataset path.
        location: String,
        /// The dataset's stored precision.
        stored: Precision,
        /// The configured precision.
        configured: Precision,
    },
    /// `allow_NaN_values = false` but the corruption mode kept producing
    /// NaN/Inf after the retry budget.
    NanRetryExhausted {
        /// Dataset path.
        location: String,
        /// Entry index within the dataset.
        index: usize,
    },
    /// Underlying container error.
    H5(String),
    /// Log (de)serialization failure.
    Log(String),
    /// Filesystem failure.
    Io(String),
}

impl fmt::Display for CorruptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptError::InvalidConfig(m) => write!(f, "invalid corrupter config: {m}"),
            CorruptError::LocationNotFound(l) => write!(f, "location {l:?} not found in file"),
            CorruptError::NothingToCorrupt => write!(f, "no corruptible entries in the selected locations"),
            CorruptError::PrecisionMismatch { location, stored, configured } => write!(
                f,
                "dataset {location:?} stores {stored:?} ({}-bit) floats but the corrupter is configured for {configured:?} ({}-bit)",
                stored.width(),
                configured.width()
            ),
            CorruptError::NanRetryExhausted { location, index } => write!(
                f,
                "could not produce a non-NaN corruption at {location:?}[{index}] within the retry budget"
            ),
            CorruptError::H5(m) => write!(f, "checkpoint container error: {m}"),
            CorruptError::Log(m) => write!(f, "injection log error: {m}"),
            CorruptError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for CorruptError {}

impl From<sefi_hdf5::Error> for CorruptError {
    fn from(e: sefi_hdf5::Error) -> Self {
        CorruptError::H5(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_details() {
        let e = CorruptError::PrecisionMismatch {
            location: "predictor/conv1/W".into(),
            stored: Precision::Fp32,
            configured: Precision::Fp64,
        };
        let s = e.to_string();
        assert!(s.contains("predictor/conv1/W") && s.contains("32") && s.contains("64"));
    }

    #[test]
    fn display_distinguishes_the_16_bit_precisions() {
        // binary16 vs bfloat16 share a width; the message must still name
        // which one is which.
        let e = CorruptError::PrecisionMismatch {
            location: "w".into(),
            stored: Precision::Bf16,
            configured: Precision::Fp16,
        };
        let s = e.to_string();
        assert!(s.contains("Bf16") && s.contains("Fp16"), "{s}");
    }
}
