//! Injection reporting: what actually changed in the file.

use sefi_float::{Nev, NevPolicy};
use serde::{Deserialize, Serialize};

/// The concrete action a single injection took.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueChange {
    /// One bit flipped (bit-range mode, or integer corruption).
    BitFlip {
        /// Flipped bit index (0 = LSB).
        bit: u32,
    },
    /// A mask XORed at an offset (bit-mask mode).
    MaskApplied {
        /// Placement offset of the mask's LSB.
        offset: u32,
        /// Number of 1-bits in the mask.
        bits_flipped: u32,
    },
    /// Value multiplied by a factor (scaling-factor mode).
    Scaled {
        /// The factor.
        factor: f64,
    },
}

/// One successful injection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Order of this injection within the run (0-based).
    pub order: u64,
    /// Dataset path that was corrupted.
    pub location: String,
    /// Entry index within the dataset.
    pub entry_index: usize,
    /// What was done.
    pub change: ValueChange,
    /// Value before, widened to f64.
    pub old_value: f64,
    /// Value after, widened to f64.
    pub new_value: f64,
}

/// Summary of a corruption run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InjectionReport {
    /// Injection attempts made (the configured amount).
    pub attempts: u64,
    /// Attempts that passed the probability gate and changed a value.
    pub injections: u64,
    /// Attempts skipped by the probability gate.
    pub skipped: u64,
    /// Attempts redrawn before a value change stuck: float candidates
    /// rejected by NaN avoidance, and integer flips rejected because the
    /// flipped magnitude would overflow (the `|i64::MIN|` edge).
    pub nan_redraws: u64,
    /// Every successful injection, in order.
    pub records: Vec<InjectionRecord>,
}

impl InjectionReport {
    /// Count how many injected values are N-EV under a policy — the
    /// quantity behind the paper's Tables IV, VI and VII.
    pub fn nev_count(&self, policy: &NevPolicy) -> usize {
        self.records.iter().filter(|r| policy.classify_f64(r.new_value).is_some()).count()
    }

    /// True if any injected value is an N-EV.
    pub fn produced_nev(&self, policy: &NevPolicy) -> bool {
        self.records.iter().any(|r| policy.classify_f64(r.new_value).is_some())
    }

    /// N-EV classifications per record (None = benign).
    pub fn nev_kinds(&self, policy: &NevPolicy) -> Vec<Option<Nev>> {
        self.records.iter().map(|r| policy.classify_f64(r.new_value)).collect()
    }

    /// Distinct locations touched.
    pub fn locations_touched(&self) -> Vec<&str> {
        let mut locs: Vec<&str> = self.records.iter().map(|r| r.location.as_str()).collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }
}

// ------------------------------------------------------- raw (file-level)

/// Structural region of a sectioned (v2) checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileRegion {
    /// The fixed 24-byte header: magic, version, index length, index CRC.
    Superblock,
    /// The dataset index table (paths, dtypes, shapes, offsets, lengths,
    /// per-section CRCs, group attributes).
    Index,
    /// Raw dataset bytes.
    Payload,
    /// The ECC parity sidecar file accompanying the checkpoint (only
    /// reachable through [`crate::RawCorrupter::corrupt_with_sidecar`]).
    Parity,
}

impl FileRegion {
    /// Stable lowercase label for tables and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            FileRegion::Superblock => "superblock",
            FileRegion::Index => "index",
            FileRegion::Payload => "payload",
            FileRegion::Parity => "parity",
        }
    }
}

/// The (dataset, entry, bit) a payload flip resolves to through the index.
/// For [`FileRegion::Parity`] hits the mapping goes through the sidecar
/// instead: `dataset` is the protected section's path, `entry_index` the
/// 64-bit *code-word* index, and `bit` the flipped bit of the parity byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawTarget {
    /// Dataset path whose section contains the flipped byte.
    pub dataset: String,
    /// Entry index within the dataset (byte offset / element width).
    pub entry_index: usize,
    /// Bit position within the entry's little-endian value (0 = LSB).
    pub bit: u32,
}

/// One bit flipped directly in file bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawFlipRecord {
    /// Order of this flip within the run (0-based).
    pub order: u64,
    /// Absolute byte offset in the file.
    pub offset: usize,
    /// Flipped bit within that byte (0 = LSB).
    pub bit_in_byte: u8,
    /// Which structural region the offset landed in.
    pub region: FileRegion,
    /// For payload hits, the (dataset, entry, bit) mapping recovered from
    /// the index; `None` for out-of-band (superblock/index/checksum) hits.
    pub target: Option<RawTarget>,
}

/// Summary of a raw byte-level corruption run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawReport {
    /// Every flip, in order.
    pub flips: Vec<RawFlipRecord>,
}

impl RawReport {
    /// Number of flips that landed in a region.
    pub fn region_count(&self, region: FileRegion) -> usize {
        self.flips.iter().filter(|f| f.region == region).count()
    }

    /// Distinct dataset paths hit through the payload.
    pub fn datasets_hit(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .flips
            .iter()
            .filter_map(|f| f.target.as_ref().map(|t| t.dataset.as_str()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(order: u64, loc: &str, new_value: f64) -> InjectionRecord {
        InjectionRecord {
            order,
            location: loc.to_string(),
            entry_index: 0,
            change: ValueChange::BitFlip { bit: 3 },
            old_value: 1.0,
            new_value,
        }
    }

    #[test]
    fn nev_counting() {
        let report = InjectionReport {
            attempts: 3,
            injections: 3,
            skipped: 0,
            nan_redraws: 0,
            records: vec![
                record(0, "a/w", 2.0),
                record(1, "a/w", f64::NAN),
                record(2, "b/w", 1e308),
            ],
        };
        let p = NevPolicy::default();
        assert_eq!(report.nev_count(&p), 2);
        assert!(report.produced_nev(&p));
        assert_eq!(report.locations_touched(), vec!["a/w", "b/w"]);
        let kinds = report.nev_kinds(&p);
        assert_eq!(kinds[0], None);
        assert_eq!(kinds[1], Some(Nev::NaN));
        assert_eq!(kinds[2], Some(Nev::Extreme));
    }

    #[test]
    fn report_serializes_to_json() {
        let report = InjectionReport {
            attempts: 1,
            injections: 1,
            skipped: 0,
            nan_redraws: 2,
            records: vec![record(0, "x", 5.0)],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: InjectionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.nan_redraws, 2);
    }
}
