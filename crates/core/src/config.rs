//! Corrupter configuration — Table I of the paper, as a typed struct —
//! plus the raw byte-level injector's config.

use crate::error::CorruptError;
use crate::report::FileRegion;
use sefi_float::{BitMask, BitRange, Precision};

/// How many injection attempts to make (Table I: `injection_type` +
/// `injection_attempts`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionAmount {
    /// A fixed number of attempts.
    Count(u64),
    /// A percentage (0–100) of the corruptible entries in the selected
    /// locations. The paper counts entries as "the numerical values of all
    /// the objects in the file; in dataset objects, the product of their
    /// dimensions".
    Percentage(f64),
}

/// What each successful injection does to the value (Table I:
/// `corruption_mode`).
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptionMode {
    /// XOR a multi-bit pattern at a random placement offset in
    /// `[0, precision − mask_len]` (paper: zeros padded to both sides).
    BitMask(BitMask),
    /// Flip one uniformly chosen bit inside `[first_bit, last_bit]`.
    BitRange(BitRange),
    /// Multiply the value by a factor (Section VI-3's "dramatic
    /// corruption" mode).
    ScalingFactor(f64),
}

/// Which objects to corrupt (Table I: `locations_to_corrupt` /
/// `use_random_locations`).
#[derive(Debug, Clone, PartialEq)]
pub enum LocationSelection {
    /// Use all object paths in the file ("pick a random location every
    /// time").
    AllRandom,
    /// An explicit list; groups expand to "all sublocations inside".
    Listed(Vec<String>),
}

/// The full injector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrupterConfig {
    /// Probability that each injection attempt actually fires.
    pub injection_probability: f64,
    /// How many attempts.
    pub amount: InjectionAmount,
    /// Expected float storage width; float datasets of any other width are
    /// rejected (the original tool interprets raw values at this width, so
    /// a mismatch would silently corrupt the wrong bits — we make it loud).
    /// Integer datasets are exempt and use Python-`bin()` semantics.
    pub float_precision: Precision,
    /// What a successful injection does.
    pub mode: CorruptionMode,
    /// When false, corruptions that would produce NaN/Inf are redrawn
    /// ("a new corruption attempt is performed until a valid value is
    /// obtained").
    pub allow_nan_values: bool,
    /// Which objects are eligible.
    pub locations: LocationSelection,
    /// Seed for the injector's private random stream. Same seed + same
    /// config + same file ⇒ identical corruption.
    pub seed: u64,
}

impl CorrupterConfig {
    /// A baseline config matching the paper's most common experiment:
    /// `n` single-bit flips anywhere in the value except the exponent MSB
    /// (Section V-C: "we omit the most significant bit of the exponent"),
    /// 64-bit floats, NaN suppressed by redraw.
    pub fn bit_flips(n: u64, precision: Precision, seed: u64) -> Self {
        CorrupterConfig {
            injection_probability: 1.0,
            amount: InjectionAmount::Count(n),
            float_precision: precision,
            mode: CorruptionMode::BitRange(BitRange::below_exponent_msb(precision)),
            allow_nan_values: false,
            locations: LocationSelection::AllRandom,
            seed,
        }
    }

    /// Like [`CorrupterConfig::bit_flips`] but over the full bit range,
    /// sign and exponent MSB included, with NaN/Inf allowed — the Table IV
    /// N-EV incidence setting.
    pub fn bit_flips_full_range(n: u64, precision: Precision, seed: u64) -> Self {
        CorrupterConfig {
            mode: CorruptionMode::BitRange(BitRange::full(precision)),
            allow_nan_values: true,
            ..Self::bit_flips(n, precision, seed)
        }
    }

    /// Validate internal consistency. Called by
    /// [`crate::Corrupter::new`]; exposed for config-building code.
    pub fn validate(&self) -> Result<(), CorruptError> {
        if !(0.0..=1.0).contains(&self.injection_probability) {
            return Err(CorruptError::InvalidConfig(format!(
                "injection_probability {} outside [0, 1]",
                self.injection_probability
            )));
        }
        match self.amount {
            InjectionAmount::Percentage(p) if !(0.0..=100.0).contains(&p) => {
                return Err(CorruptError::InvalidConfig(format!(
                    "percentage {p} outside [0, 100]"
                )));
            }
            _ => {}
        }
        match &self.mode {
            CorruptionMode::BitRange(r) => {
                r.validate(self.float_precision).map_err(CorruptError::InvalidConfig)?
            }
            CorruptionMode::BitMask(m) => {
                m.max_offset(self.float_precision).map_err(CorruptError::InvalidConfig)?;
            }
            CorruptionMode::ScalingFactor(f) => {
                if !f.is_finite() {
                    return Err(CorruptError::InvalidConfig(format!(
                        "scaling factor {f} is not finite"
                    )));
                }
            }
        }
        if let LocationSelection::Listed(locs) = &self.locations {
            if locs.is_empty() {
                return Err(CorruptError::InvalidConfig(
                    "locations_to_corrupt is empty".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Check one eligible dataset's stored precision against the configured
    /// `float_precision`. `stored` is `None` for integer (and quantized)
    /// datasets, which are exempt — they use Python-`bin()` semantics
    /// regardless of the configured float width.
    ///
    /// The injector calls this for *every* eligible location before the
    /// first injection fires: a mismatch (e.g. `Fp32` configured against an
    /// f16, bf16 or f64 dataset) is a loud upfront error, never a silent
    /// bit-position truncation, and never a partially corrupted file
    /// abandoned behind a mid-run error.
    pub fn check_precision(
        &self,
        location: &str,
        stored: Option<Precision>,
    ) -> Result<(), CorruptError> {
        match stored {
            Some(p) if p != self.float_precision => Err(CorruptError::PrecisionMismatch {
                location: location.to_string(),
                stored: p,
                configured: self.float_precision,
            }),
            _ => Ok(()),
        }
    }
}

/// Configuration for [`crate::RawCorrupter`] — the storage-layer injector
/// that flips bits in *file bytes* rather than in decoded values.
///
/// Where [`CorrupterConfig`] models the paper's value-level tool (it can
/// only ever hit numeric entries), the raw injector models the physical
/// fault: any byte of the file — superblock, index, checksum, or payload —
/// is fair game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawConfig {
    /// Number of single-bit flips to perform.
    pub flips: u64,
    /// Restrict flips to one structural region of the v2 file, or `None`
    /// to draw uniformly over the whole file.
    pub region: Option<FileRegion>,
    /// Seed for the injector's private random stream. Same seed + same
    /// config + same bytes ⇒ identical flips.
    pub seed: u64,
}

impl RawConfig {
    /// A single uniformly placed flip — the storage experiment's per-trial
    /// setting.
    pub fn single_flip(region: Option<FileRegion>, seed: u64) -> Self {
        RawConfig { flips: 1, region, seed }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), CorruptError> {
        if self.flips == 0 {
            return Err(CorruptError::InvalidConfig("raw flip count is zero".to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_config_validates() {
        RawConfig::single_flip(None, 7).validate().unwrap();
        RawConfig { flips: 100, region: Some(FileRegion::Payload), seed: 0 }.validate().unwrap();
        assert!(RawConfig { flips: 0, region: None, seed: 0 }.validate().is_err());
    }

    #[test]
    fn presets_validate() {
        for p in [Precision::Fp16, Precision::Fp32, Precision::Fp64] {
            CorrupterConfig::bit_flips(10, p, 0).validate().unwrap();
            CorrupterConfig::bit_flips_full_range(1000, p, 0).validate().unwrap();
        }
    }

    #[test]
    fn preset_excludes_exponent_msb() {
        let c = CorrupterConfig::bit_flips(1, Precision::Fp64, 0);
        match c.mode {
            CorruptionMode::BitRange(r) => {
                assert!(!r.contains(62));
                assert!(r.contains(61));
                assert!(r.contains(0));
            }
            _ => panic!("expected bit range"),
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp64, 0);
        c.injection_probability = 1.5;
        assert!(c.validate().is_err());

        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp64, 0);
        c.amount = InjectionAmount::Percentage(101.0);
        assert!(c.validate().is_err());

        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp16, 0);
        c.mode = CorruptionMode::BitRange(BitRange { first_bit: 0, last_bit: 40 });
        assert!(c.validate().is_err());

        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp16, 0);
        c.mode = CorruptionMode::BitMask(BitMask::parse(&"1".repeat(20)).unwrap());
        assert!(c.validate().is_err());

        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp64, 0);
        c.mode = CorruptionMode::ScalingFactor(f64::INFINITY);
        assert!(c.validate().is_err());

        let mut c = CorrupterConfig::bit_flips(1, Precision::Fp64, 0);
        c.locations = LocationSelection::Listed(vec![]);
        assert!(c.validate().is_err());
    }
}
