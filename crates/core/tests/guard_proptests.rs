//! Property tests for the N-EV guard: after a Zero-repair scrub, no file
//! can contain an N-EV, whatever was done to it first.

use proptest::prelude::*;
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, NevGuard, RepairPolicy};
use sefi_float::{BitRange, NevPolicy, Precision};
use sefi_hdf5::{Dataset, Dtype, H5File};

fn file(values: &[f32], precision: Precision) -> H5File {
    let mut f = H5File::new();
    f.create_dataset(
        "w",
        Dataset::from_f32(values, &[values.len()], Dtype::from_precision(precision)).unwrap(),
    )
    .unwrap();
    f
}

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::Fp16), Just(Precision::Fp32), Just(Precision::Fp64),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scrub(corrupt(x)) never contains an N-EV, for any corruption.
    #[test]
    fn zero_repair_is_a_total_sanitizer(
        precision in any_precision(),
        values in prop::collection::vec(-100.0f32..100.0, 4..32),
        flips in 0u64..64,
        seed in any::<u64>(),
    ) {
        let mut f = file(&values, precision);
        if flips > 0 {
            let mut cfg = CorrupterConfig::bit_flips_full_range(flips, precision, seed);
            cfg.mode = CorruptionMode::BitRange(BitRange::full(precision));
            Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        }
        NevGuard::default_repair().scrub(&mut f);
        let policy = NevPolicy::default();
        let ds = f.dataset("w").unwrap();
        for i in 0..ds.len() {
            let v = ds.get_f64(i).unwrap();
            prop_assert!(policy.classify_f64(v).is_none(), "w[{i}] = {v}");
        }
    }

    /// Scrubbing is idempotent: a second scrub finds nothing.
    #[test]
    fn scrub_is_idempotent(
        precision in any_precision(),
        values in prop::collection::vec(-10.0f32..10.0, 4..16),
        seed in any::<u64>(),
    ) {
        let mut f = file(&values, precision);
        let cfg = CorrupterConfig::bit_flips_full_range(20, precision, seed);
        Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        NevGuard::default_repair().scrub(&mut f);
        let second = NevGuard::default_repair().scrub(&mut f);
        prop_assert!(second.is_clean());
    }

    /// Detect-only never modifies the file.
    #[test]
    fn detect_only_is_read_only(
        values in prop::collection::vec(-10.0f32..10.0, 4..16),
        seed in any::<u64>(),
    ) {
        let mut f = file(&values, Precision::Fp64);
        Corrupter::new(CorrupterConfig::bit_flips_full_range(10, Precision::Fp64, seed))
            .unwrap()
            .corrupt(&mut f)
            .unwrap();
        let before = f.to_bytes();
        NevGuard::new(NevPolicy::default(), RepairPolicy::DetectOnly).scrub(&mut f);
        prop_assert_eq!(f.to_bytes(), before);
    }
}
