//! Property-based tests for the corrupter's contracts.

use proptest::prelude::*;
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use sefi_float::{BitMask, BitRange, Precision};
use sefi_hdf5::{Dataset, Dtype, H5File};

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::Fp16), Just(Precision::Fp32), Just(Precision::Fp64),]
}

fn file_for(precision: Precision, values: &[f32]) -> H5File {
    let dtype = Dtype::from_precision(precision);
    let mut f = H5File::new();
    f.create_dataset("w/a", Dataset::from_f32(values, &[values.len()], dtype).unwrap()).unwrap();
    f.create_dataset("w/b", Dataset::from_f32(values, &[values.len()], dtype).unwrap()).unwrap();
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count mode with probability 1 injects exactly n times, and every
    /// record's location/index is valid.
    #[test]
    fn count_mode_exact(
        precision in any_precision(),
        n in 0u64..64,
        seed in any::<u64>(),
        values in prop::collection::vec(-100.0f32..100.0, 4..32),
    ) {
        let mut f = file_for(precision, &values);
        let cfg = CorrupterConfig::bit_flips(n, precision, seed);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        prop_assert_eq!(report.attempts, n);
        prop_assert_eq!(report.injections, n);
        prop_assert_eq!(report.records.len() as u64, n);
        for r in &report.records {
            prop_assert!(r.entry_index < values.len());
            prop_assert!(r.location == "w/a" || r.location == "w/b");
        }
    }

    /// With NaN disallowed, the corrupted file never contains NaN/Inf,
    /// whatever the mode.
    #[test]
    fn nan_avoidance_holds_for_all_modes(
        precision in any_precision(),
        seed in any::<u64>(),
        mode_pick in 0usize..3,
        values in prop::collection::vec(-10.0f32..10.0, 4..16),
    ) {
        let mode = match mode_pick {
            0 => CorruptionMode::BitRange(BitRange::full(precision)),
            1 => CorruptionMode::BitMask(BitMask::parse("1011").unwrap()),
            _ => CorruptionMode::ScalingFactor(3.5),
        };
        let mut cfg = CorrupterConfig::bit_flips(32, precision, seed);
        cfg.mode = mode;
        cfg.allow_nan_values = false;
        let mut f = file_for(precision, &values);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f);
        // ScalingFactor on f16 can overflow to Inf deterministically and
        // exhaust the retry budget only if EVERY draw overflows; with
        // |v| <= 10 and factor 3.5, f16 max 65504 is safe. So it succeeds.
        let report = report.unwrap();
        prop_assert_eq!(report.injections, 32);
        for p in f.dataset_paths() {
            let ds = f.dataset(&p).unwrap();
            for i in 0..ds.len() {
                let v = ds.get_f64(i).unwrap();
                prop_assert!(v.is_finite(), "{p}[{i}] = {v}");
            }
        }
    }

    /// Restricting the bit range to the mantissa bounds the relative error:
    /// a mantissa flip changes the value by strictly less than a factor of 2.
    #[test]
    fn mantissa_flips_are_bounded(
        seed in any::<u64>(),
        values in prop::collection::vec(0.1f32..100.0, 4..16),
    ) {
        let precision = Precision::Fp64;
        let mut cfg = CorrupterConfig::bit_flips(16, precision, seed);
        cfg.mode = CorruptionMode::BitRange(BitRange::mantissa_only(precision));
        let mut f = file_for(precision, &values);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            // Mantissa flips keep the exponent: ratio within (1/2, 2).
            prop_assert!(r.new_value != 0.0);
            let ratio = (r.new_value / r.old_value).abs();
            prop_assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
        }
    }

    /// A bit flip recorded as bit k really differs from the old value in
    /// exactly bit k (verified via the IEEE bit patterns of the recorded
    /// old/new values).
    #[test]
    fn recorded_flip_matches_bit_arithmetic(
        precision in any_precision(),
        seed in any::<u64>(),
        values in prop::collection::vec(-50.0f32..50.0, 4..16),
    ) {
        let mut cfg = CorrupterConfig::bit_flips(8, precision, seed);
        cfg.allow_nan_values = true;
        cfg.mode = CorruptionMode::BitRange(BitRange::full(precision));
        let mut f = file_for(precision, &values);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        for r in &report.records {
            if let sefi_core::ValueChange::BitFlip { bit } = r.change {
                let old_bits = sefi_float::FpValue::from_f64(precision, r.old_value).to_bits();
                let new_bits = sefi_float::FpValue::from_f64(precision, r.new_value).to_bits();
                // NaNs canonicalize differently through f64, so only check
                // when both ends are finite (and thus round-trip exactly).
                if r.old_value.is_finite() && r.new_value.is_finite() {
                    prop_assert_eq!(old_bits ^ new_bits, 1u64 << bit);
                }
            }
        }
    }

    /// Percentage accounting: attempts == round(p% of entries in scope).
    #[test]
    fn percentage_accounting(
        pct in 0.0f64..100.0,
        len in 4usize..40,
        seed in any::<u64>(),
    ) {
        let values: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let mut f = file_for(Precision::Fp32, &values);
        let mut cfg = CorrupterConfig::bit_flips(0, Precision::Fp32, seed);
        cfg.amount = InjectionAmount::Percentage(pct);
        cfg.locations = LocationSelection::Listed(vec!["w/a".to_string()]);
        let report = Corrupter::new(cfg).unwrap().corrupt(&mut f).unwrap();
        prop_assert_eq!(report.attempts, ((len as f64) * pct / 100.0).round() as u64);
    }
}
