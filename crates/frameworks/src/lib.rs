//! The three deep-learning framework frontends: Chainer, PyTorch, and
//! TensorFlow personalities over the shared `sefi-nn` engine.
//!
//! The paper's methodology is framework-agnostic *because* each framework
//! writes a different HDF5 checkpoint for the same model: "the paths
//! `chpt_ch_vgg_e_5.h5/predictor/conv1_1` and
//! `chpt_tf_vgg_e_5.h5/model_weights/_block1_conv1` represent the first
//! convolutional layer of model VGG using frameworks Chainer and
//! TensorFlow" (Section IV-C). This crate reproduces exactly those
//! differences — and nothing else:
//!
//! | personality | checkpoint layout | kernel memory layout |
//! |---|---|---|
//! | Chainer | `predictor/<layer>/W`, BN stats as `avg_mean`/`avg_var` | OIHW, dense `[out, in]` |
//! | PyTorch | flat `state_dict/<module>.weight` dotted keys | OIHW, dense `[out, in]` |
//! | TensorFlow | `model_weights/<layer>/kernel` | **HWIO**, dense `[in, out]` (transposed) |
//!
//! Because all three share one numeric engine, a given seed produces the
//! same logical weights everywhere; what differs is where and in what
//! byte order those weights live in the checkpoint file. That is the
//! precise setting of the paper's *equivalent injection* experiments
//! (same logical location, different file representation).

#![deny(missing_docs)]

mod checkpoint;
mod kind;
mod mapping;
mod replica;
mod session;

pub use checkpoint::{
    load_checkpoint, load_checkpoint_bytes, load_checkpoint_bytes_ecc, save_checkpoint,
    CheckpointLoad,
};
pub use kind::FrameworkKind;
pub use mapping::{
    engine_to_file_path, file_layer_location, tensor_from_file_layout, tensor_to_file_layout,
};
pub use replica::{ReloadReport, Replica};
pub use session::{Session, SessionConfig};
