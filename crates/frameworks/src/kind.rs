//! Framework identifiers.

/// Which framework personality a session uses (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkKind {
    /// Chainer: `snapshot` extension, `save_hdf5()` serialization.
    Chainer,
    /// PyTorch: pickle-native; HDF5 via the paper's own `Ckpt_Py_HDF5` tool.
    PyTorch,
    /// TensorFlow: `ModelCheckpoint()` callback with an `.h5` filename.
    TensorFlow,
}

impl FrameworkKind {
    /// Lower-case identifier used in checkpoint filenames and tables.
    pub fn id(self) -> &'static str {
        match self {
            FrameworkKind::Chainer => "chainer",
            FrameworkKind::PyTorch => "pytorch",
            FrameworkKind::TensorFlow => "tensorflow",
        }
    }

    /// Display name as printed in the paper's tables.
    pub fn display(self) -> &'static str {
        match self {
            FrameworkKind::Chainer => "Chainer",
            FrameworkKind::PyTorch => "PyTorch",
            FrameworkKind::TensorFlow => "TensorFlow",
        }
    }

    /// All three, in the paper's column order.
    pub fn all() -> [FrameworkKind; 3] {
        [FrameworkKind::Chainer, FrameworkKind::PyTorch, FrameworkKind::TensorFlow]
    }

    /// The root group of this framework's checkpoints.
    pub fn root_group(self) -> &'static str {
        match self {
            FrameworkKind::Chainer => "predictor",
            FrameworkKind::PyTorch => "state_dict",
            FrameworkKind::TensorFlow => "model_weights",
        }
    }

    /// Where this framework stores the epoch counter in a checkpoint.
    pub fn epoch_path(self) -> &'static str {
        match self {
            FrameworkKind::Chainer => "updater/epoch",
            FrameworkKind::PyTorch => "meta/epoch",
            FrameworkKind::TensorFlow => "optimizer_weights/epoch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_roots_are_distinct() {
        let kinds = FrameworkKind::all();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_ne!(kinds[i].id(), kinds[j].id());
                assert_ne!(kinds[i].root_group(), kinds[j].root_group());
                assert_ne!(kinds[i].epoch_path(), kinds[j].epoch_path());
            }
        }
    }
}
