//! Serving replicas: trusting checkpoint loads with targeted hot reload.
//!
//! A serving replica deliberately loads its checkpoint *without* integrity
//! verification ([`sefi_hdf5::H5File::from_bytes_unverified`]) — the
//! paper's unprotected-framework baseline, where a flipped bit in the file
//! flows straight into the weights. Detection happens later, at runtime,
//! when an activation-envelope guard trips; this module then provides the
//! recovery half: re-read *only the implicated datasets* through the
//! verified v2 reader with ECC escalation
//! ([`sefi_hdf5::IndexedFile::dataset_correct_or_zero`]), so a quarantined
//! replica returns to service without a full model reload when the damage
//! is localized.

use crate::checkpoint::load_checkpoint;
use crate::kind::FrameworkKind;
use crate::mapping::{engine_to_file_path, tensor_from_file_layout};
use sefi_hdf5::{EccSidecar, H5File, IndexedFile, SectionRecovery};
use sefi_models::{build, ModelConfig, ModelKind};
use sefi_nn::{Network, StateDict};
use sefi_rng::DetRng;
use std::path::{Path, PathBuf};

/// What a targeted reload did per escalation tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Datasets re-read from the file (all tiers).
    pub reloaded: usize,
    /// Datasets whose stored bytes failed CRC and were repaired by the ECC
    /// sidecar (exact restoration).
    pub corrected: usize,
    /// Datasets unrecoverable even through ECC, loaded as zeros.
    pub zero_filled: usize,
}

impl ReloadReport {
    fn absorb(&mut self, r: SectionRecovery) {
        self.reloaded += 1;
        match r {
            SectionRecovery::Clean => {}
            SectionRecovery::Corrected { .. } => self.corrected += 1,
            SectionRecovery::ZeroFilled => self.zero_filled += 1,
        }
    }
}

/// One serving replica: a live network plus the provenance needed to
/// re-read any of its tensors from the checkpoint file on demand.
pub struct Replica {
    fw: FrameworkKind,
    net: Network,
    path: PathBuf,
    sidecar: Option<EccSidecar>,
}

impl Replica {
    /// Load a replica the way an unprotected serving stack does: read the
    /// checkpoint bytes, decode without CRC verification, and install the
    /// weights as-is. File corruption (if any) silently enters the model —
    /// exactly the condition the runtime guards exist to catch.
    pub fn load_trusting(
        fw: FrameworkKind,
        model: ModelKind,
        config: ModelConfig,
        path: impl AsRef<Path>,
        sidecar: Option<EccSidecar>,
    ) -> Result<Self, String> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
        let file =
            H5File::from_bytes_unverified(&bytes).map_err(|e| format!("decoding {path:?}: {e}"))?;
        // Replica identity is the checkpoint, not the init: any seed works.
        let (mut net, _) = build(model, config, &mut DetRng::new(0));
        load_checkpoint(fw, &mut net, &file)?;
        Ok(Replica { fw, net, path, sidecar })
    }

    /// The live network.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Framework personality this replica's checkpoint uses.
    pub fn framework(&self) -> FrameworkKind {
        self.fw
    }

    /// Checkpoint file backing this replica.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Engine-side dataset paths (`layer/param`) belonging to one layer —
    /// the reload unit when a guard localizes a trip to a layer.
    pub fn layer_datasets(&mut self, engine_layer: &str) -> Vec<String> {
        let prefix = format!("{engine_layer}/");
        self.net
            .state_dict()
            .entries()
            .iter()
            .filter(|e| e.path.starts_with(&prefix))
            .map(|e| e.path.clone())
            .collect()
    }

    /// All engine-side dataset paths, for a full reload.
    pub fn all_datasets(&mut self) -> Vec<String> {
        self.net.state_dict().entries().iter().map(|e| e.path.clone()).collect()
    }

    /// Re-read the given engine-side datasets from the checkpoint file
    /// through the verified v2 reader, escalating per dataset:
    /// clean → ECC-corrected → zero-filled. In-memory corruption (weights
    /// flipped after load, or a trusting load of a file whose damage the
    /// ECC can undo) is healed by the re-read; unrecoverable file damage is
    /// zeroed rather than served. Untouched tensors keep their current
    /// values.
    pub fn reload_datasets(&mut self, engine_paths: &[String]) -> Result<ReloadReport, String> {
        let mut ixf = IndexedFile::open(&self.path)
            .map_err(|e| format!("opening {:?} for reload: {e}", self.path))?;
        if let Some(sc) = &self.sidecar {
            ixf.attach_sidecar(sc.clone())
                .map_err(|e| format!("attaching sidecar for {:?}: {e}", self.path))?;
        }
        let mut report = ReloadReport::default();
        let sd = self.net.state_dict();
        let mut new_sd = StateDict::new();
        for entry in sd.entries() {
            if !engine_paths.contains(&entry.path) {
                new_sd.push(entry.path.clone(), entry.tensor.clone(), entry.trainable);
                continue;
            }
            let file_path = engine_to_file_path(self.fw, &entry.path);
            let (ds, recovery) = ixf
                .dataset_correct_or_zero(&file_path)
                .map_err(|e| format!("reloading {:?}: {e}", entry.path))?;
            if ds.len() != entry.tensor.len() {
                return Err(format!(
                    "reloaded tensor {file_path:?} has {} entries, network expects {}",
                    ds.len(),
                    entry.tensor.len()
                ));
            }
            report.absorb(recovery);
            let stored = ds.to_f32_vec();
            let t = tensor_from_file_layout(self.fw, &entry.path, entry.tensor.shape(), &stored);
            new_sd.push(entry.path.clone(), t, entry.trainable);
        }
        self.net.load_state_dict(&new_sd)?;
        Ok(report)
    }

    /// Re-read every tensor ([`Replica::reload_datasets`] over all paths).
    pub fn reload_all(&mut self) -> Result<ReloadReport, String> {
        let all = self.all_datasets();
        self.reload_datasets(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_checkpoint;
    use sefi_hdf5::{Dtype, FileIndex};
    use sefi_models::ModelKind;
    use sefi_tensor::Tensor;

    fn test_dir(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sefi-replica-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg() -> ModelConfig {
        ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 }
    }

    fn write_checkpoint(dir: &Path) -> (PathBuf, EccSidecar, Vec<f32>) {
        let (mut net, _) = build(ModelKind::AlexNet, cfg(), &mut DetRng::new(5));
        let file = save_checkpoint(FrameworkKind::Chainer, &mut net, 3, Dtype::F32);
        let bytes = file.to_bytes_v2();
        let sidecar = EccSidecar::protect(&bytes).unwrap();
        let p = dir.join("ckpt.h5");
        std::fs::write(&p, &bytes).unwrap();
        let logits = net.forward(Tensor::full(&[1, 3, 16, 16], 0.25), false);
        (p, sidecar, logits.data().to_vec())
    }

    fn load(p: &Path, sidecar: Option<EccSidecar>) -> Replica {
        Replica::load_trusting(FrameworkKind::Chainer, ModelKind::AlexNet, cfg(), p, sidecar)
            .unwrap()
    }

    #[test]
    fn trusting_load_matches_clean_checkpoint() {
        let dir = test_dir("clean");
        let (p, sc, clean) = write_checkpoint(&dir);
        let mut r = load(&p, Some(sc));
        let got = r.net_mut().forward(Tensor::full(&[1, 3, 16, 16], 0.25), false);
        assert_eq!(got.data(), &clean[..]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn targeted_reload_heals_in_memory_corruption() {
        let dir = test_dir("mem");
        let (p, sc, clean) = write_checkpoint(&dir);
        let mut r = load(&p, Some(sc));
        {
            let params = &mut r.net_mut().params_mut()[0];
            let w = params.value.data_mut();
            w[0] = f32::from_bits(w[0].to_bits() ^ (1 << 30));
        }
        let layer = r.net_mut().layer_names()[0].to_string();
        let targets = r.layer_datasets(&layer);
        assert!(!targets.is_empty());
        let report = r.reload_datasets(&targets).unwrap();
        assert_eq!(report.reloaded, targets.len());
        assert_eq!((report.corrected, report.zero_filled), (0, 0), "file itself is clean");
        let got = r.net_mut().forward(Tensor::full(&[1, 3, 16, 16], 0.25), false);
        assert_eq!(got.data(), &clean[..]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reload_corrects_single_bit_file_flip_via_sidecar() {
        let dir = test_dir("eccfix");
        let (p, sc, clean) = write_checkpoint(&dir);
        // Flip one payload bit of the first conv kernel *in the file*.
        let mut bytes = std::fs::read(&p).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        let entry = index
            .entries()
            .iter()
            .find(|e| e.path == "predictor/conv1/W")
            .expect("chainer conv kernel path")
            .clone();
        // Pick a *positive* element so the blown-up activation is not
        // masked by the following ReLU (the paper's masking effect).
        let i = (0..entry.byte_len / 4)
            .find(|i| {
                let off = entry.offset + 4 * i;
                f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) > 0.0
            })
            .expect("some conv weight is positive");
        bytes[entry.offset + 4 * i + 3] ^= 0x40; // exponent MSB of that f32
        std::fs::write(&p, &bytes).unwrap();
        // Trusting load swallows the corruption...
        let mut r = load(&p, Some(sc));
        let sick = r.net_mut().forward(Tensor::full(&[1, 3, 16, 16], 0.25), false);
        assert_ne!(sick.data(), &clean[..], "flip must actually perturb the model");
        // ...and the targeted reload repairs it through ECC.
        let targets = r.layer_datasets("conv1");
        let report = r.reload_datasets(&targets).unwrap();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.zero_filled, 0);
        let got = r.net_mut().forward(Tensor::full(&[1, 3, 16, 16], 0.25), false);
        assert_eq!(got.data(), &clean[..]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unrecoverable_damage_zero_fills_instead_of_serving_garbage() {
        let dir = test_dir("zero");
        let (p, sc, _) = write_checkpoint(&dir);
        let mut bytes = std::fs::read(&p).unwrap();
        let index = FileIndex::parse(&bytes).unwrap();
        let entry = index.entries().iter().find(|e| e.path == "predictor/conv1/b").unwrap().clone();
        // Two flips in one 64-bit ECC word: beyond SEC-DED.
        bytes[entry.offset] ^= 0x01;
        bytes[entry.offset + 1] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        let mut r = load(&p, Some(sc));
        let targets = r.layer_datasets("conv1");
        let report = r.reload_datasets(&targets).unwrap();
        assert_eq!(report.zero_filled, 1);
        let sd = r.net_mut().state_dict();
        let bias = &sd.entries().iter().find(|e| e.path == "conv1/b").unwrap().tensor;
        assert!(bias.data().iter().all(|&v| v == 0.0));
        std::fs::remove_dir_all(dir).ok();
    }
}
