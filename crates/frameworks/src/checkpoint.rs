//! Checkpoint save/load per framework personality.

use crate::kind::FrameworkKind;
use crate::mapping::{engine_to_file_path, tensor_from_file_layout, tensor_to_file_layout};
use sefi_hdf5::{Attr, Dataset, Dtype, H5File};
use sefi_nn::Network;

/// Serialize a network into this framework's checkpoint layout at the given
/// storage dtype (the paper's 16/32/64-bit precision studies select this).
pub fn save_checkpoint(fw: FrameworkKind, net: &mut Network, epoch: usize, dtype: Dtype) -> H5File {
    assert!(dtype.is_float(), "checkpoint weight dtype must be a float type");
    let mut file = H5File::new();
    let sd = net.state_dict();
    for entry in sd.entries() {
        let path = engine_to_file_path(fw, &entry.path);
        let (shape, data) = tensor_to_file_layout(fw, &entry.path, &entry.tensor);
        let ds = Dataset::from_f32(&data, &shape, dtype)
            .expect("state-dict tensors are shape-consistent");
        file.create_dataset(&path, ds).expect("state-dict paths are unique");
    }
    file.create_dataset(fw.epoch_path(), Dataset::scalar_i64(epoch as i64))
        .expect("epoch path cannot collide with weight paths");
    file.root_mut().set_attr("framework", Attr::Str(fw.id().to_string()));
    file.root_mut().set_attr("format", Attr::Str("sefi-checkpoint-v1".to_string()));
    file
}

/// Restore a network from a checkpoint. Returns the stored epoch.
///
/// The file may have been deliberately corrupted — that is the whole point
/// of the study — so numeric values are accepted as-is (NaN, Inf, extreme).
/// *Structural* problems (missing tensors, wrong shapes, wrong framework)
/// are errors: the corrupter only alters dataset element bytes, never
/// structure, so structure damage means operator error.
pub fn load_checkpoint(
    fw: FrameworkKind,
    net: &mut Network,
    file: &H5File,
) -> Result<usize, String> {
    if let Some(Attr::Str(stored_fw)) = file.root().attr("framework") {
        if stored_fw != fw.id() {
            return Err(format!("checkpoint was written by {stored_fw:?}, not {:?}", fw.id()));
        }
    }
    let mut sd = net.state_dict();
    let mut new_sd = sefi_nn::StateDict::new();
    for entry in sd.entries() {
        let path = engine_to_file_path(fw, &entry.path);
        let ds = file.dataset(&path).map_err(|e| format!("loading {:?}: {e}", entry.path))?;
        if ds.len() != entry.tensor.len() {
            return Err(format!(
                "tensor {path:?} has {} entries, network expects {}",
                ds.len(),
                entry.tensor.len()
            ));
        }
        let stored = ds.to_f32_vec();
        let t = tensor_from_file_layout(fw, &entry.path, entry.tensor.shape(), &stored);
        new_sd.push(entry.path.clone(), t, entry.trainable);
    }
    net.load_state_dict(&new_sd)?;
    sd = new_sd; // keep the loaded dict alive for clarity; not otherwise used
    let _ = sd;
    let epoch = file
        .dataset(fw.epoch_path())
        .map_err(|e| format!("reading epoch: {e}"))?
        .get_i64(0)
        .map_err(|e| format!("reading epoch: {e}"))?;
    Ok(epoch as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_models::{alexnet, ModelConfig};
    use sefi_rng::DetRng;
    use sefi_tensor::Tensor;

    fn small_net() -> Network {
        let cfg = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
        alexnet(cfg, &mut DetRng::new(5)).0
    }

    #[test]
    fn roundtrip_preserves_outputs_for_all_frameworks() {
        for fw in FrameworkKind::all() {
            let mut a = small_net();
            let ck = save_checkpoint(fw, &mut a, 20, Dtype::F64);
            let mut b = {
                let cfg = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
                alexnet(cfg, &mut DetRng::new(99)).0
            };
            let epoch = load_checkpoint(fw, &mut b, &ck).unwrap();
            assert_eq!(epoch, 20);
            let x = Tensor::full(&[1, 3, 16, 16], 0.25);
            assert_eq!(
                a.forward(x.clone(), false).data(),
                b.forward(x, false).data(),
                "{fw:?} roundtrip changed the model"
            );
        }
    }

    #[test]
    fn f32_checkpoint_is_lossless_for_f32_engine() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let mut b = small_net();
        load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn f16_checkpoint_quantizes() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F16);
        let mut b = small_net();
        load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        // Quantized but close.
        let sa = a.state_dict();
        let sb = b.state_dict();
        assert_ne!(sa, sb);
        for (ea, eb) in sa.entries().iter().zip(sb.entries()) {
            for (&x, &y) in ea.tensor.data().iter().zip(eb.tensor.data()) {
                assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{}: {x} vs {y}", ea.path);
            }
        }
    }

    #[test]
    fn wrong_framework_is_rejected() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let err = load_checkpoint(FrameworkKind::TensorFlow, &mut a, &ck).unwrap_err();
        assert!(err.contains("written by"), "{err}");
    }

    #[test]
    fn checkpoint_structures_differ_across_frameworks() {
        let mut a = small_net();
        let ch = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let tf = save_checkpoint(FrameworkKind::TensorFlow, &mut a, 1, Dtype::F32);
        let pt = save_checkpoint(FrameworkKind::PyTorch, &mut a, 1, Dtype::F32);
        assert!(ch.dataset("predictor/conv1/W").is_ok());
        assert!(tf.dataset("model_weights/conv1/kernel").is_ok());
        assert!(pt.dataset("state_dict/conv1.weight").is_ok());
        // Same logical kernel, different stored bytes for TF (HWIO).
        let ch_k = ch.dataset("predictor/conv1/W").unwrap();
        let tf_k = tf.dataset("model_weights/conv1/kernel").unwrap();
        assert_eq!(ch_k.len(), tf_k.len());
        assert_ne!(ch_k.to_f32_vec(), tf_k.to_f32_vec());
        assert_ne!(ch_k.shape(), tf_k.shape());
    }

    #[test]
    fn missing_tensor_is_a_structural_error() {
        let mut a = small_net();
        let mut ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        // Rebuild the file without one dataset.
        let paths = ck.dataset_paths();
        let mut pruned = H5File::new();
        for p in paths.iter().filter(|p| !p.ends_with("conv3/W")) {
            pruned.create_dataset(p, ck.dataset(p).unwrap().clone()).unwrap();
        }
        ck = pruned;
        let err = load_checkpoint(FrameworkKind::Chainer, &mut a, &ck).unwrap_err();
        assert!(err.contains("conv3"), "{err}");
    }

    #[test]
    fn corrupted_values_load_fine() {
        // Numeric corruption must NOT be rejected by the loader.
        let mut a = small_net();
        let mut ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 20, Dtype::F32);
        let ds = ck.dataset_mut("predictor/conv1/W").unwrap();
        ds.set_f64(0, f64::NAN).unwrap();
        ds.set_f64(1, 1e38).unwrap();
        let mut b = small_net();
        let epoch = load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        assert_eq!(epoch, 20);
        assert!(b.has_non_finite());
    }
}
