//! Checkpoint save/load per framework personality.

use crate::kind::FrameworkKind;
use crate::mapping::{engine_to_file_path, tensor_from_file_layout, tensor_to_file_layout};
use sefi_hdf5::{Attr, Dataset, Dtype, EccSidecar, H5File, LoadPolicy};
use sefi_nn::Network;

/// Serialize a network into this framework's checkpoint layout at the given
/// storage dtype (the paper's 16/32/64-bit precision studies select this).
pub fn save_checkpoint(fw: FrameworkKind, net: &mut Network, epoch: usize, dtype: Dtype) -> H5File {
    assert!(dtype.is_real(), "checkpoint weight dtype must store real values");
    let mut file = H5File::new();
    let sd = net.state_dict();
    for entry in sd.entries() {
        let path = engine_to_file_path(fw, &entry.path);
        let (shape, data) = tensor_to_file_layout(fw, &entry.path, &entry.tensor);
        let ds = Dataset::from_f32(&data, &shape, dtype)
            .expect("state-dict tensors are shape-consistent");
        file.create_dataset(&path, ds).expect("state-dict paths are unique");
    }
    file.create_dataset(fw.epoch_path(), Dataset::scalar_i64(epoch as i64))
        .expect("epoch path cannot collide with weight paths");
    file.root_mut().set_attr("framework", Attr::Str(fw.id().to_string()));
    file.root_mut().set_attr("format", Attr::Str("sefi-checkpoint-v1".to_string()));
    file
}

/// Restore a network from a checkpoint. Returns the stored epoch.
///
/// The file may have been deliberately corrupted — that is the whole point
/// of the study — so numeric values are accepted as-is (NaN, Inf, extreme).
/// *Structural* problems (missing tensors, wrong shapes, wrong framework)
/// are errors: the corrupter only alters dataset element bytes, never
/// structure, so structure damage means operator error.
pub fn load_checkpoint(
    fw: FrameworkKind,
    net: &mut Network,
    file: &H5File,
) -> Result<usize, String> {
    load_into(fw, net, file, &[])
}

/// Outcome of a policy-driven checkpoint load from file bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointLoad {
    /// The stored epoch.
    pub epoch: usize,
    /// Dataset paths whose sections failed their CRC and were quarantined
    /// (skipped, keeping the network's current in-memory tensor) or
    /// zero-filled, per the policy. Empty for clean loads and for v1 files.
    pub quarantined: Vec<String>,
    /// Dataset paths whose sections failed their CRC but were repaired to
    /// their original bytes by ECC (only under [`LoadPolicy::Correct`] via
    /// [`load_checkpoint_bytes_ecc`]). The restored tensors are exact.
    pub corrected: Vec<String>,
}

/// Restore a network directly from checkpoint *file bytes* under a
/// [`LoadPolicy`] — the storage-fault-tolerant entry point.
///
/// For v2 files a corrupt dataset section is handled per the policy:
/// `Strict` fails the load (same contract as [`load_checkpoint`]);
/// `Quarantine` keeps the network's current in-memory tensor for that
/// dataset (partial recovery — the tensor is simply not restored);
/// `ZeroFill` loads zeros of the stored shape. Either way the damage is
/// itemized in [`CheckpointLoad::quarantined`]. A quarantined *epoch*
/// dataset is unrecoverable — there is no in-memory fallback for the
/// restart position — so it fails the load even under `Quarantine`
/// (under `ZeroFill` it decodes as epoch 0). Superblock or index damage
/// always fails: without a trustworthy index nothing can be attributed.
/// v1 files decode all-or-nothing regardless of policy.
pub fn load_checkpoint_bytes(
    fw: FrameworkKind,
    net: &mut Network,
    bytes: &[u8],
    policy: LoadPolicy,
) -> Result<CheckpointLoad, String> {
    let (file, report) = H5File::from_bytes_with_policy(bytes, policy)
        .map_err(|e| format!("decoding checkpoint: {e}"))?;
    let epoch = load_into(fw, net, &file, &report.quarantined)?;
    Ok(CheckpointLoad { epoch, quarantined: report.quarantined, corrected: report.corrected })
}

/// Restore a network from v2 checkpoint bytes with an ECC parity sidecar
/// available for repair — [`load_checkpoint_bytes`] plus SEC-DED.
///
/// Under [`LoadPolicy::Correct`] a section whose CRC fails is repaired
/// through the sidecar and re-verified; repaired tensors restore their
/// exact original values and are listed in [`CheckpointLoad::corrected`].
/// Damage beyond single-bit-per-word falls back to quarantine semantics,
/// including the fatal quarantined-epoch case.
pub fn load_checkpoint_bytes_ecc(
    fw: FrameworkKind,
    net: &mut Network,
    bytes: &[u8],
    policy: LoadPolicy,
    sidecar: &EccSidecar,
) -> Result<CheckpointLoad, String> {
    let (file, report) = H5File::from_bytes_with_ecc(bytes, policy, sidecar)
        .map_err(|e| format!("decoding checkpoint: {e}"))?;
    let epoch = load_into(fw, net, &file, &report.quarantined)?;
    Ok(CheckpointLoad { epoch, quarantined: report.quarantined, corrected: report.corrected })
}

fn load_into(
    fw: FrameworkKind,
    net: &mut Network,
    file: &H5File,
    quarantined: &[String],
) -> Result<usize, String> {
    if let Some(Attr::Str(stored_fw)) = file.root().attr("framework") {
        if stored_fw != fw.id() {
            return Err(format!("checkpoint was written by {stored_fw:?}, not {:?}", fw.id()));
        }
    }
    let sd = net.state_dict();
    let mut new_sd = sefi_nn::StateDict::new();
    for entry in sd.entries() {
        let path = engine_to_file_path(fw, &entry.path);
        match file.dataset(&path) {
            Ok(ds) => {
                if ds.len() != entry.tensor.len() {
                    return Err(format!(
                        "tensor {path:?} has {} entries, network expects {}",
                        ds.len(),
                        entry.tensor.len()
                    ));
                }
                let stored = ds.to_f32_vec();
                let t = tensor_from_file_layout(fw, &entry.path, entry.tensor.shape(), &stored);
                new_sd.push(entry.path.clone(), t, entry.trainable);
            }
            // A quarantined dataset is deliberately absent: keep the
            // network's current tensor instead of failing the load.
            Err(_) if quarantined.contains(&path) => {
                new_sd.push(entry.path.clone(), entry.tensor.clone(), entry.trainable);
            }
            Err(e) => return Err(format!("loading {:?}: {e}", entry.path)),
        }
    }
    net.load_state_dict(&new_sd)?;
    let epoch_path = fw.epoch_path();
    let epoch = match file.dataset(epoch_path) {
        Ok(ds) => ds.get_i64(0).map_err(|e| format!("reading epoch: {e}"))?,
        Err(_) if quarantined.iter().any(|p| p == epoch_path) => {
            return Err(format!(
                "epoch dataset {epoch_path:?} is quarantined — restart position unknown"
            ));
        }
        Err(e) => return Err(format!("reading epoch: {e}")),
    };
    Ok(epoch as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_models::{alexnet, ModelConfig};
    use sefi_rng::DetRng;
    use sefi_tensor::Tensor;

    fn small_net() -> Network {
        let cfg = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
        alexnet(cfg, &mut DetRng::new(5)).0
    }

    #[test]
    fn roundtrip_preserves_outputs_for_all_frameworks() {
        for fw in FrameworkKind::all() {
            let mut a = small_net();
            let ck = save_checkpoint(fw, &mut a, 20, Dtype::F64);
            let mut b = {
                let cfg = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
                alexnet(cfg, &mut DetRng::new(99)).0
            };
            let epoch = load_checkpoint(fw, &mut b, &ck).unwrap();
            assert_eq!(epoch, 20);
            let x = Tensor::full(&[1, 3, 16, 16], 0.25);
            assert_eq!(
                a.forward(x.clone(), false).data(),
                b.forward(x, false).data(),
                "{fw:?} roundtrip changed the model"
            );
        }
    }

    #[test]
    fn f32_checkpoint_is_lossless_for_f32_engine() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let mut b = small_net();
        load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn f16_checkpoint_quantizes() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F16);
        let mut b = small_net();
        load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        // Quantized but close.
        let sa = a.state_dict();
        let sb = b.state_dict();
        assert_ne!(sa, sb);
        for (ea, eb) in sa.entries().iter().zip(sb.entries()) {
            for (&x, &y) in ea.tensor.data().iter().zip(eb.tensor.data()) {
                assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()), "{}: {x} vs {y}", ea.path);
            }
        }
    }

    #[test]
    fn bf16_checkpoint_quantizes() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::BF16);
        let mut b = small_net();
        load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        let sa = a.state_dict();
        let sb = b.state_dict();
        assert_ne!(sa, sb);
        // bf16 keeps 8 mantissa bits (implicit one included): relative
        // error bounded by 2^-8 after round-to-nearest-even.
        for (ea, eb) in sa.entries().iter().zip(sb.entries()) {
            for (&x, &y) in ea.tensor.data().iter().zip(eb.tensor.data()) {
                assert!(
                    (x - y).abs() <= (1.0 / 256.0) * (1.0 + x.abs()),
                    "{}: {x} vs {y}",
                    ea.path
                );
            }
        }
    }

    #[test]
    fn i8q_checkpoint_quantizes_per_tensor() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 3, Dtype::I8Q);
        for p in ck.dataset_paths() {
            let ds = ck.dataset(&p).unwrap();
            if ds.dtype() == Dtype::I8Q {
                assert!(ds.scale() > 0.0);
            }
        }
        let mut b = small_net();
        let epoch = load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        assert_eq!(epoch, 3);
        // Each tensor dequantizes to within half a quantization step of
        // its own scale (max_abs / 127).
        for (ea, eb) in a.state_dict().entries().iter().zip(b.state_dict().entries()) {
            let max_abs = ea.tensor.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let step = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            for (&x, &y) in ea.tensor.data().iter().zip(eb.tensor.data()) {
                assert!((x - y).abs() <= 0.5 * step + 1e-6, "{}: {x} vs {y}", ea.path);
            }
        }
    }

    #[test]
    fn bf16_v2_bytes_roundtrip_under_every_policy_and_ecc() {
        let fw = FrameworkKind::Chainer;
        let mut a = small_net();
        let bytes = save_checkpoint(fw, &mut a, 9, Dtype::BF16).to_bytes_v2();
        for policy in [LoadPolicy::Strict, LoadPolicy::Quarantine, LoadPolicy::ZeroFill] {
            let mut b = other_net();
            let load = load_checkpoint_bytes(fw, &mut b, &bytes, policy).unwrap();
            assert_eq!(load.epoch, 9);
            assert!(load.quarantined.is_empty());
        }
        // ECC repairs a flipped bf16 payload bit exactly.
        let sidecar = EccSidecar::protect(&bytes).unwrap();
        let mut bad = bytes.clone();
        flip_in_section(&mut bad, "predictor/conv1/W");
        let mut b = other_net();
        let load =
            load_checkpoint_bytes_ecc(fw, &mut b, &bad, LoadPolicy::Correct, &sidecar).unwrap();
        assert_eq!(load.corrected, vec!["predictor/conv1/W".to_string()]);
        let mut c = other_net();
        load_checkpoint_bytes(fw, &mut c, &bytes, LoadPolicy::Strict).unwrap();
        assert_eq!(b.state_dict(), c.state_dict(), "repair restores the exact bf16 tensors");
    }

    #[test]
    fn wrong_framework_is_rejected() {
        let mut a = small_net();
        let ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let err = load_checkpoint(FrameworkKind::TensorFlow, &mut a, &ck).unwrap_err();
        assert!(err.contains("written by"), "{err}");
    }

    #[test]
    fn checkpoint_structures_differ_across_frameworks() {
        let mut a = small_net();
        let ch = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        let tf = save_checkpoint(FrameworkKind::TensorFlow, &mut a, 1, Dtype::F32);
        let pt = save_checkpoint(FrameworkKind::PyTorch, &mut a, 1, Dtype::F32);
        assert!(ch.dataset("predictor/conv1/W").is_ok());
        assert!(tf.dataset("model_weights/conv1/kernel").is_ok());
        assert!(pt.dataset("state_dict/conv1.weight").is_ok());
        // Same logical kernel, different stored bytes for TF (HWIO).
        let ch_k = ch.dataset("predictor/conv1/W").unwrap();
        let tf_k = tf.dataset("model_weights/conv1/kernel").unwrap();
        assert_eq!(ch_k.len(), tf_k.len());
        assert_ne!(ch_k.to_f32_vec(), tf_k.to_f32_vec());
        assert_ne!(ch_k.shape(), tf_k.shape());
    }

    #[test]
    fn missing_tensor_is_a_structural_error() {
        let mut a = small_net();
        let mut ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 1, Dtype::F32);
        // Rebuild the file without one dataset.
        let paths = ck.dataset_paths();
        let mut pruned = H5File::new();
        for p in paths.iter().filter(|p| !p.ends_with("conv3/W")) {
            pruned.create_dataset(p, ck.dataset(p).unwrap().clone()).unwrap();
        }
        ck = pruned;
        let err = load_checkpoint(FrameworkKind::Chainer, &mut a, &ck).unwrap_err();
        assert!(err.contains("conv3"), "{err}");
    }

    #[test]
    fn policy_loader_clean_v2_bytes_roundtrip() {
        let fw = FrameworkKind::Chainer;
        let mut a = small_net();
        let bytes = save_checkpoint(fw, &mut a, 20, Dtype::F64).to_bytes_v2();
        let mut b = small_net();
        let load = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::Strict).unwrap();
        assert_eq!(load, CheckpointLoad { epoch: 20, quarantined: vec![], corrected: vec![] });
        assert_eq!(a.state_dict(), b.state_dict());
    }

    /// Flip one byte inside a named dataset's v2 payload section.
    fn flip_in_section(bytes: &mut [u8], path: &str) {
        let idx = sefi_hdf5::FileIndex::parse(bytes).unwrap();
        let e = idx.entry(path).unwrap();
        bytes[e.offset] ^= 0x01;
    }

    fn other_net() -> Network {
        let cfg = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
        alexnet(cfg, &mut DetRng::new(99)).0
    }

    #[test]
    fn single_payload_flip_strict_errors_quarantine_recovers() {
        let fw = FrameworkKind::Chainer;
        let mut a = small_net();
        let mut bytes = save_checkpoint(fw, &mut a, 20, Dtype::F32).to_bytes_v2();
        flip_in_section(&mut bytes, "predictor/conv1/W");

        let mut b = other_net();
        let err = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::Strict).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Quarantine: everything except conv1/W restores; conv1/W keeps the
        // network's own (differently seeded) in-memory tensor.
        let mut b = other_net();
        let before = b.state_dict();
        let load = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::Quarantine).unwrap();
        assert_eq!(load.epoch, 20);
        assert_eq!(load.quarantined, vec!["predictor/conv1/W".to_string()]);
        let sa = a.state_dict();
        for ((eb, ea), e0) in
            b.state_dict().entries().iter().zip(sa.entries()).zip(before.entries())
        {
            if engine_to_file_path(fw, &eb.path) == "predictor/conv1/W" {
                assert_eq!(eb.tensor, e0.tensor, "quarantined tensor kept as-is");
                assert_ne!(eb.tensor, ea.tensor);
            } else {
                assert_eq!(eb.tensor, ea.tensor, "{} restored", eb.path);
            }
        }

        // ZeroFill: the damaged tensor loads as zeros instead.
        let mut b = other_net();
        let load = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::ZeroFill).unwrap();
        assert_eq!(load.quarantined, vec!["predictor/conv1/W".to_string()]);
        let zeroed = b
            .state_dict()
            .entries()
            .iter()
            .find(|e| engine_to_file_path(fw, &e.path) == "predictor/conv1/W")
            .unwrap()
            .tensor
            .clone();
        assert!(zeroed.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quarantined_epoch_fails_the_load() {
        let fw = FrameworkKind::Chainer;
        let mut a = small_net();
        let mut bytes = save_checkpoint(fw, &mut a, 20, Dtype::F32).to_bytes_v2();
        flip_in_section(&mut bytes, fw.epoch_path());
        let mut b = other_net();
        let err = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::Quarantine).unwrap_err();
        assert!(err.contains("quarantined"), "{err}");
        // ZeroFill substitutes a zeroed scalar: epoch 0, flagged as damage.
        let mut b = other_net();
        let load = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::ZeroFill).unwrap();
        assert_eq!(load.epoch, 0);
        assert_eq!(load.quarantined, vec![fw.epoch_path().to_string()]);
    }

    #[test]
    fn ecc_loader_repairs_flipped_weights_and_epoch_exactly() {
        let fw = FrameworkKind::Chainer;
        let mut a = small_net();
        let bytes = save_checkpoint(fw, &mut a, 20, Dtype::F32).to_bytes_v2();
        let sidecar = EccSidecar::protect(&bytes).unwrap();
        let mut bad = bytes.clone();
        flip_in_section(&mut bad, "predictor/conv1/W");
        flip_in_section(&mut bad, fw.epoch_path());

        // Without the sidecar the epoch flip is fatal under Quarantine…
        let mut b = other_net();
        assert!(load_checkpoint_bytes(fw, &mut b, &bad, LoadPolicy::Quarantine).is_err());
        // …with it, both sections repair and the load is bit-exact.
        let mut b = other_net();
        let load =
            load_checkpoint_bytes_ecc(fw, &mut b, &bad, LoadPolicy::Correct, &sidecar).unwrap();
        assert_eq!(load.epoch, 20);
        assert!(load.quarantined.is_empty());
        assert_eq!(
            load.corrected,
            vec!["predictor/conv1/W".to_string(), fw.epoch_path().to_string()]
        );
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn policy_loader_accepts_v1_bytes() {
        let fw = FrameworkKind::PyTorch;
        let mut a = small_net();
        let bytes = save_checkpoint(fw, &mut a, 7, Dtype::F32).to_bytes();
        let mut b = other_net();
        let load = load_checkpoint_bytes(fw, &mut b, &bytes, LoadPolicy::Quarantine).unwrap();
        assert_eq!(load.epoch, 7);
        assert!(load.quarantined.is_empty());
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn corrupted_values_load_fine() {
        // Numeric corruption must NOT be rejected by the loader.
        let mut a = small_net();
        let mut ck = save_checkpoint(FrameworkKind::Chainer, &mut a, 20, Dtype::F32);
        let ds = ck.dataset_mut("predictor/conv1/W").unwrap();
        ds.set_f64(0, f64::NAN).unwrap();
        ds.set_f64(1, 1e38).unwrap();
        let mut b = small_net();
        let epoch = load_checkpoint(FrameworkKind::Chainer, &mut b, &ck).unwrap();
        assert_eq!(epoch, 20);
        assert!(b.has_non_finite());
    }
}
