//! A training session: one (framework, model) pair with deterministic
//! lifecycle — build, train, checkpoint, restore, resume, predict.
//!
//! Sessions are the unit every experiment manipulates: "we generate a
//! checkpoint of any DL framework and any neural network model during
//! training to perform the injection process and later loaded the altered
//! checkpoint file to resume execution" (Section V-A2).

use crate::checkpoint::{load_checkpoint, save_checkpoint};
use crate::kind::FrameworkKind;
use crate::mapping::file_layer_location;
use sefi_data::SyntheticCifar10;
use sefi_hdf5::{Dtype, H5File};
use sefi_models::{build, LayerRole, ModelConfig, ModelKind, ModelMeta};
use sefi_nn::{evaluate, Network, TrainConfig, TrainOutcome, Trainer};
use sefi_rng::DetRng;
use sefi_tensor::Tensor;

/// Everything needed to reproduce a session bit-for-bit.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Framework personality.
    pub framework: FrameworkKind,
    /// Model architecture.
    pub model: ModelKind,
    /// Architecture sizing.
    pub model_config: ModelConfig,
    /// Training hyperparameters.
    pub train: TrainConfig,
    /// Master seed (initialization substream is derived per framework+model
    /// label so all frameworks share logical weights for a given seed —
    /// the setting equivalent injection compares).
    pub seed: u64,
}

impl SessionConfig {
    /// Convenience constructor with default model/train configs.
    pub fn new(framework: FrameworkKind, model: ModelKind, seed: u64) -> Self {
        SessionConfig {
            framework,
            model,
            model_config: ModelConfig::default(),
            train: TrainConfig::default(),
            seed,
        }
    }
}

/// A live training session.
pub struct Session {
    config: SessionConfig,
    net: Network,
    meta: ModelMeta,
    trainer: Trainer,
    epoch: usize,
}

impl Session {
    /// Build the model and a fresh trainer.
    ///
    /// The initialization stream depends only on (seed, model) — not the
    /// framework — so the same seed gives the same logical weights in all
    /// three frameworks, mirroring the paper's equivalent-injection setup
    /// where one model is trained per framework under identical conditions.
    pub fn new(config: SessionConfig) -> Self {
        let mut rng = DetRng::new(config.seed).substream(&format!("init-{}", config.model.id()));
        let (net, meta) = build(config.model, config.model_config, &mut rng);
        let trainer = Trainer::new(config.train.clone());
        Session { config, net, meta, trainer, epoch: 0 }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Model metadata (layer names and roles).
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Current epoch (next epoch to be trained).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Direct access to the network (experiments inspect weights).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Train until `target_epoch` (exclusive upper bound on epoch index).
    pub fn train_to(&mut self, data: &SyntheticCifar10, target_epoch: usize) -> TrainOutcome {
        let out = self.trainer.train(&mut self.net, data, self.epoch, target_epoch);
        if let Some(last) = out.history().last() {
            self.epoch = last.epoch + 1;
        }
        if out.collapsed() {
            // A collapsed training does not advance further.
        } else {
            self.epoch = target_epoch.max(self.epoch);
        }
        out
    }

    /// Write a checkpoint of the current weights.
    pub fn checkpoint(&mut self, dtype: Dtype) -> H5File {
        save_checkpoint(self.config.framework, &mut self.net, self.epoch, dtype)
    }

    /// Write a checkpoint that *also* carries the optimizer's momentum
    /// buffers (under `optimizer_state/momentum/<param path>`).
    ///
    /// The paper's frameworks do not do this — it explains the accuracy
    /// offset in its Figure 3b ("the result of not saving other types of
    /// optimization information at the checkpoint") — so this is an
    /// extension: with it, a resume is bitwise-identical to the
    /// uninterrupted run. Momentum tensors are stored at f32 (their
    /// working precision) regardless of the weight dtype.
    pub fn checkpoint_with_optimizer(&mut self, dtype: Dtype) -> H5File {
        let mut file = self.checkpoint(dtype);
        let velocities = self.trainer.optimizer().velocities().to_vec();
        if velocities.is_empty() {
            return file; // no step taken yet: nothing to carry
        }
        let params = self.net.params_mut();
        assert_eq!(params.len(), velocities.len(), "optimizer bound to this network");
        for (p, v) in params.iter().zip(&velocities) {
            let ds = sefi_hdf5::Dataset::from_f32(v.data(), v.shape(), Dtype::F32)
                .expect("velocity shapes are consistent");
            file.create_dataset(&format!("optimizer_state/momentum/{}", p.name), ds)
                .expect("param paths are unique");
        }
        file
    }

    /// Restore weights (and epoch) from a checkpoint — possibly corrupted.
    ///
    /// If the file carries `optimizer_state/momentum/*` (written by
    /// [`Session::checkpoint_with_optimizer`]) the momentum buffers are
    /// restored too; otherwise the optimizer restarts cold, as the paper's
    /// frameworks do ("not saving other types of optimization information
    /// at the checkpoint", Section V-C2).
    pub fn restore(&mut self, file: &H5File) -> Result<(), String> {
        let epoch = load_checkpoint(self.config.framework, &mut self.net, file)?;
        self.epoch = epoch;
        self.trainer = Trainer::new(self.config.train.clone());
        if file.get("optimizer_state").is_some() {
            let mut velocities = Vec::new();
            for p in self.net.params_mut() {
                let path = format!("optimizer_state/momentum/{}", p.name);
                let ds =
                    file.dataset(&path).map_err(|e| format!("restoring optimizer state: {e}"))?;
                if ds.len() != p.value.len() {
                    return Err(format!(
                        "momentum tensor {path:?} has {} entries, parameter has {}",
                        ds.len(),
                        p.value.len()
                    ));
                }
                velocities.push(Tensor::from_vec(ds.to_f32_vec(), p.value.shape()));
            }
            self.trainer.optimizer_mut().set_velocities(velocities);
        }
        Ok(())
    }

    /// Test-set accuracy right now.
    pub fn test_accuracy(&mut self, data: &SyntheticCifar10) -> f64 {
        evaluate(&mut self.net, data, sefi_data::Split::Test)
    }

    /// Predict classes for a raw image batch; also reports whether the
    /// computation produced non-finite logits (Table VIII counts those as
    /// N-EV predictions).
    pub fn predict(&mut self, images: Tensor) -> (Vec<usize>, bool) {
        let logits = self.net.forward(images, false);
        let nev = logits.has_non_finite();
        (logits.argmax_rows(), nev)
    }

    /// Checkpoint locations (paths inside this framework's files) covering
    /// a structural layer role — used to aim `locations_to_corrupt`.
    pub fn layer_locations(&self, role: LayerRole) -> Vec<String> {
        file_layer_location(self.config.framework, self.meta.layer_for_role(role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_data::DataConfig;

    fn tiny_data() -> SyntheticCifar10 {
        SyntheticCifar10::generate(DataConfig {
            train: 120,
            test: 60,
            image_size: 16,
            seed: 3,
            noise: 0.15,
        })
    }

    fn tiny_session(fw: FrameworkKind, model: ModelKind) -> Session {
        let mut cfg = SessionConfig::new(fw, model, 42);
        cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
        cfg.train.batch_size = 30;
        Session::new(cfg)
    }

    #[test]
    fn train_checkpoint_restore_resume_is_deterministic() {
        let data = tiny_data();
        let mut s = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        let out = s.train_to(&data, 2);
        assert!(!out.collapsed());
        let ck = s.checkpoint(Dtype::F64);

        // Two independent resumes from the same checkpoint agree exactly.
        let resume = |ck: &H5File| {
            let mut r = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
            r.restore(ck).unwrap();
            assert_eq!(r.epoch(), 2);
            let o = r.train_to(&data, 4);
            (o.history().to_vec(), r.test_accuracy(&data))
        };
        let (h1, a1) = resume(&ck);
        let (h2, a2) = resume(&ck);
        assert_eq!(h1, h2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn same_seed_same_logical_weights_across_frameworks() {
        let data = tiny_data();
        let accs: Vec<f64> = FrameworkKind::all()
            .iter()
            .map(|&fw| tiny_session(fw, ModelKind::AlexNet).test_accuracy(&data))
            .collect();
        assert_eq!(accs[0], accs[1]);
        assert_eq!(accs[1], accs[2]);
    }

    #[test]
    fn layer_locations_differ_by_framework() {
        let ch = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        let tf = tiny_session(FrameworkKind::TensorFlow, ModelKind::AlexNet);
        assert_eq!(ch.layer_locations(LayerRole::First), vec!["predictor/conv1".to_string()]);
        assert_eq!(tf.layer_locations(LayerRole::First), vec!["model_weights/conv1".to_string()]);
    }

    #[test]
    fn optimizer_state_checkpoint_makes_resume_bitwise_exact() {
        let data = tiny_data();
        // Uninterrupted run to epoch 4.
        let mut full = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        let out = full.train_to(&data, 4);
        assert!(!out.collapsed());
        let full_ck = full.checkpoint(Dtype::F64);

        // Interrupted at epoch 2 with optimizer state carried.
        let mut part = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        part.train_to(&data, 2);
        let warm_ck = part.checkpoint_with_optimizer(Dtype::F64);
        assert!(warm_ck.get("optimizer_state").is_some());

        let mut resumed = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        resumed.restore(&warm_ck).unwrap();
        resumed.train_to(&data, 4);
        assert_eq!(
            resumed.checkpoint(Dtype::F64).to_bytes(),
            full_ck.to_bytes(),
            "warm resume must be bitwise identical to the uninterrupted run"
        );

        // Cold resume (plain checkpoint) generally diverges — the paper's
        // Figure 3b artifact.
        let cold_ck = part.checkpoint(Dtype::F64);
        let mut cold = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        cold.restore(&cold_ck).unwrap();
        cold.train_to(&data, 4);
        assert_ne!(cold.checkpoint(Dtype::F64).to_bytes(), full_ck.to_bytes());
    }

    #[test]
    fn corrupted_momentum_is_loaded_as_found() {
        // Optimizer state living in the checkpoint is itself a corruption
        // surface; the loader must accept altered values.
        let data = tiny_data();
        let mut s = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        s.train_to(&data, 1);
        let mut ck = s.checkpoint_with_optimizer(Dtype::F64);
        let paths: Vec<String> =
            ck.dataset_paths().into_iter().filter(|p| p.starts_with("optimizer_state/")).collect();
        assert!(!paths.is_empty());
        ck.dataset_mut(&paths[0]).unwrap().set_f64(0, 42.0).unwrap();
        let mut r = tiny_session(FrameworkKind::Chainer, ModelKind::AlexNet);
        r.restore(&ck).unwrap();
        let out = r.train_to(&data, 2);
        assert!(!out.collapsed());
    }

    #[test]
    fn all_nine_combinations_build_and_forward() {
        let data = SyntheticCifar10::generate(DataConfig {
            train: 8,
            test: 8,
            image_size: 32,
            seed: 4,
            noise: 0.2,
        });
        for fw in FrameworkKind::all() {
            for model in ModelKind::all() {
                let mut cfg = SessionConfig::new(fw, model, 7);
                cfg.model_config = ModelConfig { scale: 0.03, input_size: 32, num_classes: 10 };
                let mut s = Session::new(cfg);
                let acc = s.test_accuracy(&data);
                assert!((0.0..=1.0).contains(&acc), "{fw:?}/{model:?}");
            }
        }
    }
}
