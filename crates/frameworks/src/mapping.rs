//! Engine-path ⇄ checkpoint-path mapping and tensor layout conversion.
//!
//! Engine parameter paths look like `conv1/W`, `res2a/bn1/gamma`,
//! `fc8/b`. Each framework maps these to its own file schema, and two of
//! them also reorder tensor memory (TensorFlow stores convolution kernels
//! HWIO and dense kernels transposed). Both directions are implemented and
//! tested as exact inverses — a checkpoint round-trip must be lossless or
//! every experiment comparing resumed trainings would be invalid.

use crate::kind::FrameworkKind;
use sefi_tensor::Tensor;

/// Map an engine parameter path to this framework's checkpoint path.
pub fn engine_to_file_path(fw: FrameworkKind, engine_path: &str) -> String {
    let (dirs, leaf) = split_leaf(engine_path);
    match fw {
        FrameworkKind::Chainer => {
            let leaf = match leaf {
                "W" => "W",
                "b" => "b",
                "gamma" => "gamma",
                "beta" => "beta",
                "running_mean" => "avg_mean",
                "running_var" => "avg_var",
                other => other,
            };
            if dirs.is_empty() {
                format!("predictor/{leaf}")
            } else {
                format!("predictor/{}/{leaf}", dirs.join("/"))
            }
        }
        FrameworkKind::PyTorch => {
            let leaf = match leaf {
                "W" | "gamma" => "weight",
                "b" | "beta" => "bias",
                other => other, // running_mean / running_var keep their names
            };
            let module = dirs.join(".");
            if module.is_empty() {
                format!("state_dict/{leaf}")
            } else {
                format!("state_dict/{module}.{leaf}")
            }
        }
        FrameworkKind::TensorFlow => {
            let leaf = match leaf {
                "W" => "kernel",
                "b" => "bias",
                "gamma" => "gamma",
                "beta" => "beta",
                "running_mean" => "moving_mean",
                "running_var" => "moving_variance",
                other => other,
            };
            if dirs.is_empty() {
                format!("model_weights/{leaf}")
            } else {
                format!("model_weights/{}/{leaf}", dirs.join("/"))
            }
        }
    }
}

/// The checkpoint locations covering one engine layer — what
/// `locations_to_corrupt` should contain to target that layer in this
/// framework (paper Figures 4–5).
///
/// Group-structured layouts return the single enclosing group; PyTorch's
/// flat dotted layout has no per-layer group, so the datasets are listed
/// explicitly. Both forms are valid injector locations.
pub fn file_layer_location(fw: FrameworkKind, engine_layer: &str) -> Vec<String> {
    match fw {
        FrameworkKind::Chainer => vec![format!("predictor/{engine_layer}")],
        FrameworkKind::TensorFlow => vec![format!("model_weights/{engine_layer}")],
        FrameworkKind::PyTorch => {
            // All parameter kinds a layer (or block subtree) may own; the
            // caller filters to those present in the file.
            let module = engine_layer.replace('/', ".");
            ["weight", "bias", "running_mean", "running_var"]
                .iter()
                .map(|leaf| format!("state_dict/{module}.{leaf}"))
                .collect()
        }
    }
}

/// Convert an engine tensor into this framework's storage layout.
/// Returns the stored shape and the reordered data.
pub fn tensor_to_file_layout(
    fw: FrameworkKind,
    engine_path: &str,
    t: &Tensor,
) -> (Vec<usize>, Vec<f32>) {
    if fw != FrameworkKind::TensorFlow || !is_kernel(engine_path) {
        return (t.shape().to_vec(), t.data().to_vec());
    }
    match t.shape() {
        // Convolution kernel OIHW -> HWIO.
        [o, i, kh, kw] => {
            let (o, i, kh, kw) = (*o, *i, *kh, *kw);
            let src = t.data();
            let mut out = vec![0.0f32; src.len()];
            for oo in 0..o {
                for ii in 0..i {
                    for h in 0..kh {
                        for w in 0..kw {
                            out[((h * kw + w) * i + ii) * o + oo] =
                                src[((oo * i + ii) * kh + h) * kw + w];
                        }
                    }
                }
            }
            (vec![kh, kw, i, o], out)
        }
        // Dense kernel [out, in] -> [in, out].
        [o, i] => {
            let (o, i) = (*o, *i);
            let src = t.data();
            let mut out = vec![0.0f32; src.len()];
            for oo in 0..o {
                for ii in 0..i {
                    out[ii * o + oo] = src[oo * i + ii];
                }
            }
            (vec![i, o], out)
        }
        _ => (t.shape().to_vec(), t.data().to_vec()),
    }
}

/// Convert stored data back into the engine layout. `engine_shape` is the
/// shape the network expects.
pub fn tensor_from_file_layout(
    fw: FrameworkKind,
    engine_path: &str,
    engine_shape: &[usize],
    stored: &[f32],
) -> Tensor {
    if fw != FrameworkKind::TensorFlow || !is_kernel(engine_path) {
        return Tensor::from_vec(stored.to_vec(), engine_shape);
    }
    match engine_shape {
        [o, i, kh, kw] => {
            let (o, i, kh, kw) = (*o, *i, *kh, *kw);
            let mut out = vec![0.0f32; stored.len()];
            for oo in 0..o {
                for ii in 0..i {
                    for h in 0..kh {
                        for w in 0..kw {
                            out[((oo * i + ii) * kh + h) * kw + w] =
                                stored[((h * kw + w) * i + ii) * o + oo];
                        }
                    }
                }
            }
            Tensor::from_vec(out, engine_shape)
        }
        [o, i] => {
            let (o, i) = (*o, *i);
            let mut out = vec![0.0f32; stored.len()];
            for oo in 0..o {
                for ii in 0..i {
                    out[oo * i + ii] = stored[ii * o + oo];
                }
            }
            Tensor::from_vec(out, engine_shape)
        }
        _ => Tensor::from_vec(stored.to_vec(), engine_shape),
    }
}

fn is_kernel(engine_path: &str) -> bool {
    engine_path.ends_with("/W")
}

fn split_leaf(path: &str) -> (Vec<&str>, &str) {
    let mut parts: Vec<&str> = path.split('/').collect();
    let leaf = parts.pop().expect("non-empty path");
    (parts, leaf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chainer_paths_match_paper_example() {
        // Paper: "chpt_ch_vgg_e_5.h5/predictor/conv1_1".
        assert_eq!(engine_to_file_path(FrameworkKind::Chainer, "conv1_1/W"), "predictor/conv1_1/W");
        assert_eq!(
            engine_to_file_path(FrameworkKind::Chainer, "res2a/bn1/running_mean"),
            "predictor/res2a/bn1/avg_mean"
        );
    }

    #[test]
    fn tensorflow_paths_match_paper_example() {
        // Paper: "chpt_tf_vgg_e_5.h5/model_weights/_block1_conv1".
        assert_eq!(
            engine_to_file_path(FrameworkKind::TensorFlow, "block1_conv1/W"),
            "model_weights/block1_conv1/kernel"
        );
        assert_eq!(
            engine_to_file_path(FrameworkKind::TensorFlow, "bn1/running_var"),
            "model_weights/bn1/moving_variance"
        );
    }

    #[test]
    fn pytorch_paths_use_dotted_keys() {
        assert_eq!(
            engine_to_file_path(FrameworkKind::PyTorch, "conv1/W"),
            "state_dict/conv1.weight"
        );
        assert_eq!(
            engine_to_file_path(FrameworkKind::PyTorch, "res2a/bn1/gamma"),
            "state_dict/res2a.bn1.weight"
        );
        assert_eq!(
            engine_to_file_path(FrameworkKind::PyTorch, "res2a/bn1/running_var"),
            "state_dict/res2a.bn1.running_var"
        );
    }

    #[test]
    fn frameworks_give_distinct_paths_for_same_parameter() {
        let paths: Vec<String> =
            FrameworkKind::all().iter().map(|&fw| engine_to_file_path(fw, "conv1/W")).collect();
        assert_ne!(paths[0], paths[1]);
        assert_ne!(paths[1], paths[2]);
        assert_ne!(paths[0], paths[2]);
    }

    #[test]
    fn layer_locations() {
        assert_eq!(
            file_layer_location(FrameworkKind::Chainer, "conv4"),
            vec!["predictor/conv4".to_string()]
        );
        let pt = file_layer_location(FrameworkKind::PyTorch, "conv4");
        assert!(pt.contains(&"state_dict/conv4.weight".to_string()));
        let pt_block = file_layer_location(FrameworkKind::PyTorch, "res2a/conv1");
        assert!(pt_block.contains(&"state_dict/res2a.conv1.weight".to_string()));
    }

    #[test]
    fn tf_conv_kernel_roundtrip_oihw_hwio() {
        let t = Tensor::from_vec((0..2 * 3 * 2 * 2).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let (shape, data) = tensor_to_file_layout(FrameworkKind::TensorFlow, "conv1/W", &t);
        assert_eq!(shape, vec![2, 2, 3, 2]); // HWIO
        assert_ne!(data, t.data()); // actually permuted
        let back = tensor_from_file_layout(FrameworkKind::TensorFlow, "conv1/W", t.shape(), &data);
        assert_eq!(back, t);
    }

    #[test]
    fn tf_dense_kernel_is_transposed() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let (shape, data) = tensor_to_file_layout(FrameworkKind::TensorFlow, "fc/W", &t);
        assert_eq!(shape, vec![3, 2]);
        assert_eq!(data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let back = tensor_from_file_layout(FrameworkKind::TensorFlow, "fc/W", &[2, 3], &data);
        assert_eq!(back, t);
    }

    #[test]
    fn non_kernels_and_other_frameworks_are_identity() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        for fw in FrameworkKind::all() {
            let (shape, data) = tensor_to_file_layout(fw, "conv1/b", &t);
            assert_eq!(shape, vec![2]);
            assert_eq!(data, t.data());
        }
        let k = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let (_, data) = tensor_to_file_layout(FrameworkKind::PyTorch, "fc/W", &k);
        assert_eq!(data, k.data());
    }
}
