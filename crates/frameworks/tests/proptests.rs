//! Property-based tests for the framework layout mappings — the layer on
//! which "equivalent, not equal" injection rests.

use proptest::prelude::*;
use sefi_frameworks::{
    engine_to_file_path, tensor_from_file_layout, tensor_to_file_layout, FrameworkKind,
};
use sefi_tensor::Tensor;

fn any_framework() -> impl Strategy<Value = FrameworkKind> {
    prop_oneof![
        Just(FrameworkKind::Chainer),
        Just(FrameworkKind::PyTorch),
        Just(FrameworkKind::TensorFlow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layout conversion must be an exact inverse for every kernel shape.
    #[test]
    fn conv_kernel_layout_roundtrips(
        fw in any_framework(),
        o in 1usize..6,
        i in 1usize..6,
        k in 1usize..4,
        seed in any::<u32>(),
    ) {
        let n = o * i * k * k;
        let data: Vec<f32> = (0..n).map(|j| ((j as u32).wrapping_mul(seed) % 1000) as f32 / 37.0).collect();
        let t = Tensor::from_vec(data, &[o, i, k, k]);
        let (shape, stored) = tensor_to_file_layout(fw, "conv/W", &t);
        prop_assert_eq!(shape.iter().product::<usize>(), n);
        let back = tensor_from_file_layout(fw, "conv/W", t.shape(), &stored);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn dense_kernel_layout_roundtrips(
        fw in any_framework(),
        o in 1usize..10,
        i in 1usize..10,
    ) {
        let n = o * i;
        let data: Vec<f32> = (0..n).map(|j| j as f32 * 0.7 - 3.0).collect();
        let t = Tensor::from_vec(data, &[o, i]);
        let (_, stored) = tensor_to_file_layout(fw, "fc/W", &t);
        let back = tensor_from_file_layout(fw, "fc/W", t.shape(), &stored);
        prop_assert_eq!(back, t);
    }

    /// TensorFlow's stored kernel is a permutation of the engine kernel:
    /// same multiset of values, different order (unless degenerate).
    #[test]
    fn tf_layout_is_a_value_preserving_permutation(
        o in 2usize..5,
        i in 2usize..5,
        k in 2usize..4,
    ) {
        let n = o * i * k * k;
        let data: Vec<f32> = (0..n).map(|j| j as f32).collect();
        let t = Tensor::from_vec(data.clone(), &[o, i, k, k]);
        let (_, stored) = tensor_to_file_layout(FrameworkKind::TensorFlow, "conv/W", &t);
        let mut sorted_in = data;
        let mut sorted_out = stored.clone();
        sorted_in.sort_by(f32::total_cmp);
        sorted_out.sort_by(f32::total_cmp);
        prop_assert_eq!(sorted_in, sorted_out);
        prop_assert_ne!(stored, t.data().to_vec());
    }

    /// Path mapping is injective per framework: distinct engine paths never
    /// collide in the checkpoint. (A layer owns either conv/dense leaves or
    /// batch-norm leaves, mirroring real modules — PyTorch deliberately
    /// maps `W` and `gamma` to the same `.weight` suffix, which is only
    /// unambiguous because no module has both.)
    #[test]
    fn path_mapping_is_injective(
        fw in any_framework(),
        layers in prop::collection::hash_set("[a-z][a-z0-9_]{1,8}", 2..6),
        kinds in prop::collection::vec(any::<bool>(), 6),
    ) {
        let mut seen = std::collections::HashSet::new();
        for (idx, layer) in layers.iter().enumerate() {
            let is_bn = kinds[idx % kinds.len()];
            let leaves: &[&str] = if is_bn {
                &["gamma", "beta", "running_mean", "running_var"]
            } else {
                &["W", "b"]
            };
            for leaf in leaves {
                let path = engine_to_file_path(fw, &format!("{layer}/{leaf}"));
                prop_assert!(seen.insert(path.clone()), "collision at {path}");
            }
        }
    }

    /// Every mapped path lives under the framework's root group.
    #[test]
    fn mapped_paths_are_rooted(fw in any_framework(), layer in "[a-z][a-z0-9_]{1,8}") {
        let path = engine_to_file_path(fw, &format!("{layer}/W"));
        prop_assert!(path.starts_with(fw.root_group()), "{path}");
        sefi_hdf5::validate_path(&path).unwrap();
    }
}
