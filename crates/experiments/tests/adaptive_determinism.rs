//! Adaptive-campaign determinism: the stopping trace and the assembled
//! table must be identical at any thread count, across a mid-wave
//! kill/resume, and between a single process and N sharded workers — with
//! stale lease files from dead workers lying around.
//!
//! These tests set `RAYON_NUM_THREADS` (process-global), so they live in
//! their own integration-test binary and serialize on [`ENV_LOCK`].

use sefi_experiments::{
    AdaptiveCell, AdaptiveCellResult, Budget, CampaignConfig, CellPlan, CellTrace, Prebaked,
    ShardWorkerConfig, StoppingRule, TrialOutcome,
};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;
use sefi_telemetry::digest64;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `RAYON_NUM_THREADS=n`, restoring the environment after.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// The cells' stopping rule: waves of 2, stop at width ≤ 0.66 (which a
/// 0/2 or 2/2 first wave satisfies at ≈ 0.658, but an even split never
/// does before the cap), cap 6.
fn rule() -> StoppingRule {
    StoppingRule::new(2, 0.66, 6)
}

/// Four synthetic strata exercising every stopping path: a cell that
/// always collapses (stops after wave 0), one that never does (ditto),
/// one genuinely mixed (runs to the cap), and one whose every third trial
/// fails (exclusions shrink the classified count but not determinism).
/// Trial bodies sleep seed-derived jitter so multi-worker pools finish
/// far out of submission order.
type TrialFn = fn(usize, u64) -> TrialOutcome;

fn adaptive_cells(executed: &AtomicUsize) -> Vec<AdaptiveCell<'_>> {
    let specs: [(&'static str, TrialFn); 4] = [
        ("always", |_, _| TrialOutcome::ok().with_collapsed(true)),
        ("never", |_, _| TrialOutcome::ok().with_collapsed(false)),
        ("mixed", |t, _| TrialOutcome::ok().with_collapsed(t % 2 == 0)),
        ("flaky", |t, seed| {
            if t % 3 == 2 {
                TrialOutcome::failed("synthetic harness fault")
            } else {
                TrialOutcome::ok().with_collapsed(seed % 4 < 2)
            }
        }),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (label, make))| {
            let fw = FrameworkKind::all()[i % 3];
            let model = ModelKind::all()[(i + 1) % 3];
            let plan =
                CellPlan::new("adapt", label, fw, model, rule().max_trials, move |trial, seed| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1 + seed % 5));
                    Ok(make(trial, seed))
                });
            AdaptiveCell::new(
                plan,
                rule(),
                |o: &TrialOutcome| {
                    if o.is_failed() {
                        None
                    } else {
                        Some(o.collapsed)
                    }
                },
            )
        })
        .collect()
}

/// Render the adaptive results — the byte-identity artifact every
/// configuration is diffed against (trials used, collapse counts, and the
/// full stopping trace).
fn render(results: &[AdaptiveCellResult]) -> String {
    let mut table = sefi_experiments::table::TextTable::new(&[
        "Cell",
        "Used",
        "Collapsed",
        "Failed",
        "Waves",
        "Capped",
        "FinalWidth",
    ]);
    for (i, r) in results.iter().enumerate() {
        let collapsed = r.outcomes.iter().filter(|o| o.collapsed).count();
        let failed = r.outcomes.iter().filter(|o| o.is_failed()).count();
        table.row(vec![
            i.to_string(),
            r.trace.trials_used.to_string(),
            collapsed.to_string(),
            failed.to_string(),
            r.trace.waves.len().to_string(),
            r.trace.capped.to_string(),
            format!("{:.12}", r.trace.waves.last().map_or(f64::NAN, |w| w.width)),
        ]);
    }
    table.render()
}

fn traces(results: &[AdaptiveCellResult]) -> Vec<CellTrace> {
    results.iter().map(|r| r.trace.clone()).collect()
}

/// Unique scratch directory for campaign tests (parallel-safe).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sefi_adapt_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn stopping_traces_are_identical_across_thread_counts() {
    let pre = Prebaked::new(Budget::smoke());
    let executed = AtomicUsize::new(0);
    let cells = adaptive_cells(&executed);
    let cap_total = cells.len() * rule().max_trials;

    let reference = with_threads(1, || pre.run_adaptive(&cells));
    let used: usize = reference.iter().map(|r| r.trace.trials_used).sum();
    assert!(used < cap_total, "extreme cells must stop before the cap ({used} of {cap_total})");
    // Decisive strata stop after one wave; the mixed stratum runs out.
    assert_eq!(reference[0].trace.trials_used, 2, "always-collapses stops at wave 0");
    assert_eq!(reference[1].trace.trials_used, 2, "never-collapses stops at wave 0");
    assert_eq!(reference[2].trace.trials_used, 6, "mixed runs to the cap");

    let (ref_render, ref_traces) = (render(&reference), traces(&reference));
    for threads in [2, 8] {
        let results = with_threads(threads, || pre.run_adaptive(&cells));
        assert_eq!(traces(&results), ref_traces, "stopping trace diverged at {threads} threads");
        assert_eq!(render(&results), ref_render, "table diverged at {threads} threads");
    }
}

#[test]
fn resume_after_mid_wave_kill_replays_the_same_trace() {
    let dir_ref = scratch_dir("ref");
    let dir_kill = scratch_dir("kill");
    let executed = AtomicUsize::new(0);

    // Ground truth: an uninterrupted adaptive campaign.
    let (ref_render, ref_traces) = {
        let pre = Prebaked::with_campaign(
            Budget::smoke(),
            CampaignConfig::new("adapt").results_dir(&dir_ref),
        )
        .unwrap();
        let cells = adaptive_cells(&executed);
        let results = with_threads(4, || pre.run_adaptive(&cells));
        (render(&results), traces(&results))
    };
    let full_executions = executed.swap(0, Ordering::Relaxed);
    let telemetry = std::fs::read_to_string(dir_ref.join("telemetry.jsonl")).unwrap();
    assert!(telemetry.contains("\"WaveEnd\""), "adaptive campaigns must emit WaveEnd events");

    // The same campaign, killed mid-wave: run it fully, then truncate the
    // manifest to a prefix that ends inside a wave (records land in pool
    // completion order, so a prefix cut is exactly what `kill -9` leaves).
    {
        let pre = Prebaked::with_campaign(
            Budget::smoke(),
            CampaignConfig::new("adapt").results_dir(&dir_kill),
        )
        .unwrap();
        let cells = adaptive_cells(&executed);
        with_threads(4, || pre.run_adaptive(&cells));
    }
    let manifest_path = dir_kill.join("adapt/manifest.jsonl");
    let recorded: Vec<String> =
        std::fs::read_to_string(&manifest_path).unwrap().lines().map(String::from).collect();
    let keep = recorded.len() / 2;
    std::fs::write(&manifest_path, format!("{}\n", recorded[..keep].join("\n"))).unwrap();
    executed.store(0, Ordering::Relaxed);

    // Resume: a fresh runner over the truncated manifest must re-execute
    // only the lost trials and converge on the identical trace and table.
    let pre = Prebaked::with_campaign(
        Budget::smoke(),
        CampaignConfig::new("adapt").results_dir(&dir_kill),
    )
    .unwrap();
    let cells = adaptive_cells(&executed);
    let results = with_threads(8, || pre.run_adaptive(&cells));
    let resumed_executions = executed.load(Ordering::Relaxed);
    assert!(
        resumed_executions < full_executions,
        "resume re-executed everything ({resumed_executions} of {full_executions})"
    );
    assert_eq!(traces(&results), ref_traces, "resumed stopping trace diverged");
    assert_eq!(render(&results), ref_render, "resumed table diverged");

    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_kill);
}

#[test]
fn sharded_workers_match_the_single_process_table() {
    let dir_solo = scratch_dir("solo");
    let dir_duo = scratch_dir("duo");
    let executed_solo = AtomicUsize::new(0);

    // Single-process reference.
    let (ref_render, ref_traces) = {
        let pre = Prebaked::with_campaign(
            Budget::smoke(),
            CampaignConfig::new("adapt").results_dir(&dir_solo),
        )
        .unwrap();
        let cells = adaptive_cells(&executed_solo);
        let results = with_threads(4, || pre.run_adaptive(&cells));
        (render(&results), traces(&results))
    };

    // A dead worker's stale lease on the first cell's first wave: it must
    // be broken (mtime far past the TTL), not deadlock the campaign.
    let leases = dir_duo.join("leases");
    std::fs::create_dir_all(&leases).unwrap();
    let stale_key = format!("{}-w0", digest64("adapt/always"));
    let stale = leases.join(format!("{stale_key}.lease"));
    std::fs::write(&stale, "dead-worker\n").unwrap();
    let long_ago = std::time::SystemTime::now() - Duration::from_secs(3600);
    std::fs::File::options().write(true).open(&stale).unwrap().set_modified(long_ago).unwrap();

    // Two sharded workers racing over one results directory, each with its
    // own runner instance and manifest shard.
    let executed_duo = AtomicUsize::new(0);
    let worker = |tag: &str| {
        let pre = Prebaked::with_campaign(
            Budget::smoke(),
            CampaignConfig::new("adapt").results_dir(&dir_duo).shard_id(tag),
        )
        .unwrap();
        let cells = adaptive_cells(&executed_duo);
        let cfg = ShardWorkerConfig {
            lease_ttl: Duration::from_secs(5),
            poll: Duration::from_millis(10),
        };
        pre.run_adaptive_sharded(&cells, &cfg).expect("sharded run completes")
    };
    let (res1, res2) = std::thread::scope(|s| {
        let w1 = s.spawn(|| worker("w1"));
        let w2 = s.spawn(|| worker("w2"));
        (w1.join().expect("worker 1"), w2.join().expect("worker 2"))
    });

    // Every worker assembles the same result, and it is byte-identical to
    // the single-process run.
    assert_eq!(traces(&res1), ref_traces, "worker 1 trace diverged");
    assert_eq!(traces(&res2), ref_traces, "worker 2 trace diverged");
    assert_eq!(render(&res1), ref_render, "worker 1 table diverged");
    assert_eq!(render(&res2), ref_render, "worker 2 table diverged");
    // Leases kept the workers off each other's waves: the duo executed
    // exactly what the solo run executed, not double.
    assert_eq!(
        executed_duo.load(Ordering::Relaxed),
        executed_solo.load(Ordering::Relaxed),
        "sharded workers duplicated trial executions"
    );
    // The dead worker's lease was broken and cleaned up.
    assert!(!stale.exists(), "stale lease survived the campaign");

    let _ = std::fs::remove_dir_all(&dir_solo);
    let _ = std::fs::remove_dir_all(&dir_duo);
}
