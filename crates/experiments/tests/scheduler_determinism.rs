//! Scheduler determinism at campaign scale: a mini-campaign (two
//! experiments, heterogeneous trial counts *and* trial durations) must
//! render byte-identical tables at every worker count, and a campaign
//! killed between the cells of a phase must resume from its manifests
//! without re-executing a single completed trial.
//!
//! These tests set `RAYON_NUM_THREADS` (process-global), so they live in
//! their own integration-test binary and serialize on [`ENV_LOCK`].

use sefi_experiments::{Budget, CampaignConfig, CellPlan, Prebaked, TrialOutcome};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `RAYON_NUM_THREADS=n`, restoring the environment after.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// The mini-campaign phase: two experiments sharing one pool, five cells
/// with trial counts 1–4 and per-trial sleeps derived from the seed, so a
/// multi-worker pool finishes cells far out of submission order.
fn mini_plans<'p>(executed: &'p AtomicUsize) -> Vec<CellPlan<'p>> {
    let mut plans = Vec::new();
    for (experiment, cells, sleep_spread) in [("alpha", 3usize, 7u64), ("beta", 2, 11)] {
        for i in 0..cells {
            let fw = FrameworkKind::all()[i % 3];
            let model = ModelKind::all()[(i + 1) % 3];
            let trials = 1 + (i + cells) % 4;
            plans.push(CellPlan::new(
                experiment,
                format!("{experiment}-{i}"),
                fw,
                model,
                trials,
                move |trial, seed| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1 + seed % sleep_spread));
                    Ok(TrialOutcome::ok()
                        .with_accuracy((seed % 1000) as f64 / 1000.0)
                        .with_curve(vec![trial as f64, (seed % 97) as f64]))
                },
            ));
        }
    }
    plans
}

/// Render the phase's outcome table — the byte-identity artifact every
/// configuration is diffed against.
fn render(plans: &[CellPlan<'_>], pooled: &[Vec<TrialOutcome>]) -> String {
    let mut table =
        sefi_experiments::table::TextTable::new(&["Cell", "Trials", "Mean acc", "Curve sum"]);
    for (plan, outcomes) in plans.iter().zip(pooled) {
        let mean = outcomes.iter().filter_map(|o| o.final_accuracy).sum::<f64>()
            / outcomes.len().max(1) as f64;
        let curve: f64 = outcomes.iter().flat_map(|o| &o.curve).sum();
        table.row(vec![
            plan.cell().to_string(),
            plan.trials().to_string(),
            format!("{mean:.6}"),
            format!("{curve:.1}"),
        ]);
    }
    table.render()
}

/// Unique scratch directory for campaign tests (parallel-safe).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sefi_sched_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn tables_are_byte_identical_across_worker_counts() {
    let pre = Prebaked::new(Budget::smoke());
    let executed = AtomicUsize::new(0);
    let plans = mini_plans(&executed);
    let total: usize = plans.iter().map(|p| p.trials()).sum();

    let reference = with_threads(1, || render(&plans, &pre.run_plan(&plans)));
    assert_eq!(executed.load(Ordering::Relaxed), total);
    for threads in [2, 8] {
        let table = with_threads(threads, || render(&plans, &pre.run_plan(&plans)));
        assert_eq!(
            table, reference,
            "table rendered at {threads} workers diverged from the single-threaded rendering"
        );
    }
    assert_eq!(executed.load(Ordering::Relaxed), 3 * total, "no caching without a campaign");
}

#[test]
fn campaign_killed_between_cells_resumes_without_rerunning() {
    let dir = scratch_dir("kill");
    let cfg = CampaignConfig::new("mini").results_dir(&dir);
    let executed = AtomicUsize::new(0);
    let plans = mini_plans(&executed);
    let total: usize = plans.iter().map(|p| p.trials()).sum();
    let first_two: usize = plans[..2].iter().map(|p| p.trials()).sum();

    // The uninterrupted single-threaded rendering is the ground truth.
    let reference = {
        let pre = Prebaked::new(Budget::smoke());
        with_threads(1, || render(&plans, &pre.run_plan(&plans)))
    };
    executed.store(0, Ordering::Relaxed);

    // Phase killed after its first two cells: only those trials reach the
    // manifests, then the runner is dropped mid-phase.
    let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
    with_threads(2, || pre1.run_plan(&plans[..2]));
    assert_eq!(executed.load(Ordering::Relaxed), first_two);
    assert_eq!(pre1.campaign_totals(), Some((first_two as u64, 0)));
    drop(pre1);

    // A fresh runner over the same manifests, at a different worker
    // count, serves the completed cells from disk and executes only the
    // missing ones — and the rendered table still matches byte for byte.
    let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
    let table = with_threads(8, || render(&plans, &pre2.run_plan(&plans)));
    assert_eq!(executed.load(Ordering::Relaxed), total, "cached trials must not re-execute");
    assert_eq!(pre2.campaign_totals(), Some(((total - first_two) as u64, first_two as u64)));
    assert_eq!(table, reference, "resumed table diverged from the uninterrupted rendering");
    assert!(dir.join("alpha/manifest.jsonl").exists());
    assert!(dir.join("beta/manifest.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
