//! Campaign results must not depend on the kernel generation: a training
//! run under the tiled kernels and the same run under the retained naive
//! reference must produce the *bit-identical* history and checkpoint.
//! This is what licenses using the fast kernels for every experiment in
//! the paper reproduction — they are a pure speedup, not a numerical
//! variation source.
//!
//! Own binary: the kernel mode is process-global.

use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};
use sefi_nn::EpochRecord;
use sefi_tensor::{set_kernel_mode, KernelMode};

fn run(mode: KernelMode) -> (Vec<EpochRecord>, f64, Vec<u8>) {
    set_kernel_mode(mode);
    let data = SyntheticCifar10::generate(DataConfig {
        train: 96,
        test: 48,
        image_size: 16,
        seed: 11,
        noise: 0.2,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, ModelKind::AlexNet, 5);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 24;
    let mut s = Session::new(cfg);
    let out = s.train_to(&data, 3);
    let acc = s.test_accuracy(&data);
    let bytes = s.checkpoint(Dtype::F64).to_bytes();
    (out.history().to_vec(), acc, bytes)
}

#[test]
fn training_is_bit_identical_across_kernel_generations() {
    let (tiled_hist, tiled_acc, tiled_ck) = run(KernelMode::Tiled);
    let (naive_hist, naive_acc, naive_ck) = run(KernelMode::Naive);
    set_kernel_mode(KernelMode::Tiled);
    assert_eq!(tiled_hist, naive_hist, "epoch histories diverged");
    assert_eq!(
        tiled_acc.to_bits(),
        naive_acc.to_bits(),
        "final accuracy diverged: {tiled_acc} vs {naive_acc}"
    );
    assert_eq!(tiled_ck, naive_ck, "checkpoint bytes diverged");
}
