//! Campaign results must not depend on the kernel generation: a training
//! run under the vectorized simd kernels, the same run under the scalar
//! tiled driver, and the same run under the retained naive reference must
//! all produce the *bit-identical* history and checkpoint bytes. This is
//! what licenses using the fast kernels for every experiment in the paper
//! reproduction — they are a pure speedup, not a numerical variation
//! source — and it is the end-to-end face of the lane-stable determinism
//! contract (DESIGN.md §6).
//!
//! Own binary: the kernel mode is process-global.

use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{ModelConfig, ModelKind};
use sefi_nn::EpochRecord;
use sefi_tensor::{set_kernel_mode, KernelMode};

fn run(mode: KernelMode) -> (Vec<EpochRecord>, f64, Vec<u8>) {
    set_kernel_mode(mode);
    let data = SyntheticCifar10::generate(DataConfig {
        train: 96,
        test: 48,
        image_size: 16,
        seed: 11,
        noise: 0.2,
    });
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, ModelKind::AlexNet, 5);
    cfg.model_config = ModelConfig { scale: 0.05, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 24;
    let mut s = Session::new(cfg);
    let out = s.train_to(&data, 3);
    let acc = s.test_accuracy(&data);
    let bytes = s.checkpoint(Dtype::F64).to_bytes();
    (out.history().to_vec(), acc, bytes)
}

#[test]
fn training_is_bit_identical_across_kernel_generations() {
    let (simd_hist, simd_acc, simd_ck) = run(KernelMode::Simd);
    for (mode, name) in [(KernelMode::Tiled, "tiled"), (KernelMode::Naive, "naive")] {
        let (hist, acc, ck) = run(mode);
        assert_eq!(simd_hist, hist, "epoch histories diverged (simd vs {name})");
        assert_eq!(
            simd_acc.to_bits(),
            acc.to_bits(),
            "final accuracy diverged (simd vs {name}): {simd_acc} vs {acc}"
        );
        assert_eq!(simd_ck, ck, "checkpoint bytes diverged (simd vs {name})");
    }
    set_kernel_mode(KernelMode::Simd);
}
