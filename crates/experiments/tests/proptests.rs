//! Property-based tests for the campaign seed derivation and the adaptive
//! stopping layer.
//!
//! `combo_seed_parts` is the manifest resume key: two distinct
//! (framework, model, label, trial) combinations sharing a seed would let
//! one cell's recorded outcome silently answer for another. The fields are
//! hashed behind length prefixes precisely so that moving bytes across a
//! field boundary — ("ab","c") vs ("a","bc") — changes the stream.
//!
//! `replay` is the adaptive campaign's stopping decision: a pure function
//! of the classified outcome sequence. Its purity and prefix stability are
//! exactly what makes adaptive results reproducible across thread counts,
//! worker counts, and kill/resume, so they are pinned as properties here.

use proptest::prelude::*;
use sefi_experiments::{combo_seed_parts, replay, wilson_interval, StoppingRule};

fn short_id() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,6}"
}

proptest! {
    /// Re-splitting the same concatenated bytes at a different field
    /// boundary must change the seed (the historical collision class).
    #[test]
    fn seed_distinguishes_field_boundaries(
        fw in short_id(),
        model in short_id(),
        label in short_id(),
        trial in 0usize..32,
        shift in 1usize..4,
    ) {
        // Move `shift` trailing bytes of `fw` onto the front of `model`.
        prop_assume!(fw.len() >= shift);
        let moved_fw = &fw[..fw.len() - shift];
        let moved_model = format!("{}{}", &fw[fw.len() - shift..], model);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, trial),
            combo_seed_parts(moved_fw, &moved_model, &label, trial),
            "boundary shift between fw/model must reseed"
        );
    }

    /// Same, for the model/label boundary.
    #[test]
    fn seed_distinguishes_model_label_boundary(
        fw in short_id(),
        model in short_id(),
        label in short_id(),
        trial in 0usize..32,
        shift in 1usize..4,
    ) {
        prop_assume!(model.len() >= shift);
        let moved_model = &model[..model.len() - shift];
        let moved_label = format!("{}{}", &model[model.len() - shift..], label);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, trial),
            combo_seed_parts(&fw, moved_model, &moved_label, trial),
            "boundary shift between model/label must reseed"
        );
    }

    /// Injectivity over a brute-forced space of short ids: no two distinct
    /// (fw, model, label) triples may collide for the same trial.
    #[test]
    fn seed_is_injective_over_short_ids(trial in 0usize..8) {
        use std::collections::HashMap;
        let parts = ["", "a", "b", "ab", "ba", "aa", "abc"];
        let mut seen: HashMap<u64, (usize, usize, usize)> = HashMap::new();
        for (i, fw) in parts.iter().enumerate() {
            for (j, model) in parts.iter().enumerate() {
                for (k, label) in parts.iter().enumerate() {
                    let seed = combo_seed_parts(fw, model, label, trial);
                    if let Some(prev) = seen.insert(seed, (i, j, k)) {
                        prop_assert_eq!(prev, (i, j, k), "collision at seed {:#x}", seed);
                    }
                }
            }
        }
    }

    /// The trial index must always perturb the seed.
    #[test]
    fn seed_depends_on_trial(fw in short_id(), model in short_id(), label in short_id(),
                             a in 0usize..64, b in 0usize..64) {
        prop_assume!(a != b);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, a),
            combo_seed_parts(&fw, &model, &label, b)
        );
    }

    /// Wilson bounds are a valid interval containing the point estimate.
    #[test]
    fn wilson_interval_brackets_the_estimate(s in 0u64..=200, n in 0u64..=200,
                                             z in 0.5f64..4.0) {
        prop_assume!(s <= n);
        let (lo, hi) = wilson_interval(s, n, z);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        if n > 0 {
            let p = s as f64 / n as f64;
            prop_assert!(lo <= p && p <= hi, "p̂ = {p} outside [{lo}, {hi}]");
        }
    }

    /// More evidence at the same rate never widens the interval.
    #[test]
    fn wilson_width_shrinks_with_n(s in 0u64..=20, n in 1u64..=20, k in 2u64..=8) {
        prop_assume!(s <= n);
        let (lo1, hi1) = wilson_interval(s, n, 1.96);
        let (lo2, hi2) = wilson_interval(s * k, n * k, 1.96);
        prop_assert!(hi2 - lo2 <= hi1 - lo1 + 1e-12);
    }

    /// Replay is deterministic and prefix-stable: extending the outcome
    /// sequence never rewrites already-taken wave decisions, and a stopped
    /// trace is final. This is the stopping-trace determinism argument in
    /// miniature (DESIGN.md §10).
    #[test]
    fn replay_is_pure_and_prefix_stable(
        raw in prop::collection::vec(0u8..3, 0..40),
        wave in 1usize..6,
        cap in 1usize..40,
        width in 0.05f64..1.0,
    ) {
        // 0 → excluded (failed trial), 1 → Some(false), 2 → Some(true).
        let classes: Vec<Option<bool>> =
            raw.iter().map(|&v| match v { 0 => None, 1 => Some(false), _ => Some(true) }).collect();
        let rule = StoppingRule::new(wave, width, cap.max(wave));
        let full = replay(&rule, &classes);
        // Purity: identical inputs give identical traces, bit for bit.
        prop_assert_eq!(&full, &replay(&rule, &classes));
        // The cap is honored.
        prop_assert!(full.trials_used <= rule.max_trials);
        // Prefix stability: every shorter prefix's trace is a prefix of
        // the full trace (until the full trace stops).
        for cut in 0..classes.len() {
            let partial = replay(&rule, &classes[..cut]);
            let shared = partial.waves.len().min(full.waves.len());
            prop_assert_eq!(&partial.waves[..shared], &full.waves[..shared],
                            "wave decisions rewritten at cut {}", cut);
        }
        // A stopped trace ignores further evidence entirely.
        if full.stopped() {
            let mut extended = classes.clone();
            extended.extend([Some(true), Some(false), None]);
            prop_assert_eq!(&full, &replay(&rule, &extended));
        }
    }
}
