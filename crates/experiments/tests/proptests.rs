//! Property-based tests for the campaign seed derivation.
//!
//! `combo_seed_parts` is the manifest resume key: two distinct
//! (framework, model, label, trial) combinations sharing a seed would let
//! one cell's recorded outcome silently answer for another. The fields are
//! hashed behind length prefixes precisely so that moving bytes across a
//! field boundary — ("ab","c") vs ("a","bc") — changes the stream.

use proptest::prelude::*;
use sefi_experiments::combo_seed_parts;

fn short_id() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,6}"
}

proptest! {
    /// Re-splitting the same concatenated bytes at a different field
    /// boundary must change the seed (the historical collision class).
    #[test]
    fn seed_distinguishes_field_boundaries(
        fw in short_id(),
        model in short_id(),
        label in short_id(),
        trial in 0usize..32,
        shift in 1usize..4,
    ) {
        // Move `shift` trailing bytes of `fw` onto the front of `model`.
        prop_assume!(fw.len() >= shift);
        let moved_fw = &fw[..fw.len() - shift];
        let moved_model = format!("{}{}", &fw[fw.len() - shift..], model);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, trial),
            combo_seed_parts(moved_fw, &moved_model, &label, trial),
            "boundary shift between fw/model must reseed"
        );
    }

    /// Same, for the model/label boundary.
    #[test]
    fn seed_distinguishes_model_label_boundary(
        fw in short_id(),
        model in short_id(),
        label in short_id(),
        trial in 0usize..32,
        shift in 1usize..4,
    ) {
        prop_assume!(model.len() >= shift);
        let moved_model = &model[..model.len() - shift];
        let moved_label = format!("{}{}", &model[model.len() - shift..], label);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, trial),
            combo_seed_parts(&fw, moved_model, &moved_label, trial),
            "boundary shift between model/label must reseed"
        );
    }

    /// Injectivity over a brute-forced space of short ids: no two distinct
    /// (fw, model, label) triples may collide for the same trial.
    #[test]
    fn seed_is_injective_over_short_ids(trial in 0usize..8) {
        use std::collections::HashMap;
        let parts = ["", "a", "b", "ab", "ba", "aa", "abc"];
        let mut seen: HashMap<u64, (usize, usize, usize)> = HashMap::new();
        for (i, fw) in parts.iter().enumerate() {
            for (j, model) in parts.iter().enumerate() {
                for (k, label) in parts.iter().enumerate() {
                    let seed = combo_seed_parts(fw, model, label, trial);
                    if let Some(prev) = seen.insert(seed, (i, j, k)) {
                        prop_assert_eq!(prev, (i, j, k), "collision at seed {:#x}", seed);
                    }
                }
            }
        }
    }

    /// The trial index must always perturb the seed.
    #[test]
    fn seed_depends_on_trial(fw in short_id(), model in short_id(), label in short_id(),
                             a in 0usize..64, b in 0usize..64) {
        prop_assume!(a != b);
        prop_assert_ne!(
            combo_seed_parts(&fw, &model, &label, a),
            combo_seed_parts(&fw, &model, &label, b)
        );
    }
}
