//! Integration tests of the experiment harness itself at smoke scale:
//! the structural guarantees every table/figure build on.

use sefi_experiments::{
    exp_bitranges, exp_curves, exp_nev, exp_rwc, Budget, CampaignConfig, CellPlan, Prebaked,
    TrialOutcome,
};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

#[test]
fn non_finite_measurements_become_recorded_failures_not_panics() {
    // A trial that measures a NaN accuracy (NEV-corrupted evaluation paths
    // can produce one) must not poison the manifest or kill the campaign:
    // the outcome is recorded as failed and every other trial proceeds.
    let dir = std::env::temp_dir().join(format!("sefi_nan_outcome_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CampaignConfig::new("nan-probe").results_dir(&dir);
    let plan = || {
        CellPlan::new(
            "nanexp",
            "poisoned",
            FrameworkKind::PyTorch,
            ModelKind::AlexNet,
            3,
            |trial, _| {
                Ok(if trial == 1 {
                    TrialOutcome::ok().with_accuracy(f64::NAN)
                } else {
                    TrialOutcome::ok().with_accuracy(0.5)
                })
            },
        )
    };
    let pre = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
    let outcomes = pre.run_plan(&[plan()]).pop().unwrap();
    assert!(outcomes[1].is_failed(), "NaN accuracy must be recorded as a failure");
    assert!(outcomes[1].failure.as_deref().unwrap_or("").contains("non-finite"));
    assert_eq!(outcomes[1].final_accuracy, None, "the NaN must not reach the manifest");
    assert!(!outcomes[0].is_failed() && !outcomes[2].is_failed(), "other trials proceed");
    assert_eq!(pre.campaign_failed(), Some(1));
    drop(pre);

    // The manifest the failure went through stays parseable: a resumed
    // campaign serves all three records without re-executing anything.
    let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
    let outcomes2 = pre2.run_plan(&[plan()]).pop().unwrap();
    assert_eq!(pre2.campaign_totals(), Some((0, 3)), "all three records must be served");
    assert!(outcomes2[1].is_failed());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cells_are_reproducible_functions_of_their_inputs() {
    let pre = Prebaked::new(Budget::smoke());
    let a = exp_nev::nev_cell(
        &pre,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    let b = exp_nev::nev_cell(
        &pre,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    assert_eq!(a.nev, b.nev, "a table cell must be deterministic");
    // And a fresh Prebaked (new pretraining via cache) agrees too.
    let pre2 = Prebaked::new(Budget::smoke());
    let c = exp_nev::nev_cell(
        &pre2,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    assert_eq!(a.nev, c.nev, "cells must not depend on harness instance");
}

#[test]
fn rwc_is_total_when_nothing_is_injected() {
    // The RWC definition's sanity anchor: with zero deviation sources, the
    // baseline equals itself.
    let pre = Prebaked::new(Budget::smoke());
    let baseline = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
    for fw in FrameworkKind::all() {
        let ck = pre.checkpoint(fw, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(fw, ModelKind::AlexNet, &ck, pre.budget().resume_epochs);
        assert_eq!(out.final_accuracy().unwrap(), baseline, "{fw:?}");
    }
}

#[test]
fn figure2_and_rwc_agree_on_the_critical_bit() {
    // Cross-experiment consistency: Fig. 2 finds bit 62 is the only
    // collapse trigger; Table V (which excludes bit 62) must therefore
    // never collapse.
    let pre = Prebaked::new(Budget::smoke());
    let (rows, _) = exp_bitranges::figure2(&pre);
    assert!(exp_bitranges::collapse_only_with_critical_bit(&rows));
    let cell = exp_rwc::rwc_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 4);
    assert!(cell.max_deviation.is_finite(), "no collapsed RWC trials");
}

#[test]
fn curves_share_the_baseline_prefix() {
    // Every Figure 3 series starts from the same restart checkpoint, so at
    // the restart epoch a 0-flip curve equals the error-free baseline.
    let pre = Prebaked::new(Budget::smoke());
    let b = pre.budget();
    let baseline = pre.baseline_curve(ModelKind::AlexNet, Dtype::F64, b.curve_end_epoch);
    let zero =
        exp_curves::corrupted_curve(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 0, "t");
    for (base, z) in baseline.iter().zip(&zero.points) {
        assert_eq!(base.epoch, z.0);
        assert!((base.test_accuracy - z.1).abs() < 1e-12);
    }
}
