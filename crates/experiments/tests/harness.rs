//! Integration tests of the experiment harness itself at smoke scale:
//! the structural guarantees every table/figure build on.

use sefi_experiments::{exp_bitranges, exp_curves, exp_nev, exp_rwc, Budget, Prebaked};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

#[test]
fn cells_are_reproducible_functions_of_their_inputs() {
    let pre = Prebaked::new(Budget::smoke());
    let a = exp_nev::nev_cell(
        &pre,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    let b = exp_nev::nev_cell(
        &pre,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    assert_eq!(a.nev, b.nev, "a table cell must be deterministic");
    // And a fresh Prebaked (new pretraining via cache) agrees too.
    let pre2 = Prebaked::new(Budget::smoke());
    let c = exp_nev::nev_cell(
        &pre2,
        FrameworkKind::PyTorch,
        ModelKind::AlexNet,
        Precision::Fp64,
        100,
        4,
    );
    assert_eq!(a.nev, c.nev, "cells must not depend on harness instance");
}

#[test]
fn rwc_is_total_when_nothing_is_injected() {
    // The RWC definition's sanity anchor: with zero deviation sources, the
    // baseline equals itself.
    let pre = Prebaked::new(Budget::smoke());
    let baseline = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
    for fw in FrameworkKind::all() {
        let ck = pre.checkpoint(fw, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(fw, ModelKind::AlexNet, &ck, pre.budget().resume_epochs);
        assert_eq!(out.final_accuracy().unwrap(), baseline, "{fw:?}");
    }
}

#[test]
fn figure2_and_rwc_agree_on_the_critical_bit() {
    // Cross-experiment consistency: Fig. 2 finds bit 62 is the only
    // collapse trigger; Table V (which excludes bit 62) must therefore
    // never collapse.
    let pre = Prebaked::new(Budget::smoke());
    let (rows, _) = exp_bitranges::figure2(&pre);
    assert!(exp_bitranges::collapse_only_with_critical_bit(&rows));
    let cell = exp_rwc::rwc_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 4);
    assert!(cell.max_deviation.is_finite(), "no collapsed RWC trials");
}

#[test]
fn curves_share_the_baseline_prefix() {
    // Every Figure 3 series starts from the same restart checkpoint, so at
    // the restart epoch a 0-flip curve equals the error-free baseline.
    let pre = Prebaked::new(Budget::smoke());
    let b = pre.budget();
    let baseline = pre.baseline_curve(ModelKind::AlexNet, Dtype::F64, b.curve_end_epoch);
    let zero =
        exp_curves::corrupted_curve(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 0, "t");
    for (base, z) in baseline.iter().zip(&zero.points) {
        assert_eq!(base.epoch, z.0);
        assert!((base.test_accuracy - z.1).abs() < 1e-12);
    }
}
