//! Figure 3 — sensitivity to different bit-flip rates.
//!
//! Three panels (one per framework, each with a different model, as in the
//! paper: 3a ResNet50, 3b VGG16, 3c AlexNet). Each line is the average
//! accuracy of `curve_trials` trainings restarted from the restart-epoch
//! checkpoint with 1/10/100/1000 bit-flips (exponent MSB excluded); the
//! "green line" is the error-free full training.

use crate::runner::{CellPlan, Prebaked};
use crate::table::TextTable;
use sefi_core::{Corrupter, CorrupterConfig};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// One accuracy-vs-epoch series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label (e.g. "1000 bit-flips" or "error-free").
    pub label: String,
    /// `(epoch, mean accuracy)` points.
    pub points: Vec<(usize, f64)>,
}

/// One panel of Figure 3.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Framework of the panel.
    pub framework: FrameworkKind,
    /// Model of the panel.
    pub model: ModelKind,
    /// All series, error-free first.
    pub series: Vec<Series>,
}

/// The paper's three panels.
pub fn panels() -> [(FrameworkKind, ModelKind); 3] {
    [
        (FrameworkKind::Chainer, ModelKind::ResNet50),
        (FrameworkKind::PyTorch, ModelKind::Vgg16),
        (FrameworkKind::TensorFlow, ModelKind::AlexNet),
    ]
}

/// Declare one corrupted-restart curve cell for the scheduler.
pub fn curve_plan<'p>(
    pre: &'p Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    bitflips: u64,
    label: &str,
) -> CellPlan<'p> {
    let budget = *pre.budget();
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    let epochs = budget.curve_end_epoch - budget.restart_epoch;
    let cell = format!("curve-{label}-{bitflips}");
    CellPlan::new("curves", cell, fw, model, budget.curve_trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let mut outcome = TrialOutcome::ok();
        if bitflips > 0 {
            let cfg = CorrupterConfig::bit_flips(bitflips, Precision::Fp64, seed);
            let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
            outcome = outcome.with_counters(report.injections, report.nan_redraws, report.skipped);
        }
        let out = pre.try_resume(fw, model, &ck, epochs)?;
        Ok(outcome
            .with_collapsed(out.collapsed())
            .with_curve(out.history().iter().map(|r| r.test_accuracy).collect()))
    })
}

/// Fold one curve cell's outcomes into the mean-accuracy series.
fn curve_assemble(pre: &Prebaked, bitflips: u64, outcomes: Vec<TrialOutcome>) -> Series {
    let budget = *pre.budget();
    let epochs = budget.curve_end_epoch - budget.restart_epoch;
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let curves: Vec<Vec<f64>> =
        outcomes.into_iter().filter(|o| !o.is_failed()).map(|o| o.curve).collect();
    let points = (0..epochs)
        .map(|i| {
            let vals: Vec<f64> = curves.iter().filter_map(|c| c.get(i).copied()).collect();
            (budget.restart_epoch + i, crate::stats::mean(&vals))
        })
        .collect();
    let label = if failed > 0 {
        format!("{bitflips} bit-flips [{failed} failed]")
    } else {
        format!("{bitflips} bit-flips")
    };
    Series { label, points }
}

/// Mean resumed-accuracy curve for a corrupted restart.
pub fn corrupted_curve(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    bitflips: u64,
    label: &str,
) -> Series {
    let plan = curve_plan(pre, fw, model, bitflips, label);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    curve_assemble(pre, bitflips, outcomes)
}

/// The deterministic error-free series of a panel.
fn baseline_series(pre: &Prebaked, model: ModelKind) -> Series {
    let baseline = pre.baseline_curve(model, Dtype::F64, pre.budget().curve_end_epoch);
    Series {
        label: "error-free".to_string(),
        points: baseline.iter().map(|r| (r.epoch, r.test_accuracy)).collect(),
    }
}

/// Build one panel: the error-free full-training line plus the four
/// corrupted-restart lines (one scheduler pool).
pub fn panel(pre: &Prebaked, fw: FrameworkKind, model: ModelKind) -> Panel {
    let flips = pre.budget().bitflip_counts();
    let mut series = vec![baseline_series(pre, model)];
    let plans: Vec<CellPlan<'_>> =
        flips.iter().map(|&f| curve_plan(pre, fw, model, f, "fig3")).collect();
    let pooled = pre.run_plan(&plans);
    for (&f, outcomes) in flips.iter().zip(pooled) {
        series.push(curve_assemble(pre, f, outcomes));
    }
    Panel { framework: fw, model, series }
}

/// Figure 3 as three panels. All twelve corrupted-curve cells (three
/// panels × four flip counts) share one scheduler pool; the deterministic
/// error-free baselines are computed up front, before dispatch.
pub fn figure3(pre: &Prebaked) -> Vec<Panel> {
    let flips = pre.budget().bitflip_counts();
    let baselines: Vec<Series> =
        panels().iter().map(|&(_, model)| baseline_series(pre, model)).collect();
    let plans: Vec<CellPlan<'_>> = panels()
        .iter()
        .flat_map(|&(fw, model)| flips.iter().map(move |&f| (fw, model, f)).collect::<Vec<_>>())
        .map(|(fw, model, f)| curve_plan(pre, fw, model, f, "fig3"))
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut pooled = pooled.into_iter();
    panels()
        .iter()
        .zip(baselines)
        .map(|(&(fw, model), baseline)| {
            let mut series = vec![baseline];
            for &f in &flips {
                let outcomes = pooled.next().expect("one outcome vector per declared cell");
                series.push(curve_assemble(pre, f, outcomes));
            }
            Panel { framework: fw, model, series }
        })
        .collect()
}

/// Render a panel as an epoch × series table (the figure's data).
pub fn render_panel(p: &Panel) -> TextTable {
    let mut header: Vec<String> = vec!["epoch".to_string()];
    header.extend(p.series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);
    let epochs: Vec<usize> =
        p.series.iter().flat_map(|s| s.points.iter().map(|&(e, _)| e)).collect();
    let (lo, hi) =
        (epochs.iter().copied().min().unwrap_or(0), epochs.iter().copied().max().unwrap_or(0));
    for e in lo..=hi {
        let mut row = vec![e.to_string()];
        for s in &p.series {
            match s.points.iter().find(|&&(pe, _)| pe == e) {
                Some(&(_, acc)) => row.push(format!("{:.2}", acc * 100.0)),
                None => row.push("-".to_string()),
            }
        }
        table.row(row);
    }
    table
}

/// The paper's headline finding for Figure 3: corrupted restarts show no
/// accuracy degradation relative to the error-free line at the final epoch
/// (within a tolerance that accounts for reduced trial counts).
pub fn no_degradation(p: &Panel, tolerance: f64) -> bool {
    let last = |s: &Series| s.points.last().map(|&(_, a)| a).unwrap_or(0.0);
    let baseline = last(&p.series[0]);
    p.series[1..].iter().all(|s| last(s) >= baseline - tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn corrupted_restart_curve_has_the_resume_window() {
        let pre = Prebaked::new(Budget::smoke());
        let s = corrupted_curve(&pre, FrameworkKind::TensorFlow, ModelKind::AlexNet, 10, "t");
        let b = pre.budget();
        assert_eq!(s.points.len(), b.curve_end_epoch - b.restart_epoch);
        assert!(s.points.iter().all(|&(_, a)| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn render_shape() {
        let p = Panel {
            framework: FrameworkKind::Chainer,
            model: ModelKind::AlexNet,
            series: vec![
                Series { label: "error-free".into(), points: vec![(0, 0.3), (1, 0.4)] },
                Series { label: "1 bit-flips".into(), points: vec![(1, 0.39)] },
            ],
        };
        let t = render_panel(&p);
        let rendered = t.render();
        assert!(rendered.contains("error-free"));
        assert!(rendered.contains('-'));
    }
}
