//! Figure 4 — fault injection in different layers of AlexNet (Chainer).
//!
//! 1 000 bit-flips are aimed at the first / middle / last layer via
//! `locations_to_corrupt`; the resumed accuracy curves show the first
//! layer degrading and then recovering, while middle- and last-layer
//! injections are absorbed (Section V-C2).

use crate::exp_curves::Series;
use crate::runner::{CellPlan, Prebaked};
use sefi_core::{Corrupter, CorrupterConfig, InjectionLog, LocationSelection};
use sefi_float::Precision;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::Dtype;
use sefi_models::{LayerRole, ModelKind};
use sefi_telemetry::TrialOutcome;

/// The bit-flip count of the paper's per-layer experiments.
pub const LAYER_FLIPS: u64 = 1000;

/// The three targeted roles, in the paper's order.
pub fn roles() -> [LayerRole; 3] {
    [LayerRole::First, LayerRole::Middle, LayerRole::Last]
}

/// Human label for a role.
pub fn role_label(role: LayerRole) -> &'static str {
    match role {
        LayerRole::First => "first layer",
        LayerRole::Middle => "middle layer",
        LayerRole::Last => "last layer",
    }
}

/// Resolve the injector locations for a role in a framework/model pair
/// without training (builds the model structure only).
pub fn locations_for(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    role: LayerRole,
) -> Vec<String> {
    let mut cfg = SessionConfig::new(fw, model, 0);
    cfg.model_config = pre.budget().model_config();
    Session::new(cfg).layer_locations(role)
}

/// Declare one per-layer injection cell for the scheduler.
pub fn layer_plan<'p>(
    pre: &'p Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    role: LayerRole,
) -> CellPlan<'p> {
    let budget = *pre.budget();
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    let locations = locations_for(pre, fw, model, role);
    let epochs = budget.curve_end_epoch - budget.restart_epoch;
    let cell = format!("layer-{}", role_label(role));
    CellPlan::new("fig4", cell, fw, model, budget.curve_trials, move |trial, seed| {
        let mut ck = (*pristine).clone();
        let mut cfg = CorrupterConfig::bit_flips(LAYER_FLIPS, Precision::Fp64, seed);
        cfg.locations = LocationSelection::Listed(locations.clone());
        let (report, log) = Corrupter::new(cfg)?.corrupt_with_log(&mut ck)?;
        let out = pre.try_resume(fw, model, &ck, epochs)?;
        let mut outcome = TrialOutcome::ok()
            .with_collapsed(out.collapsed())
            .with_curve(out.history().iter().map(|r| r.test_accuracy).collect())
            .with_counters(report.injections, report.nan_redraws, report.skipped);
        if trial == 0 {
            // Figure 5 replays trial 0's injections on the other
            // frameworks; the log must survive a resume.
            outcome = outcome.with_payload(log.to_json());
        }
        Ok(outcome)
    })
}

/// Fold one layer cell's outcomes into the mean-accuracy series plus the
/// recorded trial-0 injection log.
fn layer_assemble(
    pre: &Prebaked,
    role: LayerRole,
    outcomes: &[TrialOutcome],
) -> (Series, InjectionLog) {
    let budget = *pre.budget();
    let epochs = budget.curve_end_epoch - budget.restart_epoch;
    let cell = format!("layer-{}", role_label(role));
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let points = (0..epochs)
        .map(|i| {
            let vals: Vec<f64> = outcomes
                .iter()
                .filter(|o| !o.is_failed())
                .filter_map(|o| o.curve.get(i).copied())
                .collect();
            (budget.restart_epoch + i, crate::stats::mean(&vals))
        })
        .collect();
    // An unparseable recorded log (failed trial 0, truncated payload)
    // degrades Figure 5's replay to an empty log instead of panicking.
    let log = outcomes
        .first()
        .and_then(|o| o.payload.as_deref())
        .and_then(|json| match InjectionLog::from_json(json) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("fig4 {cell}: recorded injection log unparseable: {e}");
                None
            }
        })
        .unwrap_or_default();
    let label = if failed > 0 {
        format!("{} ({LAYER_FLIPS} flips) [{failed} failed]", role_label(role))
    } else {
        format!("{} ({LAYER_FLIPS} flips)", role_label(role))
    };
    (Series { label, points }, log)
}

/// Corrupt `LAYER_FLIPS` flips into one layer and resume; returns the mean
/// accuracy curve and the injection log of trial 0 (for Figure 5's
/// equivalent-injection replay).
pub fn layer_curve(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    role: LayerRole,
) -> (Series, InjectionLog) {
    let plan = layer_plan(pre, fw, model, role);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    layer_assemble(pre, role, &outcomes)
}

/// Figure 4: Chainer/AlexNet, all three roles plus the error-free line,
/// the three role cells sharing one scheduler pool. Also returns the
/// per-role logs used by Figure 5.
pub fn figure4(pre: &Prebaked) -> (Vec<Series>, Vec<(LayerRole, InjectionLog)>) {
    let budget = *pre.budget();
    let baseline = pre.baseline_curve(ModelKind::AlexNet, Dtype::F64, budget.curve_end_epoch);
    let mut series = vec![Series {
        label: "error-free".to_string(),
        points: baseline.iter().map(|r| (r.epoch, r.test_accuracy)).collect(),
    }];
    let plans: Vec<CellPlan<'_>> = roles()
        .into_iter()
        .map(|role| layer_plan(pre, FrameworkKind::Chainer, ModelKind::AlexNet, role))
        .collect();
    let pooled = pre.run_plan(&plans);
    let mut logs = Vec::new();
    for (role, outcomes) in roles().into_iter().zip(&pooled) {
        let (s, log) = layer_assemble(pre, role, outcomes);
        series.push(s);
        logs.push((role, log));
    }
    (series, logs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn injections_stay_inside_the_targeted_layer() {
        let pre = Prebaked::new(Budget::smoke());
        let (_, log) =
            layer_curve(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, LayerRole::Middle);
        assert_eq!(log.len() as u64, LAYER_FLIPS);
        for r in log.records() {
            assert!(
                r.location.starts_with("predictor/conv4"),
                "record escaped target layer: {}",
                r.location
            );
        }
    }

    #[test]
    fn role_locations_per_framework() {
        let pre = Prebaked::new(Budget::smoke());
        let ch = locations_for(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, LayerRole::Last);
        assert_eq!(ch, vec!["predictor/fc8".to_string()]);
        let tf =
            locations_for(&pre, FrameworkKind::TensorFlow, ModelKind::AlexNet, LayerRole::Last);
        assert_eq!(tf, vec!["model_weights/fc8".to_string()]);
    }
}
