//! Figure 7 — dramatic corruption via scaling factors
//! (Chainer/ResNet50 heat map).
//!
//! "Instead of injecting a bit-flip into a value, we used a scaling factor
//! to alter that value. […] Modifying 10 values with a scaling factor of
//! 4,500 could cut accuracy in half." (Section VI-3). Each heat-map cell
//! scales N random weights by a factor and reports the model's accuracy
//! right after loading the corrupted checkpoint, averaged over trials.

use crate::runner::{CellPlan, Prebaked};
use crate::table::TextTable;
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// Weights-affected axis of the heat map.
pub const WEIGHTS_AXIS: [u64; 4] = [1, 10, 100, 1000];

/// Scaling-factor axis.
pub const FACTOR_AXIS: [f64; 5] = [1.5, 10.0, 100.0, 1000.0, 4500.0];

/// One heat-map cell.
#[derive(Debug, Clone)]
pub struct HeatCell {
    /// Number of weights scaled.
    pub weights: u64,
    /// Scaling factor applied.
    pub factor: f64,
    /// Mean accuracy (0–1) immediately after loading.
    pub accuracy: f64,
    /// Trials that failed to complete (excluded from the mean).
    pub failed: usize,
}

/// Declare one heat-map cell for the scheduler. A manifest record without
/// an accuracy (written by an older schema) cannot feed the heat-map mean,
/// so the plan rejects such cached records and re-runs them.
pub fn heat_plan<'p>(pre: &'p Prebaked, weights: u64, factor: f64) -> CellPlan<'p> {
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::ResNet50;
    let trials = pre.budget().curve_trials.max(3);
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    let cell = format!("heat-{weights}-{factor}");
    CellPlan::new("fig7", cell, fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let cfg = CorrupterConfig {
            injection_probability: 1.0,
            amount: InjectionAmount::Count(weights),
            float_precision: Precision::Fp64,
            mode: CorruptionMode::ScalingFactor(factor),
            allow_nan_values: true,
            locations: LocationSelection::AllRandom,
            seed,
        };
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        let mut session = pre.session_at_restart(fw, model);
        session.restore(&ck).map_err(|e| format!("restore failed: {e}"))?;
        Ok(TrialOutcome::ok().with_accuracy(session.test_accuracy(pre.data())).with_counters(
            report.injections,
            report.nan_redraws,
            report.skipped,
        ))
    })
    .validated(|o| o.final_accuracy.is_some())
}

/// Fold one heat-map cell's outcomes into the grid cell.
fn heat_assemble(weights: u64, factor: f64, outcomes: &[TrialOutcome]) -> HeatCell {
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let accs: Vec<f64> = outcomes.iter().filter_map(|o| o.final_accuracy).collect();
    HeatCell { weights, factor, accuracy: crate::stats::mean(&accs), failed }
}

/// Measure one cell.
pub fn heat_cell(pre: &Prebaked, weights: u64, factor: f64) -> HeatCell {
    let plan = heat_plan(pre, weights, factor);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    heat_assemble(weights, factor, &outcomes)
}

/// Full Figure 7 grid plus the baseline accuracy — all twenty grid cells
/// through one scheduler pool.
pub fn figure7(pre: &Prebaked) -> (Vec<HeatCell>, f64, TextTable) {
    let baseline = {
        let mut s = pre.session_at_restart(FrameworkKind::Chainer, ModelKind::ResNet50);
        s.test_accuracy(pre.data())
    };
    let mut specs = Vec::new();
    for &w in &WEIGHTS_AXIS {
        for &f in &FACTOR_AXIS {
            specs.push((w, f));
        }
    }
    let plans: Vec<CellPlan<'_>> = specs.iter().map(|&(w, f)| heat_plan(pre, w, f)).collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut header = vec!["weights\\factor".to_string()];
    header.extend(FACTOR_AXIS.iter().map(|f| format!("{f}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);
    let mut pooled = pooled.iter();
    for &w in &WEIGHTS_AXIS {
        let mut row = vec![w.to_string()];
        for &f in &FACTOR_AXIS {
            let outcomes = pooled.next().expect("one outcome vector per declared cell");
            let cell = heat_assemble(w, f, outcomes);
            row.push(if cell.failed > 0 {
                format!("{:.3} [{}F]", cell.accuracy, cell.failed)
            } else {
                format!("{:.3}", cell.accuracy)
            });
            cells.push(cell);
        }
        table.row(row);
    }
    (cells, baseline, table)
}

/// The paper's qualitative claim: heavy scaling of many weights hurts far
/// more than light scaling of few.
pub fn monotone_damage(cells: &[HeatCell]) -> bool {
    let acc = |w: u64, f: f64| -> f64 {
        cells.iter().find(|c| c.weights == w && c.factor == f).map(|c| c.accuracy).unwrap_or(0.0)
    };
    acc(1000, 4500.0) <= acc(1, 1.5) + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn extreme_scaling_damages_more_than_mild() {
        let pre = Prebaked::new(Budget::smoke());
        let mild = heat_cell(&pre, 1, 1.5);
        let severe = heat_cell(&pre, 1000, 4500.0);
        // Scaling 1000 weights by 4500 must not beat scaling 1 weight by
        // 1.5 (paper: "the effect of scaling values is dramatic").
        assert!(severe.accuracy <= mild.accuracy + 0.10, "{severe:?} vs {mild:?}");
    }
}
