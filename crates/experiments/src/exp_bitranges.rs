//! Figure 2 / Section V-B1 — which bits collapse a neural network.
//!
//! The injector's `bit_range` is swept across configurations of the 64-bit
//! IEEE-754 layout; each range gets `fig2_trainings` runs of 1 000 flips.
//! "The results show that the training collapses only when the injection
//! range accounts for the most significant bit of the exponent."

use crate::runner::{CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode};
use sefi_float::{BitRange, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// The swept ranges (64-bit layout: mantissa 0–51, exponent 52–62, sign 63).
pub fn ranges() -> Vec<(&'static str, BitRange)> {
    vec![
        ("mantissa only [0,51]", BitRange { first_bit: 0, last_bit: 51 }),
        ("low exponent [0,60]", BitRange { first_bit: 0, last_bit: 60 }),
        ("all but exp MSB [0,61]", BitRange { first_bit: 0, last_bit: 61 }),
        ("includes exp MSB [0,62]", BitRange { first_bit: 0, last_bit: 62 }),
        ("full value [0,63]", BitRange { first_bit: 0, last_bit: 63 }),
        ("exponent sans MSB [52,61]", BitRange { first_bit: 52, last_bit: 61 }),
        ("exp MSB only [62,62]", BitRange { first_bit: 62, last_bit: 62 }),
        ("sign only [63,63]", BitRange { first_bit: 63, last_bit: 63 }),
    ]
}

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct RangeRow {
    /// Human label.
    pub label: &'static str,
    /// The swept range.
    pub range: BitRange,
    /// Whether the range includes the exponent MSB (bit 62).
    pub includes_critical_bit: bool,
    /// Trainings run.
    pub trainings: usize,
    /// Trainings that collapsed.
    pub collapsed: usize,
    /// Trials that failed to complete (recorded, not counted as collapse).
    pub failed: usize,
}

/// Run the sweep (Chainer/AlexNet; 1 000 flips per training, NaN allowed —
/// the point is to observe collapse). All eight ranges are declared up
/// front and share one scheduler pool.
pub fn figure2(pre: &Prebaked) -> (Vec<RangeRow>, TextTable) {
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    let trials = pre.budget().fig2_trainings;
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    let plans: Vec<CellPlan<'_>> = ranges()
        .into_iter()
        .map(|(label, range)| {
            let pristine = std::sync::Arc::clone(&pristine);
            CellPlan::new("fig2", format!("fig2-{label}"), fw, model, trials, move |_, seed| {
                let mut ck = (*pristine).clone();
                let mut cfg = CorrupterConfig::bit_flips_full_range(1000, Precision::Fp64, seed);
                cfg.mode = CorruptionMode::BitRange(range);
                let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
                let out = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?;
                Ok(TrialOutcome::ok().with_collapsed(out.collapsed()).with_counters(
                    report.injections,
                    report.nan_redraws,
                    report.skipped,
                ))
            })
        })
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut rows = Vec::new();
    let mut table =
        TextTable::new(&["Range", "Critical bit", "Trainings", "Collapsed", "%", "Failed"]);
    for ((label, range), outcomes) in ranges().into_iter().zip(&pooled) {
        let collapsed = outcomes.iter().filter(|o| o.collapsed).count();
        let failed = outcomes.iter().filter(|o| o.is_failed()).count();
        let includes_critical_bit = range.contains(Precision::Fp64.exponent_msb());
        table.row(vec![
            label.to_string(),
            if includes_critical_bit { "yes" } else { "no" }.to_string(),
            trials.to_string(),
            collapsed.to_string(),
            pct(percent(collapsed, trials)),
            failed.to_string(),
        ]);
        rows.push(RangeRow {
            label,
            range,
            includes_critical_bit,
            trainings: trials,
            collapsed,
            failed,
        });
    }
    (rows, table)
}

/// The paper's claim: collapse ⇔ the range includes bit 62.
pub fn collapse_only_with_critical_bit(rows: &[RangeRow]) -> bool {
    rows.iter().all(|r| {
        if r.includes_critical_bit {
            r.collapsed > 0 || r.trainings == 0
        } else {
            r.collapsed == 0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_inventory_flags_critical_bit_correctly() {
        for (label, range) in ranges() {
            let flagged = range.contains(62);
            assert_eq!(flagged, range.first_bit <= 62 && 62 <= range.last_bit, "{label}");
        }
    }

    #[test]
    fn sweep_smoke() {
        let pre = Prebaked::new(crate::budget::Budget::smoke());
        let (rows, _) = figure2(&pre);
        assert_eq!(rows.len(), ranges().len());
        // The safe ranges must never collapse; the exp-MSB-only range at
        // 1000 flips collapses essentially always.
        let safe = rows.iter().find(|r| r.label.contains("all but exp MSB")).unwrap();
        assert_eq!(safe.collapsed, 0);
        let critical = rows.iter().find(|r| r.label.contains("exp MSB only")).unwrap();
        assert!(critical.collapsed >= critical.trainings.saturating_sub(1));
    }
}
