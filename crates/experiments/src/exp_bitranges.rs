//! Figure 2 / Section V-B1 — which bits collapse a neural network.
//!
//! The injector's `bit_range` is swept across configurations of the 64-bit
//! IEEE-754 layout; each range gets `fig2_trainings` runs of 1 000 flips.
//! "The results show that the training collapses only when the injection
//! range accounts for the most significant bit of the exponent."

use crate::adaptive::{classify_collapsed, AdaptiveCell, ShardWorkerConfig, StoppingRule};
use crate::runner::{CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode};
use sefi_float::{BitRange, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// The swept ranges (64-bit layout: mantissa 0–51, exponent 52–62, sign 63).
pub fn ranges() -> Vec<(&'static str, BitRange)> {
    vec![
        ("mantissa only [0,51]", BitRange { first_bit: 0, last_bit: 51 }),
        ("low exponent [0,60]", BitRange { first_bit: 0, last_bit: 60 }),
        ("all but exp MSB [0,61]", BitRange { first_bit: 0, last_bit: 61 }),
        ("includes exp MSB [0,62]", BitRange { first_bit: 0, last_bit: 62 }),
        ("full value [0,63]", BitRange { first_bit: 0, last_bit: 63 }),
        ("exponent sans MSB [52,61]", BitRange { first_bit: 52, last_bit: 61 }),
        ("exp MSB only [62,62]", BitRange { first_bit: 62, last_bit: 62 }),
        ("sign only [63,63]", BitRange { first_bit: 63, last_bit: 63 }),
    ]
}

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct RangeRow {
    /// Human label.
    pub label: &'static str,
    /// The swept range.
    pub range: BitRange,
    /// Whether the range includes the exponent MSB (bit 62).
    pub includes_critical_bit: bool,
    /// Trainings run.
    pub trainings: usize,
    /// Trainings that collapsed.
    pub collapsed: usize,
    /// Trials that failed to complete (recorded, not counted as collapse).
    pub failed: usize,
}

/// Declare one range's trials for the scheduler, keyed `fig2-{label}`.
fn range_plan<'p>(
    pre: &'p Prebaked,
    label: &'static str,
    range: BitRange,
    trials: usize,
) -> CellPlan<'p> {
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    CellPlan::new("fig2", format!("fig2-{label}"), fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let mut cfg = CorrupterConfig::bit_flips_full_range(1000, Precision::Fp64, seed);
        cfg.mode = CorruptionMode::BitRange(range);
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        let out = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?;
        Ok(TrialOutcome::ok().with_collapsed(out.collapsed()).with_counters(
            report.injections,
            report.nan_redraws,
            report.skipped,
        ))
    })
}

/// Fold the per-range outcome vectors into rows + the rendered table.
/// Shared by the fixed-budget and adaptive drivers, so both produce the
/// same table bytes from the same consumed outcomes.
fn assemble(pooled: &[Vec<TrialOutcome>]) -> (Vec<RangeRow>, TextTable) {
    let mut rows = Vec::new();
    let mut table =
        TextTable::new(&["Range", "Critical bit", "Trainings", "Collapsed", "%", "Failed"]);
    for ((label, range), outcomes) in ranges().into_iter().zip(pooled) {
        let trainings = outcomes.len();
        let collapsed = outcomes.iter().filter(|o| o.collapsed).count();
        let failed = outcomes.iter().filter(|o| o.is_failed()).count();
        let includes_critical_bit = range.contains(Precision::Fp64.exponent_msb());
        table.row(vec![
            label.to_string(),
            if includes_critical_bit { "yes" } else { "no" }.to_string(),
            trainings.to_string(),
            collapsed.to_string(),
            pct(percent(collapsed, trainings)),
            failed.to_string(),
        ]);
        rows.push(RangeRow { label, range, includes_critical_bit, trainings, collapsed, failed });
    }
    (rows, table)
}

/// Run the sweep (Chainer/AlexNet; 1 000 flips per training, NaN allowed —
/// the point is to observe collapse). All eight ranges are declared up
/// front and share one scheduler pool.
pub fn figure2(pre: &Prebaked) -> (Vec<RangeRow>, TextTable) {
    let trials = pre.budget().fig2_trainings;
    let plans: Vec<CellPlan<'_>> =
        ranges().into_iter().map(|(label, range)| range_plan(pre, label, range, trials)).collect();
    let pooled = pre.run_plan(&plans);
    assemble(&pooled)
}

/// The sweep's adaptive cells, one stratum per bit range. `rule_for`
/// receives each stratum's `(label, includes_critical_bit)` so callers can
/// stratify the stopping rule — e.g. tighter intervals on the contested
/// ranges and first-wave stops on the ones the paper shows are decisively
/// safe or fatal.
pub fn figure2_cells<'p>(
    pre: &'p Prebaked,
    rule_for: impl Fn(&'static str, bool) -> StoppingRule,
) -> Vec<AdaptiveCell<'p>> {
    let critical = Precision::Fp64.exponent_msb();
    ranges()
        .into_iter()
        .map(|(label, range)| {
            let rule = rule_for(label, range.contains(critical));
            AdaptiveCell::new(
                range_plan(pre, label, range, rule.max_trials),
                rule,
                classify_collapsed,
            )
        })
        .collect()
}

/// The sweep under sequential stopping: identical protocol, seeds, and
/// table layout as [`figure2`], but each range samples only until its
/// collapse-rate interval is narrow enough (or the rule's cap — usually
/// `fig2_trainings` — is reached). The consumed outcomes are a prefix of
/// the fixed-budget trial sequence, so verdicts like
/// [`collapse_only_with_critical_bit`] agree with the fixed sweep whenever
/// the rule stops on a decisive rate.
pub fn figure2_adaptive(pre: &Prebaked, rule: StoppingRule) -> (Vec<RangeRow>, TextTable) {
    let cells = figure2_cells(pre, |_, _| rule);
    let results = pre.run_adaptive(&cells);
    let pooled: Vec<Vec<TrialOutcome>> = results.into_iter().map(|r| r.outcomes).collect();
    assemble(&pooled)
}

/// One sharded worker's share of the adaptive sweep. Every worker of the
/// campaign calls this with the same `rule`; all return the identical
/// rows/table (assembled from the merged manifest), so any of them may
/// write the CSV.
pub fn figure2_adaptive_sharded(
    pre: &Prebaked,
    rule: StoppingRule,
    cfg: &ShardWorkerConfig,
) -> std::io::Result<(Vec<RangeRow>, TextTable)> {
    let cells = figure2_cells(pre, |_, _| rule);
    let results = pre.run_adaptive_sharded(&cells, cfg)?;
    let pooled: Vec<Vec<TrialOutcome>> = results.into_iter().map(|r| r.outcomes).collect();
    Ok(assemble(&pooled))
}

/// The paper's claim: collapse ⇔ the range includes bit 62.
pub fn collapse_only_with_critical_bit(rows: &[RangeRow]) -> bool {
    rows.iter().all(|r| {
        if r.includes_critical_bit {
            r.collapsed > 0 || r.trainings == 0
        } else {
            r.collapsed == 0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_inventory_flags_critical_bit_correctly() {
        for (label, range) in ranges() {
            let flagged = range.contains(62);
            assert_eq!(flagged, range.first_bit <= 62 && 62 <= range.last_bit, "{label}");
        }
    }

    #[test]
    fn sweep_smoke() {
        let pre = Prebaked::new(crate::budget::Budget::smoke());
        let (rows, _) = figure2(&pre);
        assert_eq!(rows.len(), ranges().len());
        // The safe ranges must never collapse; the exp-MSB-only range at
        // 1000 flips collapses essentially always.
        let safe = rows.iter().find(|r| r.label.contains("all but exp MSB")).unwrap();
        assert_eq!(safe.collapsed, 0);
        let critical = rows.iter().find(|r| r.label.contains("exp MSB only")).unwrap();
        assert!(critical.collapsed >= critical.trainings.saturating_sub(1));
    }

    #[test]
    fn adaptive_sweep_matches_fixed_verdicts_with_fewer_trials() {
        let pre = Prebaked::new(crate::budget::Budget::smoke());
        let (fixed, _) = figure2(&pre);
        let rule = StoppingRule::halving(pre.budget().fig2_trainings, 0.7);
        let (adaptive, _) = figure2_adaptive(&pre, rule);
        // Adaptive trials are a prefix of the fixed sequence, so the
        // qualitative verdict must match range by range on decisive cells.
        assert_eq!(
            collapse_only_with_critical_bit(&fixed),
            collapse_only_with_critical_bit(&adaptive)
        );
        for (f, a) in fixed.iter().zip(&adaptive) {
            assert_eq!(f.collapsed > 0, a.collapsed > 0, "verdict flipped on {}", f.label);
            assert!(a.trainings <= f.trainings, "{} overspent its cap", a.label);
        }
        // The whole point: extreme-rate ranges stop early.
        let fixed_total: usize = fixed.iter().map(|r| r.trainings).sum();
        let adaptive_total: usize = adaptive.iter().map(|r| r.trainings).sum();
        assert!(
            adaptive_total < fixed_total,
            "adaptive spent {adaptive_total} of {fixed_total} fixed trials"
        );
    }
}
