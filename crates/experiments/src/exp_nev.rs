//! Tables IV and VII — incidence of NaN and extreme values (N-EV).
//!
//! Protocol (Section V-B2): corrupt a restart checkpoint with 1/10/100/1000
//! bit-flips over the **full** bit range (exponent MSB and sign included,
//! NaN allowed), resume training, and count the trainings that collapse on
//! a NaN or extreme value. Table IV runs all nine framework×model
//! combinations at 64-bit; Table VII repeats Chainer's column at 16- and
//! 32-bit precision.

use crate::adaptive::{classify_collapsed, AdaptiveCell, StoppingRule};
use crate::runner::{CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// One table cell.
#[derive(Debug, Clone)]
pub struct NevCell {
    /// Framework column.
    pub framework: FrameworkKind,
    /// Model column.
    pub model: ModelKind,
    /// Bit-flips injected per training.
    pub bitflips: u64,
    /// Trainings run.
    pub trainings: usize,
    /// Trainings that collapsed computing an N-EV.
    pub nev: usize,
    /// Percentage.
    pub pct: f64,
    /// Trials that failed to complete (excluded from the N-EV count).
    pub failed: usize,
}

/// Declare one cell's trials for the scheduler: `trials` independent
/// corrupted resumes keyed `nev-{width}-{bitflips}`.
pub fn nev_plan<'p>(
    pre: &'p Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    precision: Precision,
    bitflips: u64,
    trials: usize,
) -> CellPlan<'p> {
    let dtype = Dtype::from_precision(precision);
    let pristine = pre.checkpoint_shared(fw, model, dtype);
    let cell = format!("nev-{}-{bitflips}", precision.width());
    CellPlan::new("nev", cell, fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let cfg = CorrupterConfig::bit_flips_full_range(bitflips, precision, seed);
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        let out = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?;
        Ok(TrialOutcome::ok().with_collapsed(out.collapsed()).with_counters(
            report.injections,
            report.nan_redraws,
            report.skipped,
        ))
    })
}

/// Fold one cell's scheduler outcomes into the table cell.
fn nev_assemble(
    fw: FrameworkKind,
    model: ModelKind,
    bitflips: u64,
    outcomes: &[TrialOutcome],
) -> NevCell {
    let collapses = outcomes.iter().filter(|o| o.collapsed).count();
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    NevCell {
        framework: fw,
        model,
        bitflips,
        trainings: outcomes.len(),
        nev: collapses,
        pct: percent(collapses, outcomes.len()),
        failed,
    }
}

/// Measure one cell: `trials` independent corrupted resumes.
pub fn nev_cell(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    precision: Precision,
    bitflips: u64,
    trials: usize,
) -> NevCell {
    let plan = nev_plan(pre, fw, model, precision, bitflips, trials);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    nev_assemble(fw, model, bitflips, &outcomes)
}

/// Table IV: 64-bit, all nine combinations. All 36 cells are declared up
/// front and run through one no-barrier scheduler pool.
pub fn table4(pre: &Prebaked) -> (Vec<NevCell>, TextTable) {
    let budget = *pre.budget();
    let mut specs = Vec::new();
    for &flips in &budget.bitflip_counts() {
        for fw in FrameworkKind::all() {
            for model in ModelKind::all() {
                specs.push((flips, fw, model));
            }
        }
    }
    let plans: Vec<CellPlan<'_>> = specs
        .iter()
        .map(|&(flips, fw, model)| nev_plan(pre, fw, model, Precision::Fp64, flips, budget.trials))
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table =
        TextTable::new(&["Bit-flips", "Trainings", "Framework", "Model", "N-EV", "%", "Failed"]);
    for (&(flips, fw, model), outcomes) in specs.iter().zip(&pooled) {
        let cell = nev_assemble(fw, model, flips, outcomes);
        table.row(vec![
            flips.to_string(),
            cell.trainings.to_string(),
            fw.display().to_string(),
            model.id().to_string(),
            cell.nev.to_string(),
            pct(cell.pct),
            cell.failed.to_string(),
        ]);
        cells.push(cell);
    }
    (cells, table)
}

/// Table IV under sequential stopping: same 36 cells, same seeds, but each
/// cell samples only until its N-EV-rate interval reaches the rule's
/// target width (or the cap). One wave round-trip covers every live cell,
/// so the pool stays full while decisive cells drain out early.
pub fn table4_adaptive(pre: &Prebaked, rule: StoppingRule) -> (Vec<NevCell>, TextTable) {
    let mut specs = Vec::new();
    for &flips in &pre.budget().bitflip_counts() {
        for fw in FrameworkKind::all() {
            for model in ModelKind::all() {
                specs.push((flips, fw, model));
            }
        }
    }
    let cells: Vec<AdaptiveCell<'_>> = specs
        .iter()
        .map(|&(flips, fw, model)| {
            let plan = nev_plan(pre, fw, model, Precision::Fp64, flips, rule.max_trials);
            AdaptiveCell::new(plan, rule, classify_collapsed)
        })
        .collect();
    let results = pre.run_adaptive(&cells);

    let mut out = Vec::new();
    let mut table =
        TextTable::new(&["Bit-flips", "Trainings", "Framework", "Model", "N-EV", "%", "Failed"]);
    for (&(flips, fw, model), result) in specs.iter().zip(&results) {
        let cell = nev_assemble(fw, model, flips, &result.outcomes);
        table.row(vec![
            flips.to_string(),
            cell.trainings.to_string(),
            fw.display().to_string(),
            model.id().to_string(),
            cell.nev.to_string(),
            pct(cell.pct),
            cell.failed.to_string(),
        ]);
        out.push(cell);
    }
    (out, table)
}

/// Table VII: Chainer at 16- and 32-bit precision, one pool for all cells.
pub fn table7(pre: &Prebaked) -> (Vec<NevCell>, TextTable) {
    let budget = *pre.budget();
    let mut specs = Vec::new();
    for &flips in &budget.bitflip_counts() {
        for precision in [Precision::Fp16, Precision::Fp32] {
            for model in ModelKind::all() {
                specs.push((flips, precision, model));
            }
        }
    }
    let plans: Vec<CellPlan<'_>> = specs
        .iter()
        .map(|&(flips, precision, model)| {
            nev_plan(pre, FrameworkKind::Chainer, model, precision, flips, budget.trials)
        })
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table =
        TextTable::new(&["Bit-flips", "DL Train", "Precision", "Model", "N-EV", "%", "Failed"]);
    for (&(flips, precision, model), outcomes) in specs.iter().zip(&pooled) {
        let cell = nev_assemble(FrameworkKind::Chainer, model, flips, outcomes);
        table.row(vec![
            flips.to_string(),
            cell.trainings.to_string(),
            format!("{} bits", precision.width()),
            model.id().to_string(),
            cell.nev.to_string(),
            pct(cell.pct),
            cell.failed.to_string(),
        ]);
        cells.push(cell);
    }
    (cells, table)
}

/// The qualitative claim the paper draws from Table IV, checkable on any
/// budget: N-EV incidence ascends with the flip count.
pub fn ascending_pattern_holds(cells: &[NevCell]) -> bool {
    let rate_at = |flips: u64| -> f64 {
        let subset: Vec<&NevCell> = cells.iter().filter(|c| c.bitflips == flips).collect();
        subset.iter().map(|c| c.pct).sum::<f64>() / subset.len().max(1) as f64
    };
    rate_at(1) <= rate_at(10) && rate_at(10) <= rate_at(100) && rate_at(100) <= rate_at(1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn thousand_flips_collapse_nearly_all() {
        let pre = Prebaked::new(Budget::smoke());
        let cell =
            nev_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, Precision::Fp64, 1000, 4);
        assert_eq!(cell.trainings, 4);
        // Paper Table IV: 96-99.6% at 1000 flips.
        assert!(cell.nev >= 3, "only {} of 4 collapsed", cell.nev);
    }

    #[test]
    fn one_flip_rarely_collapses() {
        let pre = Prebaked::new(Budget::smoke());
        let cell =
            nev_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, Precision::Fp64, 1, 6);
        // Paper: ≤ 0.4% at one flip.
        assert!(cell.nev <= 1, "{} of 6 collapsed on one flip", cell.nev);
    }
}
