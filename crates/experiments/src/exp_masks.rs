//! Table VI — multi-bit masks from the DRAM field study applied to
//! ResNet50 training.
//!
//! The masks come from Bautista-Gomez et al.'s large-scale DRAM error
//! study (the paper's reference \[43\]). Each mask is applied to 10 weights
//! at a random placement offset; 10 trainings per cell; the table reports
//! the average accuracy immediately after loading the corrupted checkpoint
//! (AvgI-Acc, excluding collapsed trainings) and the number of N-EV events.

use crate::runner::{CellPlan, Prebaked};
use crate::table::TextTable;
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use sefi_float::{BitMask, NevPolicy, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// The paper's five masks: (active bits, pattern).
pub const MASKS: [(u32, &str); 5] =
    [(3, "10001010"), (4, "01101010"), (4, "10110010"), (5, "11110001"), (6, "11101101")];

/// Weights hit per training (paper: "each multi-bit mask is applied to 10
/// weights of the neural network").
pub const WEIGHTS_PER_TRAINING: u64 = 10;

/// One Table VI cell.
#[derive(Debug, Clone)]
pub struct MaskCell {
    /// Framework column.
    pub framework: FrameworkKind,
    /// Mask pattern (empty string for the error-free row).
    pub mask: String,
    /// Active bits in the mask.
    pub bits: u32,
    /// Average initial accuracy (× 100), collapsed trainings excluded.
    pub avg_initial_acc: f64,
    /// Number of trainings that produced an N-EV.
    pub nev: usize,
    /// Trials that failed to complete (excluded from the average).
    pub failed: usize,
}

/// Accuracy immediately after loading a checkpoint (no retraining).
fn initial_accuracy(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    ck: &sefi_hdf5::H5File,
) -> Result<(f64, bool), crate::runner::TrialError> {
    let mut session = pre.session_at_restart(fw, model);
    session.restore(ck).map_err(|e| format!("restore failed: {e}"))?;
    let nev = {
        let sd = session.network_mut().state_dict();
        let policy = NevPolicy::default();
        sd.entries()
            .iter()
            .any(|e| e.tensor.data().iter().any(|&v| policy.classify_f64(v as f64).is_some()))
    };
    Ok((session.test_accuracy(pre.data()), nev))
}

/// Declare one mask cell's trainings for the scheduler.
pub fn mask_plan<'p>(pre: &'p Prebaked, fw: FrameworkKind, mask: &str) -> CellPlan<'p> {
    let model = ModelKind::ResNet50;
    let trials = pre.budget().curve_trials.max(3);
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    let mask = mask.to_string();
    CellPlan::new("table6", format!("mask-{mask}"), fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let cfg = CorrupterConfig {
            injection_probability: 1.0,
            amount: InjectionAmount::Count(WEIGHTS_PER_TRAINING),
            float_precision: Precision::Fp64,
            mode: CorruptionMode::BitMask(BitMask::parse(&mask)?),
            allow_nan_values: true,
            locations: LocationSelection::AllRandom,
            seed,
        };
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        let (acc, nev) = initial_accuracy(pre, fw, model, &ck)?;
        Ok(TrialOutcome::ok().with_collapsed(nev).with_accuracy(acc).with_counters(
            report.injections,
            report.nan_redraws,
            report.skipped,
        ))
    })
}

/// Fold one mask cell's outcomes into the table cell.
fn mask_assemble(fw: FrameworkKind, bits: u32, mask: &str, outcomes: &[TrialOutcome]) -> MaskCell {
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let nev = outcomes.iter().filter(|o| o.collapsed).count();
    let clean: Vec<f64> = outcomes
        .iter()
        .filter(|o| !o.is_failed() && !o.collapsed)
        .filter_map(|o| o.final_accuracy.map(|a| a * 100.0))
        .collect();
    MaskCell {
        framework: fw,
        mask: mask.to_string(),
        bits,
        avg_initial_acc: crate::stats::mean(&clean),
        nev,
        failed,
    }
}

/// One cell: ten trainings with one mask.
pub fn mask_cell(pre: &Prebaked, fw: FrameworkKind, bits: u32, mask: &str) -> MaskCell {
    let plan = mask_plan(pre, fw, mask);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    mask_assemble(fw, bits, mask, &outcomes)
}

/// Error-free row (0 bits): the restart checkpoint's own accuracy.
pub fn baseline_cell(pre: &Prebaked, fw: FrameworkKind) -> MaskCell {
    let model = ModelKind::ResNet50;
    let ck = pre.checkpoint(fw, model, Dtype::F64);
    // The pristine checkpoint restoring is a harness invariant, not a
    // corrupted-trial hazard — an error here is a genuine bug.
    let (acc, _) = initial_accuracy(pre, fw, model, &ck)
        .unwrap_or_else(|e| panic!("pristine checkpoint failed to load: {e}"));
    MaskCell {
        framework: fw,
        mask: "00000000".to_string(),
        bits: 0,
        avg_initial_acc: acc * 100.0,
        nev: 0,
        failed: 0,
    }
}

/// Full Table VI: all fifteen mask cells (three frameworks × five masks)
/// share one scheduler pool; the trial-free baseline rows are computed
/// up front.
pub fn table6(pre: &Prebaked) -> (Vec<MaskCell>, TextTable) {
    let baselines: Vec<MaskCell> =
        FrameworkKind::all().into_iter().map(|fw| baseline_cell(pre, fw)).collect();
    let mut specs = Vec::new();
    for fw in FrameworkKind::all() {
        for &(bits, mask) in &MASKS {
            specs.push((fw, bits, mask));
        }
    }
    let plans: Vec<CellPlan<'_>> =
        specs.iter().map(|&(fw, _, mask)| mask_plan(pre, fw, mask)).collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table = TextTable::new(&["Bits", "Mask", "Framework", "AvgI-Acc", "N-EV", "Failed"]);
    let mut pooled = pooled.iter();
    for (fw, base) in FrameworkKind::all().into_iter().zip(baselines) {
        table.row(vec![
            "0".into(),
            base.mask.clone(),
            fw.display().to_string(),
            format!("{:.2}", base.avg_initial_acc),
            "-".into(),
            "0".into(),
        ]);
        cells.push(base);
        for &(bits, mask) in &MASKS {
            let outcomes = pooled.next().expect("one outcome vector per declared cell");
            let cell = mask_assemble(fw, bits, mask, outcomes);
            table.row(vec![
                bits.to_string(),
                mask.to_string(),
                fw.display().to_string(),
                format!("{:.2}", cell.avg_initial_acc),
                cell.nev.to_string(),
                cell.failed.to_string(),
            ]);
            cells.push(cell);
        }
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn paper_masks_parse_with_declared_popcounts() {
        for (bits, mask) in MASKS {
            assert_eq!(BitMask::parse(mask).unwrap().ones(), bits);
        }
    }

    #[test]
    fn mask_cell_reports_sane_numbers() {
        let pre = Prebaked::new(Budget::smoke());
        let cell = mask_cell(&pre, FrameworkKind::Chainer, 3, "10001010");
        assert!(
            (0.0..=100.0).contains(&cell.avg_initial_acc)
                || cell.nev == pre.budget().curve_trials.max(3)
        );
        assert!(cell.nev <= pre.budget().curve_trials.max(3));
    }
}
