//! Extension experiment — the paper's Section VI-1 claim, tested.
//!
//! "If the detection of N-EV was implemented at either the hardware or
//! software level, then DL platforms would be virtually unbreakable."
//!
//! This experiment reruns the Table IV protocol (full-range bit-flips,
//! NaN/Inf allowed) but scrubs each corrupted checkpoint with
//! [`sefi_core::NevGuard`] before resuming. The guarded N-EV collapse rate
//! must be zero at every flip count, and guarded trainings should recover
//! accuracy like the benign-corruption runs of Figure 3.

use crate::runner::{CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig, NevGuard, RepairPolicy};
use sefi_float::{NevPolicy, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// One guarded-vs-unguarded comparison cell.
#[derive(Debug, Clone)]
pub struct GuardCell {
    /// Bit-flips injected.
    pub bitflips: u64,
    /// Trainings per arm.
    pub trainings: usize,
    /// Collapses without the guard.
    pub unguarded_nev: usize,
    /// Collapses with the guard (the claim: always 0).
    pub guarded_nev: usize,
    /// Mean N-EVs repaired per checkpoint by the guard.
    pub mean_repaired: f64,
    /// Mean final accuracy of the guarded resumes.
    pub guarded_accuracy: f64,
    /// Trials that failed to complete (excluded from both arms).
    pub failed: usize,
}

/// Declare one guarded-vs-unguarded cell for the scheduler: `trials`
/// corrupted resumes, each tried with and without the guard (same
/// corrupted checkpoint, so the comparison is paired).
pub fn guard_plan<'p>(
    pre: &'p Prebaked,
    repair: RepairPolicy,
    bitflips: u64,
    trials: usize,
) -> CellPlan<'p> {
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    CellPlan::new("guard", format!("guard-{bitflips}"), fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let cfg = CorrupterConfig::bit_flips_full_range(bitflips, Precision::Fp64, seed);
        let inj_report = Corrupter::new(cfg)?.corrupt(&mut ck)?;

        // Unguarded arm.
        let unguarded = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?.collapsed();

        // Guarded arm: scrub, then resume.
        let mut scrubbed = ck;
        let guard = NevGuard::new(NevPolicy::default(), repair);
        let report = guard.scrub(&mut scrubbed);
        let out = pre.try_resume(fw, model, &scrubbed, pre.budget().resume_epochs)?;
        Ok(TrialOutcome::ok()
            .with_collapsed(out.collapsed())
            .with_accuracy(out.final_accuracy().unwrap_or(0.0))
            .with_metric("unguarded_collapsed", f64::from(u8::from(unguarded)))
            .with_metric("repaired", report.findings.len() as f64)
            .with_counters(inj_report.injections, inj_report.nan_redraws, inj_report.skipped))
    })
}

/// Fold one guard cell's outcomes into the comparison row.
fn guard_assemble(bitflips: u64, trials: usize, outcomes: &[TrialOutcome]) -> GuardCell {
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let completed: Vec<_> = outcomes.iter().filter(|o| !o.is_failed()).collect();
    let unguarded_nev =
        completed.iter().filter(|o| o.metric("unguarded_collapsed").unwrap_or(0.0) > 0.5).count();
    let guarded_nev = completed.iter().filter(|o| o.collapsed).count();
    let mean_repaired = completed.iter().map(|o| o.metric("repaired").unwrap_or(0.0)).sum::<f64>()
        / completed.len().max(1) as f64;
    let guarded_acc: Vec<f64> =
        completed.iter().filter(|o| !o.collapsed).filter_map(|o| o.final_accuracy).collect();
    GuardCell {
        bitflips,
        trainings: trials,
        unguarded_nev,
        guarded_nev,
        mean_repaired,
        guarded_accuracy: crate::stats::mean(&guarded_acc),
        failed,
    }
}

/// Measure one cell.
pub fn guard_cell(pre: &Prebaked, repair: RepairPolicy, bitflips: u64, trials: usize) -> GuardCell {
    let plan = guard_plan(pre, repair, bitflips, trials);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    guard_assemble(bitflips, trials, &outcomes)
}

/// The full comparison across the paper's flip counts — every flip count's
/// cell through one scheduler pool.
pub fn guard_table(pre: &Prebaked, repair: RepairPolicy) -> (Vec<GuardCell>, TextTable) {
    let trials = pre.budget().trials;
    let counts = pre.budget().bitflip_counts();
    let plans: Vec<CellPlan<'_>> =
        counts.iter().map(|&flips| guard_plan(pre, repair, flips, trials)).collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table = TextTable::new(&[
        "Bit-flips",
        "Trainings",
        "Unguarded N-EV %",
        "Guarded N-EV %",
        "Repaired/ckpt",
        "Guarded acc %",
        "Failed",
    ]);
    for (&flips, outcomes) in counts.iter().zip(&pooled) {
        let cell = guard_assemble(flips, trials, outcomes);
        table.row(vec![
            flips.to_string(),
            cell.trainings.to_string(),
            pct(percent(cell.unguarded_nev, cell.trainings)),
            pct(percent(cell.guarded_nev, cell.trainings)),
            format!("{:.1}", cell.mean_repaired),
            format!("{:.2}", cell.guarded_accuracy * 100.0),
            cell.failed.to_string(),
        ]);
        cells.push(cell);
    }
    (cells, table)
}

/// The claim under test.
pub fn virtually_unbreakable(cells: &[GuardCell]) -> bool {
    cells.iter().all(|c| c.guarded_nev == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn guard_prevents_collapse_where_unguarded_collapses() {
        let pre = Prebaked::new(Budget::smoke());
        let cell = guard_cell(&pre, RepairPolicy::Zero, 1000, 4);
        assert!(cell.unguarded_nev >= 3, "1000 flips should collapse unguarded runs");
        assert_eq!(cell.guarded_nev, 0, "guarded runs must never collapse");
        assert!(cell.mean_repaired > 0.0);
    }

    #[test]
    fn clamp_repair_is_weaker_than_zeroing() {
        let pre = Prebaked::new(Budget::smoke());
        // Clamping to a weight-scale bound protects at moderate corruption
        // (at heavy corruption, many bound-magnitude weights can still
        // amplify activations past f32 range — Zero repair does not have
        // this failure mode; see EXPERIMENTS.md).
        let cell = guard_cell(&pre, RepairPolicy::ClampTo(10.0), 100, 3);
        assert_eq!(cell.guarded_nev, 0);
        // Clamping to the detection threshold is outright unsafe: a 1e30
        // weight overflows the f32 forward pass on first use. This is why
        // the repair bound is an explicit parameter.
        let naive = guard_cell(&pre, RepairPolicy::ClampTo(1e30), 1000, 3);
        assert!(naive.guarded_nev > 0);
    }
}
