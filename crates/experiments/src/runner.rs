//! Shared experiment plumbing: pretrained baselines, checkpoint minting,
//! deterministic per-trial seeding, and the campaign-wide trial scheduler.
//!
//! # The trial scheduler
//!
//! Experiments declare their cells up front as [`CellPlan`]s and submit
//! them in one [`Prebaked::run_plan`] call. The runner flattens every
//! `(cell, trial)` pair of the submitted phase into a single work pool and
//! dispatches it through the work-stealing parallel iterator — there is
//! **no barrier between cells**, so a cell whose trials finish early
//! (collapsed trainings return in a fraction of a clean resume's time)
//! releases its workers straight into the next cell's trials instead of
//! idling on the cell's stragglers.
//!
//! Determinism is preserved by construction, not by scheduling: each
//! trial's seed is the pure function [`combo_seed`]`(fw, model, cell,
//! trial)`, and outcomes are scattered back into per-cell vectors by trial
//! index. Tables assembled from those vectors are byte-identical at any
//! `RAYON_NUM_THREADS` and across mid-campaign kill/resume. Only the
//! telemetry *event stream* reflects execution order — per-trial events
//! from different cells may interleave — and nothing downstream consumes
//! the stream's order.

use crate::budget::Budget;
use parking_lot::Mutex;
use rayon::prelude::*;
use sefi_data::SyntheticCifar10;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::{Dataset, Dtype, H5File};
use sefi_models::ModelKind;
use sefi_nn::{EpochRecord, StateDict};
use sefi_telemetry::{digest64, Aggregator, Event, JsonlSink, Manifest, TrialOutcome, TrialRecord};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Why a trial could not produce an outcome: a propagated error from the
/// corruption/restore/replay machinery, or (via the runner's panic guard)
/// the message of a panic that unwound out of the trial closure. Either
/// way the trial becomes a recorded [`TrialOutcome::failed`] instead of
/// killing the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    reason: String,
}

impl TrialError {
    /// A failure with an explicit reason.
    pub fn new(reason: impl Into<String>) -> Self {
        TrialError { reason: reason.into() }
    }

    /// The human-readable failure reason recorded in the manifest.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl From<String> for TrialError {
    fn from(reason: String) -> Self {
        TrialError::new(reason)
    }
}

impl From<&str> for TrialError {
    fn from(reason: &str) -> Self {
        TrialError::new(reason)
    }
}

impl From<sefi_core::CorruptError> for TrialError {
    fn from(e: sefi_core::CorruptError) -> Self {
        TrialError::new(e.to_string())
    }
}

impl From<sefi_hdf5::Error> for TrialError {
    fn from(e: sefi_hdf5::Error) -> Self {
        TrialError::new(e.to_string())
    }
}

impl From<std::io::Error> for TrialError {
    fn from(e: std::io::Error) -> Self {
        TrialError::new(e.to_string())
    }
}

/// What a trial closure returns: a completed outcome, or the reason it
/// could not complete.
pub type TrialResult = Result<TrialOutcome, TrialError>;

/// Panic capture for trial isolation: a process-wide hook (installed once,
/// chaining to the previous hook) that, while the current thread is inside
/// a guarded trial, records the panic message + location into a
/// thread-local slot instead of printing a backtrace to stderr.
mod panic_capture {
    use std::cell::RefCell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    thread_local! {
        // None: not capturing (delegate to the previous hook).
        // Some(None): capturing, no panic seen yet.
        // Some(Some(msg)): capturing, panic message recorded.
        static CAPTURE: RefCell<Option<Option<String>>> = const { RefCell::new(None) };
    }

    fn install_hook() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let captured = CAPTURE.with(|slot| {
                    let mut slot = slot.borrow_mut();
                    match slot.as_mut() {
                        Some(msg) => {
                            let payload = info
                                .payload()
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            *msg = Some(match info.location() {
                                Some(loc) => {
                                    format!("{payload} at {}:{}", loc.file(), loc.line())
                                }
                                None => payload,
                            });
                            true
                        }
                        None => false,
                    }
                });
                if !captured {
                    prev(info);
                }
            }));
        });
    }

    /// Run `f`, converting any panic into `Err(message)`. Panics outside
    /// `catch` (other threads, nested non-trial code) behave normally.
    pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        install_hook();
        CAPTURE.with(|slot| *slot.borrow_mut() = Some(None));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        let message = CAPTURE.with(|slot| slot.borrow_mut().take()).flatten();
        match result {
            Ok(v) => Ok(v),
            Err(payload) => Err(message.unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string())
            })),
        }
    }
}

/// Test-only fault hook: when `SEFI_FAIL_TRIAL="experiment:cell:trial"` is
/// set, the matching trial panics inside the runner's guard. Lets CI prove
/// a deliberately-failing cell is isolated without patching experiment
/// code. Parsed once; the cell itself may contain colons.
fn injected_failure(experiment: &str, cell: &str, trial: usize) -> bool {
    static TARGET: OnceLock<Option<(String, String, usize)>> = OnceLock::new();
    let target = TARGET.get_or_init(|| {
        let spec = std::env::var("SEFI_FAIL_TRIAL").ok()?;
        let (exp, rest) = spec.split_once(':')?;
        let (cell, trial) = rest.rsplit_once(':')?;
        Some((exp.to_string(), cell.to_string(), trial.parse().ok()?))
    });
    matches!(target, Some((e, c, t)) if e == experiment && c == cell && *t == trial)
}

/// Master seed of the whole experimental campaign.
const CAMPAIGN_SEED: u64 = 0x5EF1_2021;

/// Version of the manifest key-space: bumped whenever `combo_seed` or the
/// record semantics change, so records minted by an older runner are never
/// cross-served to a newer one. Mixed into the campaign config digest.
const MANIFEST_SCHEMA: u32 = 2;

/// Stable per-trial seed: a pure function of (framework, model, experiment
/// label, trial index), so any table cell can be recomputed in isolation.
pub fn combo_seed(fw: FrameworkKind, model: ModelKind, label: &str, trial: usize) -> u64 {
    combo_seed_parts(fw.id(), model.id(), label, trial)
}

/// The hash behind [`combo_seed`], over the raw id strings. Each string
/// field is hashed behind a length prefix, so the encoding is prefix-free
/// and distinct `(fw, model, label)` triples like `("ab","c")`/`("a","bc")`
/// can no longer concatenate to the same byte stream (which previously let
/// manifest-cached outcomes cross-serve between cells). Public so property
/// tests can probe injectivity over the field boundaries.
pub fn combo_seed_parts(fw: &str, model: &str, label: &str, trial: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for field in [fw, model, label] {
        mix(&(field.len() as u64).to_le_bytes());
        mix(field.as_bytes());
    }
    mix(&trial.to_le_bytes());
    h ^ CAMPAIGN_SEED
}

/// How a campaign records itself: where results live and what the
/// campaign is called in its telemetry stream.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name, stamped on campaign-level telemetry events.
    pub name: String,
    /// Directory holding per-experiment manifests and the event stream
    /// (`<results_dir>/<experiment>/manifest.jsonl`,
    /// `<results_dir>/telemetry.jsonl`).
    pub results_dir: PathBuf,
    /// Re-execute trials whose manifest record is a failure instead of
    /// serving the recorded failure. Successes are never re-executed.
    pub retry_failed: bool,
    /// Shard tag of this worker process in a multi-process campaign.
    /// When set, manifests open in sharded mode: records from every
    /// worker's shard file are read, but this process appends only to
    /// `manifest-<shard>.jsonl`, so concurrent workers never interleave
    /// writes within one file.
    pub shard: Option<String>,
}

impl CampaignConfig {
    /// A campaign writing under the conventional `results/` directory.
    pub fn new(name: &str) -> Self {
        CampaignConfig {
            name: name.to_string(),
            results_dir: PathBuf::from("results"),
            retry_failed: false,
            shard: None,
        }
    }

    /// Redirect everything the campaign writes to `dir`.
    pub fn results_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.results_dir = dir.into();
        self
    }

    /// Re-run manifest-recorded failures (the `--retry-failed` flag).
    pub fn retry_failed(mut self, retry: bool) -> Self {
        self.retry_failed = retry;
        self
    }

    /// Mark this process as worker `shard` of a multi-process campaign
    /// (the `--worker-id` flag). The tag must be filename-safe.
    pub fn shard_id(mut self, shard: impl Into<String>) -> Self {
        self.shard = Some(shard.into());
        self
    }
}

/// Live campaign state: the event sink, the summary aggregator, and one
/// lazily opened manifest per experiment.
struct Campaign {
    name: String,
    config_digest: String,
    results_dir: PathBuf,
    retry_failed: bool,
    shard: Option<String>,
    sink: JsonlSink,
    aggregator: Aggregator,
    manifests: Mutex<HashMap<String, Arc<Manifest>>>,
    started: Instant,
}

impl Campaign {
    fn manifest_for(&self, experiment: &str) -> Arc<Manifest> {
        let mut manifests = self.manifests.lock();
        if let Some(m) = manifests.get(experiment) {
            return Arc::clone(m);
        }
        let path = self.results_dir.join(experiment).join("manifest.jsonl");
        let open = match &self.shard {
            Some(tag) => Manifest::open_sharded(&path, tag),
            None => Manifest::open(&path),
        };
        let m = Arc::new(
            open.unwrap_or_else(|e| panic!("cannot open manifest {}: {e}", path.display())),
        );
        manifests.insert(experiment.to_string(), Arc::clone(&m));
        m
    }
}

/// Emits `PhaseStart` on creation and `PhaseEnd` (with the wall-clock
/// duration) when dropped. A no-op outside a campaign.
pub struct PhaseGuard<'a> {
    campaign: Option<&'a Campaign>,
    name: String,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.campaign {
            c.sink.emit(&Event::PhaseEnd {
                phase: self.name.clone(),
                duration_ns: self.started.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// One declared cell of an experiment phase: the coordinates that key its
/// seeds and manifest records, the trial count, and the trial closure.
///
/// Experiments build a `Vec<CellPlan>` covering a whole table or figure
/// and submit it in one [`Prebaked::run_plan`] call; the runner flattens
/// every `(cell, trial)` pair into a single work-stealing pool with no
/// barrier between cells. The closure receives `(trial, seed)` where
/// `seed = combo_seed(fw, model, cell, trial)`, so a cell's outcomes are
/// independent of which other cells share the pool.
pub struct CellPlan<'p> {
    experiment: String,
    cell: String,
    fw: FrameworkKind,
    model: ModelKind,
    trials: usize,
    valid: Box<dyn Fn(&TrialOutcome) -> bool + Send + Sync + 'p>,
    run: Box<dyn Fn(usize, u64) -> TrialResult + Send + Sync + 'p>,
}

impl<'p> CellPlan<'p> {
    /// Declare a cell: `trials` executions of `run` under the experiment's
    /// manifest, keyed by `(fw, model, cell)`.
    pub fn new(
        experiment: impl Into<String>,
        cell: impl Into<String>,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        run: impl Fn(usize, u64) -> TrialResult + Send + Sync + 'p,
    ) -> Self {
        CellPlan {
            experiment: experiment.into(),
            cell: cell.into(),
            fw,
            model,
            trials,
            valid: Box::new(|_| true),
            run: Box::new(run),
        }
    }

    /// Attach a validity check on manifest-cached records: a cached
    /// non-failed outcome rejected by `valid` (e.g. an old-schema record
    /// missing a field the caller needs) is re-executed instead of served.
    pub fn validated(mut self, valid: impl Fn(&TrialOutcome) -> bool + Send + Sync + 'p) -> Self {
        self.valid = Box::new(valid);
        self
    }

    /// The cell label (also the seed/manifest key component).
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// Number of trials this cell contributes to the pool.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The experiment this cell records under.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The `combo_seed` of this cell's `trial` — the manifest resume key.
    pub fn seed(&self, trial: usize) -> u64 {
        combo_seed(self.fw, self.model, &self.cell, trial)
    }
}

/// A keyed once-cache: per-key init slots behind one short-lived map lock.
type KeyedOnce<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Fetch (or create) the per-key init slot of a keyed once-cache. The map
/// lock is held only for the lookup; the caller runs the expensive init
/// inside `OnceLock::get_or_init`, so one thread computes while every
/// other thread needing the same key blocks on that key alone — distinct
/// keys initialize concurrently, and nobody computes a key twice.
fn entry_slot<K: Eq + std::hash::Hash + Clone, V>(
    map: &KeyedOnce<K, V>,
    key: &K,
) -> Arc<OnceLock<V>> {
    Arc::clone(map.lock().entry(key.clone()).or_default())
}

/// Pretrained state at the restart epoch, shared by every experiment.
///
/// The paper trains each (framework, model) combination once to epoch 20
/// and then mints arbitrarily many corrupted checkpoint copies. Because
/// the three frontends share the numeric engine, one pretraining per model
/// suffices here; checkpoints are then written in any framework's layout.
/// Pretrained weights are cached on disk under `target/sefi-cache`, and
/// minted pristine checkpoints are memoized per `(framework, model,
/// dtype)` behind an `Arc` — trials clone the shared file, and the
/// dataset layer's copy-on-write payloads make that clone pay only for
/// the datasets the trial actually corrupts.
///
/// Constructed with [`Prebaked::with_campaign`], it additionally records
/// telemetry and a per-experiment completed-trial manifest, and serves
/// already-completed trials from that manifest instead of re-running them.
pub struct Prebaked {
    budget: Budget,
    data: SyntheticCifar10,
    baselines: KeyedOnce<ModelKind, StateDict>,
    baseline_curves: KeyedOnce<(ModelKind, Dtype, usize), Vec<EpochRecord>>,
    checkpoints: KeyedOnce<(FrameworkKind, ModelKind, Dtype), Arc<H5File>>,
    campaign: Option<Campaign>,
}

impl Prebaked {
    /// Generate the dataset; baselines are trained (or loaded from cache)
    /// on first use. No telemetry, no manifest: every trial executes.
    pub fn new(budget: Budget) -> Self {
        Prebaked {
            data: SyntheticCifar10::generate(budget.data_config()),
            budget,
            baselines: Mutex::new(HashMap::new()),
            baseline_curves: Mutex::new(HashMap::new()),
            checkpoints: Mutex::new(HashMap::new()),
            campaign: None,
        }
    }

    /// Like [`Prebaked::new`], but with campaign recording attached: a
    /// JSONL event stream at `<results_dir>/telemetry.jsonl`, an
    /// end-of-campaign summary, and per-experiment manifests that make a
    /// re-run skip every trial already on record.
    pub fn with_campaign(budget: Budget, config: CampaignConfig) -> std::io::Result<Self> {
        let sink = JsonlSink::to_file(config.results_dir.join("telemetry.jsonl"))?;
        // The manifest schema version scopes the digest: bumping it (e.g.
        // for the combo_seed separator fix) retires every record minted by
        // an older runner instead of silently misreading it.
        let config_digest = digest64(&format!("schema=v{MANIFEST_SCHEMA};{budget:?}"));
        sink.emit(&Event::CampaignStart {
            campaign: config.name.clone(),
            budget: budget.name.to_string(),
            config_digest: config_digest.clone(),
        });
        let mut pre = Prebaked::new(budget);
        pre.campaign = Some(Campaign {
            name: config.name,
            config_digest,
            results_dir: config.results_dir,
            retry_failed: config.retry_failed,
            shard: config.shard,
            sink,
            aggregator: Aggregator::new(),
            manifests: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });
        Ok(pre)
    }

    /// Start a named phase (one table or figure). Keep the guard alive
    /// for the phase's duration; timing is emitted on drop.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        if let Some(c) = &self.campaign {
            c.sink.emit(&Event::PhaseStart { phase: name.to_string() });
        }
        PhaseGuard {
            campaign: self.campaign.as_ref(),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// `(run, cached)` trial totals so far. `None` without a campaign.
    pub fn campaign_totals(&self) -> Option<(u64, u64)> {
        self.campaign.as_ref().map(|c| c.aggregator.totals())
    }

    /// Trials recorded as failed so far. `None` without a campaign.
    pub fn campaign_failed(&self) -> Option<u64> {
        self.campaign.as_ref().map(|c| c.aggregator.failed_total())
    }

    /// Close the campaign: emit `CampaignEnd` and return the rendered
    /// trial summary. `None` without a campaign.
    pub fn finish_campaign(&self) -> Option<String> {
        let c = self.campaign.as_ref()?;
        let (trials_run, trials_cached) = c.aggregator.totals();
        c.sink.emit(&Event::CampaignEnd {
            campaign: c.name.clone(),
            trials_run,
            trials_cached,
            trials_failed: c.aggregator.failed_total(),
            duration_ns: c.started.elapsed().as_nanos() as u64,
        });
        Some(c.aggregator.render())
    }

    /// Path for a campaign artifact (CSV, report) named `name`: under the
    /// campaign's results directory when one is attached, else under the
    /// conventional `results/`. Creates the directory.
    pub fn results_file(&self, name: &str) -> PathBuf {
        let dir = match &self.campaign {
            Some(c) => c.results_dir.clone(),
            None => PathBuf::from("results"),
        };
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    /// Run a declared phase: flatten every `(cell, trial)` pair of `plans`
    /// into one dynamically load-balanced work pool and return the
    /// outcomes scattered back into per-cell vectors, `result[i][t]`
    /// holding plan `i`'s trial `t`.
    ///
    /// There is no barrier between cells: workers that finish one cell's
    /// cheap trials immediately steal the next cell's, so heterogeneous
    /// trial durations never leave cores idle. Every trial is keyed by
    /// [`combo_seed`] and collected positionally, so the result — and any
    /// table rendered from it — is byte-identical at any
    /// `RAYON_NUM_THREADS` and across kill/resume.
    ///
    /// Under a campaign, each plan's manifest is opened before dispatch;
    /// trials already on record (matching config digest) are served
    /// without executing, and executed trials are appended and flushed
    /// before the pool completes. Recorded failures are served too
    /// (resume skips known-bad trials) unless the campaign was opened
    /// with [`CampaignConfig::retry_failed`].
    pub fn run_plan(&self, plans: &[CellPlan<'_>]) -> Vec<Vec<TrialOutcome>> {
        let units: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .flat_map(|(ci, p)| (0..p.trials).map(move |t| (ci, t)))
            .collect();
        let refs: Vec<&CellPlan<'_>> = plans.iter().collect();
        let flat = self.run_units(&refs, units);
        // The flat pool was built cell-major, and the dispatch preserves
        // positional order, so scattering back is sequential chunking.
        let mut flat = flat.into_iter();
        plans.iter().map(|p| flat.by_ref().take(p.trials).collect()).collect()
    }

    /// The scheduler core under [`Prebaked::run_plan`] and the adaptive
    /// wave dispatcher: run an explicit list of `(plan index, trial)`
    /// units through one work-stealing pool, returning outcomes in unit
    /// order (positional, so results are thread-count invariant). Units
    /// need not cover whole cells — adaptive campaigns dispatch one wave's
    /// trial range at a time.
    pub(crate) fn run_units(
        &self,
        plans: &[&CellPlan<'_>],
        units: Vec<(usize, usize)>,
    ) -> Vec<TrialOutcome> {
        // Open every experiment's manifest up front so workers never
        // contend on manifest creation mid-pool.
        let manifests: Vec<Option<Arc<Manifest>>> = plans
            .iter()
            .map(|p| self.campaign.as_ref().map(|c| c.manifest_for(&p.experiment)))
            .collect();
        units
            .into_par_iter()
            .map(|(ci, trial)| self.run_one(plans[ci], manifests[ci].as_deref(), trial))
            .collect()
    }

    /// Emit a campaign telemetry event; a no-op without a campaign.
    pub(crate) fn emit_event(&self, event: &Event) {
        if let Some(c) = &self.campaign {
            c.sink.emit(event);
        }
    }

    /// The campaign's config digest (scopes manifest records). `None`
    /// without a campaign.
    pub(crate) fn campaign_digest(&self) -> Option<String> {
        self.campaign.as_ref().map(|c| c.config_digest.clone())
    }

    /// The campaign's results directory, when one is attached.
    pub(crate) fn campaign_results_dir(&self) -> Option<PathBuf> {
        self.campaign.as_ref().map(|c| c.results_dir.clone())
    }

    /// The (possibly sharded) manifest of `experiment`. `None` without a
    /// campaign.
    pub(crate) fn campaign_manifest(&self, experiment: &str) -> Option<Arc<Manifest>> {
        self.campaign.as_ref().map(|c| c.manifest_for(experiment))
    }

    /// One trial of one plan through the guard + manifest + telemetry
    /// path. Called concurrently from pool workers; everything it touches
    /// (sink, aggregator, manifest) is internally locked, and failure
    /// lines go through the locked stderr handle so concurrent trials
    /// never interleave mid-line.
    fn run_one(
        &self,
        plan: &CellPlan<'_>,
        manifest: Option<&Manifest>,
        trial: usize,
    ) -> TrialOutcome {
        let seed = combo_seed(plan.fw, plan.model, &plan.cell, trial);
        // Run the trial through the panic guard, yielding the outcome to
        // record: the closure's own, or a failed outcome carrying the
        // propagated error / captured panic message.
        let execute = || -> TrialOutcome {
            let guarded = panic_capture::catch(|| {
                if injected_failure(&plan.experiment, &plan.cell, trial) {
                    panic!("injected test failure (SEFI_FAIL_TRIAL)");
                }
                (plan.run)(trial, seed)
            });
            let failure = match guarded {
                Ok(Ok(outcome)) => return outcome,
                Ok(Err(e)) => e.reason,
                Err(msg) => format!("panic: {msg}"),
            };
            let line = format!(
                "trial failed: {}/{} trial {trial} (seed {seed:x}): {failure}\n",
                plan.experiment, plan.cell
            );
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
            TrialOutcome::failed(failure)
        };
        let Some(c) = &self.campaign else {
            return execute();
        };
        let manifest = manifest.expect("campaign dispatch prefetches every manifest");
        if let Some(rec) = manifest.lookup(seed, &c.config_digest) {
            let serve =
                if rec.outcome.is_failed() { !c.retry_failed } else { (plan.valid)(&rec.outcome) };
            if serve {
                c.sink.emit(&Event::TrialEnd {
                    experiment: plan.experiment.clone(),
                    cell: plan.cell.clone(),
                    trial: trial as u64,
                    seed,
                    status: rec.outcome.status.clone(),
                    duration_ns: rec.duration_ns,
                    injections: rec.outcome.injections,
                    nan_redraws: rec.outcome.nan_redraws,
                    skipped: rec.outcome.skipped,
                    cached: true,
                });
                c.aggregator.record(&plan.experiment, &rec.outcome.status, rec.duration_ns, true);
                return rec.outcome;
            }
        }
        c.sink.emit(&Event::TrialStart {
            experiment: plan.experiment.clone(),
            cell: plan.cell.clone(),
            trial: trial as u64,
            seed,
        });
        let t0 = Instant::now();
        let outcome = execute();
        let duration_ns = t0.elapsed().as_nanos() as u64;
        if let Some(reason) = &outcome.failure {
            c.sink.emit(&Event::TrialFailed {
                experiment: plan.experiment.clone(),
                cell: plan.cell.clone(),
                trial: trial as u64,
                seed,
                reason: reason.clone(),
                duration_ns,
            });
        }
        if let Err(e) = manifest.record(TrialRecord {
            experiment: plan.experiment.clone(),
            cell: plan.cell.clone(),
            framework: plan.fw.id().to_string(),
            model: plan.model.id().to_string(),
            trial: trial as u64,
            seed,
            config_digest: c.config_digest.clone(),
            duration_ns,
            outcome: outcome.clone(),
        }) {
            let line = format!("telemetry: failed to record trial {seed:x}: {e}\n");
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        c.sink.emit(&Event::TrialEnd {
            experiment: plan.experiment.clone(),
            cell: plan.cell.clone(),
            trial: trial as u64,
            seed,
            status: outcome.status.clone(),
            duration_ns,
            injections: outcome.injections,
            nan_redraws: outcome.nan_redraws,
            skipped: outcome.skipped,
            cached: false,
        });
        c.aggregator.record(&plan.experiment, &outcome.status, duration_ns, false);
        outcome
    }

    /// Run the `trials` of one experiment cell through the scheduler
    /// (a single-plan [`Prebaked::run_plan`]), with per-trial fault
    /// isolation.
    ///
    /// Each trial's seed is `combo_seed(fw, model, cell, trial)`; the
    /// closure receives `(trial, seed)` and returns `Ok(outcome)` or an
    /// error describing why the trial could not complete. Errors — and
    /// panics that unwind out of the closure — become recorded
    /// [`TrialOutcome::failed`] outcomes carrying the reason; the other
    /// trials of the cell (and the rest of the campaign) keep running.
    pub fn run_trials(
        &self,
        experiment: &str,
        cell: &str,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        f: impl Fn(usize, u64) -> TrialResult + Send + Sync,
    ) -> Vec<TrialOutcome> {
        let plan = CellPlan::new(experiment, cell, fw, model, trials, f);
        self.run_plan(std::slice::from_ref(&plan)).pop().expect("one plan yields one cell")
    }

    /// [`Prebaked::run_trials`] with a validity check on manifest-cached
    /// records: a cached non-failed outcome rejected by `valid` (e.g. an
    /// old-schema record missing a field the caller needs) is re-executed
    /// instead of served.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trials_validated(
        &self,
        experiment: &str,
        cell: &str,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        valid: impl Fn(&TrialOutcome) -> bool + Send + Sync,
        f: impl Fn(usize, u64) -> TrialResult + Send + Sync,
    ) -> Vec<TrialOutcome> {
        let plan = CellPlan::new(experiment, cell, fw, model, trials, f).validated(valid);
        self.run_plan(std::slice::from_ref(&plan)).pop().expect("one plan yields one cell")
    }

    /// The budget in force.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared dataset.
    pub fn data(&self) -> &SyntheticCifar10 {
        &self.data
    }

    fn cache_path(&self, model: ModelKind) -> PathBuf {
        let dir = PathBuf::from("target/sefi-cache");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("pre_{}_{}.sefi5", model.id(), self.budget.cache_key()))
    }

    /// The engine weights of `model` at the restart epoch.
    ///
    /// Per-key once-initialized: the first caller trains (or loads the
    /// disk cache) while concurrent callers needing the same model block
    /// on that key's slot instead of pretraining a duplicate; callers
    /// needing a different model proceed unimpeded.
    fn baseline_weights(&self, model: ModelKind) -> StateDict {
        let slot = entry_slot(&self.baselines, &model);
        slot.get_or_init(|| self.load_cached_weights(model).unwrap_or_else(|| self.pretrain(model)))
            .clone()
    }

    fn pretrain(&self, model: ModelKind) -> StateDict {
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let out = session.train_to(&self.data, self.budget.restart_epoch);
        assert!(!out.collapsed(), "error-free pretraining of {model:?} collapsed — harness bug");
        let sd = session.network_mut().state_dict();
        self.store_cached_weights(model, &sd);
        sd
    }

    /// Neutral on-disk serialization of a state dict (engine paths under
    /// `t/` for trainable and `s/` for auxiliary state).
    fn store_cached_weights(&self, model: ModelKind, sd: &StateDict) {
        let mut f = H5File::new();
        for e in sd.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = Dataset::from_f32(e.tensor.data(), e.tensor.shape(), Dtype::F32)
                .expect("consistent tensor");
            f.create_dataset(&format!("{prefix}/{}", e.path), ds).expect("unique paths");
        }
        let _ = f.save(self.cache_path(model));
    }

    fn load_cached_weights(&self, model: ModelKind) -> Option<StateDict> {
        let f = H5File::load(self.cache_path(model)).ok()?;
        // Validate against the current architecture by shape-checking via
        // load_state_dict; on any mismatch fall back to retraining.
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let reference = session.network_mut().state_dict();
        let mut sd = StateDict::new();
        for e in reference.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = f.dataset(&format!("{prefix}/{}", e.path)).ok()?;
            if ds.len() != e.tensor.len() {
                return None;
            }
            sd.push(
                e.path.clone(),
                sefi_tensor::Tensor::from_vec(ds.to_f32_vec(), e.tensor.shape()),
                e.trainable,
            );
        }
        session.network_mut().load_state_dict(&sd).ok()?;
        Some(sd)
    }

    fn fresh_session(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut cfg = SessionConfig::new(fw, model, CAMPAIGN_SEED);
        cfg.model_config = self.budget.model_config();
        // Batch size 8: small batches give the deep, narrow scaled models
        // (especially VGG16, which has no batch norm) enough update steps
        // per epoch to converge within the budgeted epoch counts.
        cfg.train.batch_size = 8.min(self.budget.train_images.max(1));
        Session::new(cfg)
    }

    /// A session positioned at the restart epoch with the pretrained
    /// weights — as if it had just trained there.
    pub fn session_at_restart(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut session = self.fresh_session(fw, model);
        let ck = self.checkpoint_shared(fw, model, Dtype::F64);
        session.restore(&ck).expect("pristine checkpoint restores");
        session
    }

    /// The memoized pristine checkpoint of `model` at the restart epoch in
    /// `fw`'s layout at the requested precision, shared behind an `Arc`.
    /// Minted once per `(framework, model, dtype)` for the whole campaign;
    /// trials clone the shared file (cheap: dataset payloads are
    /// copy-on-write) and corrupt the clone.
    pub fn checkpoint_shared(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        dtype: Dtype,
    ) -> Arc<H5File> {
        let slot = entry_slot(&self.checkpoints, &(fw, model, dtype));
        Arc::clone(slot.get_or_init(|| {
            let sd = self.baseline_weights(model);
            let mut session = self.fresh_session(fw, model);
            session
                .network_mut()
                .load_state_dict(&sd)
                .expect("baseline weights fit the architecture");
            Arc::new(sefi_frameworks::save_checkpoint(
                fw,
                session.network_mut(),
                self.budget.restart_epoch,
                dtype,
            ))
        }))
    }

    /// An owned clone of [`Prebaked::checkpoint_shared`]. The clone is
    /// cheap — datasets share their payload bytes until written — so
    /// "corrupt a clone of this" costs only the flipped datasets.
    pub fn checkpoint(&self, fw: FrameworkKind, model: ModelKind, dtype: Dtype) -> H5File {
        (*self.checkpoint_shared(fw, model, dtype)).clone()
    }

    /// Resume a (possibly corrupted) checkpoint and train `epochs` more.
    /// Returns the outcome; the session is discarded. Panics if the
    /// checkpoint is structurally unloadable — trial closures should use
    /// [`Prebaked::try_resume`] so that case becomes a recorded failure.
    pub fn resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> sefi_nn::TrainOutcome {
        self.try_resume(fw, model, file, epochs)
            .expect("corrupted checkpoints remain structurally valid")
    }

    /// Fallible [`Prebaked::resume`]: a checkpoint the framework cannot
    /// restore (bit flips can corrupt structure, not just values) becomes
    /// an `Err` instead of a panic.
    pub fn try_resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> Result<sefi_nn::TrainOutcome, TrialError> {
        let mut session = self.fresh_session(fw, model);
        session.restore(file).map_err(|e| TrialError::new(format!("restore failed: {e}")))?;
        let target = session.epoch() + epochs;
        Ok(session.train_to(&self.data, target))
    }

    /// The deterministic error-free resumed trajectory for (model, dtype):
    /// restore the pristine checkpoint and train to `end_epoch`. Cached —
    /// identical across frameworks because the layout round-trip is exact.
    pub fn baseline_curve(
        &self,
        model: ModelKind,
        dtype: Dtype,
        end_epoch: usize,
    ) -> Vec<EpochRecord> {
        // Keyed on the dtype itself, not its byte width: f16 and bf16 share
        // a width but narrow the pristine weights differently, so their
        // baseline trajectories are distinct.
        let key = (model, dtype, end_epoch);
        let slot = entry_slot(&self.baseline_curves, &key);
        slot.get_or_init(|| {
            let ck = self.checkpoint_shared(FrameworkKind::Chainer, model, dtype);
            let mut session = self.fresh_session(FrameworkKind::Chainer, model);
            session.restore(&ck).expect("pristine checkpoint restores");
            let out = session.train_to(&self.data, end_epoch);
            assert!(!out.collapsed(), "error-free baseline collapsed — harness bug");
            out.history().to_vec()
        })
        .clone()
    }

    /// Baseline final accuracy after the standard resume window.
    pub fn baseline_final_accuracy(&self, model: ModelKind, dtype: Dtype) -> f64 {
        let end = self.budget.restart_epoch + self.budget.resume_epochs;
        self.baseline_curve(model, dtype, end)
            .last()
            .map(|r| r.test_accuracy)
            .expect("resume window is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_seeds_are_stable_and_distinct() {
        let a = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        let b = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        assert_eq!(a, b);
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 1));
        assert_ne!(a, combo_seed(FrameworkKind::PyTorch, ModelKind::AlexNet, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::Vgg16, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t5", 0));
    }

    #[test]
    fn combo_seed_separates_field_boundaries() {
        // Regression: without length prefixes these concatenate to the
        // same byte stream and cross-served manifest records.
        assert_ne!(combo_seed_parts("ab", "c", "t", 0), combo_seed_parts("a", "bc", "t", 0));
        assert_ne!(combo_seed_parts("a", "bc", "t", 0), combo_seed_parts("a", "b", "ct", 0));
        assert_ne!(combo_seed_parts("", "ab", "t", 0), combo_seed_parts("ab", "", "t", 0));
    }

    #[test]
    fn prebaked_checkpoint_and_resume_are_deterministic() {
        let pre = Prebaked::new(Budget::smoke());
        let ck1 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let ck2 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        assert_eq!(ck1.to_bytes(), ck2.to_bytes());

        let o1 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck1, 1);
        let o2 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck2, 1);
        assert_eq!(o1.history(), o2.history());
        assert!(!o1.collapsed());
    }

    /// Unique scratch directory for campaign tests (parallel-safe).
    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sefi_runner_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn campaign_resumes_from_manifest_without_rerunning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("resume");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);
        let run = |pre: &Prebaked, trials: usize| {
            pre.run_trials("unit", "cell", fw, model, trials, |trial, seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok()
                    .with_accuracy((seed % 1000) as f64 / 1000.0)
                    .with_curve(vec![trial as f64, 0.5])
                    .with_counters(7, 1, 0))
            })
        };

        // First half of the campaign, then the runner is dropped — as if
        // the process had been killed after three trials.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let first = run(&pre1, 3);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(pre1.campaign_totals(), Some((3, 0)));
        drop(pre1);

        // A fresh runner over the same manifest executes only the three
        // missing trials and returns recorded outcomes for the rest.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let second = run(&pre2, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre2.campaign_totals(), Some((3, 3)));
        assert_eq!(&second[..3], &first[..]);
        drop(pre2);

        // A third, fully completed pass executes nothing at all.
        let pre3 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let third = run(&pre3, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre3.campaign_totals(), Some((0, 6)));
        assert_eq!(third, second);
        assert!(dir.join("unit/manifest.jsonl").exists());
        assert!(dir.join("telemetry.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_trial_is_isolated_recorded_and_retried_only_on_request() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("panic");
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);
        let run = |pre: &Prebaked, panic_on_2: bool| {
            pre.run_trials("unit", "cell", fw, model, 5, |trial, seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                if panic_on_2 && trial == 2 {
                    panic!("boom at trial {trial}");
                }
                Ok(TrialOutcome::ok().with_accuracy((seed % 1000) as f64 / 1000.0))
            })
        };

        // A panic on trial 2 does not stop trials 0,1,3,4; the failure is
        // recorded with the panic message and location.
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let first = run(&pre1, true);
        assert_eq!(executed.load(Ordering::Relaxed), 5);
        assert_eq!(first.len(), 5);
        assert!(first[2].is_failed());
        let reason = first[2].failure.as_deref().unwrap();
        assert!(reason.contains("boom at trial 2"), "reason: {reason}");
        assert!(reason.contains("runner.rs"), "reason lacks location: {reason}");
        assert!(first.iter().enumerate().all(|(i, o)| i == 2 || !o.is_failed()));
        assert_eq!(pre1.campaign_failed(), Some(1));
        drop(pre1);

        // The failure is in the manifest and the telemetry stream.
        let manifest = std::fs::read_to_string(dir.join("unit/manifest.jsonl")).unwrap();
        assert!(manifest.contains("boom at trial 2"));
        let stream = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        assert!(stream.contains("TrialFailed"));

        // Resume without --retry-failed: nothing executes; the recorded
        // failure is served.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let second = run(&pre2, false);
        assert_eq!(executed.load(Ordering::Relaxed), 5);
        assert_eq!(pre2.campaign_totals(), Some((0, 5)));
        assert!(second[2].is_failed());
        drop(pre2);

        // --retry-failed re-executes exactly the failed trial; with the
        // panic gone it now succeeds, and a further resume serves it.
        let pre3 =
            Prebaked::with_campaign(Budget::smoke(), cfg.clone().retry_failed(true)).unwrap();
        let third = run(&pre3, false);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre3.campaign_totals(), Some((1, 4)));
        assert!(!third[2].is_failed());
        drop(pre3);

        let pre4 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let fourth = run(&pre4, false);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre4.campaign_totals(), Some((0, 5)));
        assert_eq!(fourth, third);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn err_returning_trial_is_recorded_without_panicking() {
        let pre = Prebaked::new(Budget::smoke());
        let out = pre.run_trials(
            "unit",
            "cell",
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            3,
            |trial, _seed| {
                if trial == 1 {
                    Err(TrialError::new("restore failed: truncated file"))
                } else {
                    Ok(TrialOutcome::ok())
                }
            },
        );
        assert!(!out[0].is_failed() && !out[2].is_failed());
        assert!(out[1].is_failed());
        assert_eq!(out[1].failure.as_deref(), Some("restore failed: truncated file"));
    }

    #[test]
    fn invalid_cached_records_are_reexecuted() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("valid");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);

        // First pass records outcomes without an accuracy — standing in
        // for records written by an older schema.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        pre1.run_trials("unit", "cell", fw, model, 2, |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            Ok(TrialOutcome::ok())
        });
        assert_eq!(executed.load(Ordering::Relaxed), 2);
        drop(pre1);

        // A validated resume rejects them and re-runs; a plain resume of
        // the repaired records then serves from cache.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let out = pre2.run_trials_validated(
            "unit",
            "cell",
            fw,
            model,
            2,
            |o| o.final_accuracy.is_some(),
            |_, _| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok().with_accuracy(0.5))
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 4);
        assert!(out.iter().all(|o| o.final_accuracy.is_some()));
        drop(pre2);

        let pre3 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        pre3.run_trials_validated(
            "unit",
            "cell",
            fw,
            model,
            2,
            |o| o.final_accuracy.is_some(),
            |_, _| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok().with_accuracy(0.5))
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 4);
        assert_eq!(pre3.campaign_totals(), Some((0, 2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_campaign_reproduces_byte_identical_tables() {
        let dir = scratch_dir("tables");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);

        // A real experiment cell: Table IV protocol, two trainings.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let cell1 = crate::exp_nev::nev_cell(
            &pre1,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre1.campaign_totals(), Some((2, 0)));
        drop(pre1);

        // Rerun against the same manifest: zero trials execute and the
        // cell is reproduced exactly.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let cell2 = crate::exp_nev::nev_cell(
            &pre2,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre2.campaign_totals(), Some((0, 2)));
        assert_eq!(cell2.nev, cell1.nev);
        assert_eq!(cell2.pct, cell1.pct);
        assert_eq!(cell2.trainings, cell1.trainings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_guard_emits_paired_events() {
        let dir = scratch_dir("phase");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let pre = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        {
            let _phase = pre.phase("fig2");
        }
        pre.finish_campaign();
        let stream = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        let kinds: Vec<&str> = stream
            .lines()
            .map(|l| {
                if l.contains("PhaseStart") {
                    "PhaseStart"
                } else if l.contains("PhaseEnd") {
                    "PhaseEnd"
                } else if l.contains("CampaignStart") {
                    "CampaignStart"
                } else {
                    "CampaignEnd"
                }
            })
            .collect();
        assert_eq!(kinds, vec!["CampaignStart", "PhaseStart", "PhaseEnd", "CampaignEnd"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_plan_scatters_outcomes_back_to_cells_in_trial_order() {
        let pre = Prebaked::new(Budget::smoke());
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        // Three cells with heterogeneous trial counts; each trial encodes
        // its (cell, trial) coordinates into the outcome so the scatter
        // can be checked exactly.
        let plans: Vec<CellPlan<'_>> = (0..3usize)
            .map(|ci| {
                CellPlan::new("unit", format!("cell-{ci}"), fw, model, ci + 1, move |trial, _| {
                    Ok(TrialOutcome::ok().with_accuracy((ci * 10 + trial) as f64))
                })
            })
            .collect();
        let out = pre.run_plan(&plans);
        assert_eq!(out.len(), 3);
        for (ci, cell) in out.iter().enumerate() {
            assert_eq!(cell.len(), ci + 1, "cell {ci} trial count");
            for (trial, o) in cell.iter().enumerate() {
                assert_eq!(o.final_accuracy, Some((ci * 10 + trial) as f64));
            }
        }
    }

    #[test]
    fn run_plan_outcomes_match_per_cell_runs() {
        // The pooled dispatch must agree with running each cell alone:
        // seeds depend only on (fw, model, cell, trial), never on pool
        // composition.
        let pre = Prebaked::new(Budget::smoke());
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let trial_fn = |_trial: usize, seed: u64| Ok(TrialOutcome::ok().with_accuracy(seed as f64));
        let plans = vec![
            CellPlan::new("unit", "a", fw, model, 3, trial_fn),
            CellPlan::new("unit", "b", fw, model, 2, trial_fn),
        ];
        let pooled = pre.run_plan(&plans);
        let solo_a = pre.run_trials("unit", "a", fw, model, 3, trial_fn);
        let solo_b = pre.run_trials("unit", "b", fw, model, 2, trial_fn);
        assert_eq!(pooled[0], solo_a);
        assert_eq!(pooled[1], solo_b);
    }

    #[test]
    fn entry_slot_computes_each_key_once_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let map: Mutex<HashMap<u32, Arc<OnceLock<u32>>>> = Mutex::new(HashMap::new());
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let slot = entry_slot(&map, &42);
                    let v = *slot.get_or_init(|| {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window: everyone else should be
                        // blocked on this slot, not computing their own.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        7
                    });
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "key computed more than once");
    }

    #[test]
    fn pristine_checkpoints_are_memoized_and_clones_are_isolated() {
        let pre = Prebaked::new(Budget::smoke());
        let a = pre.checkpoint_shared(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let b = pre.checkpoint_shared(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        assert!(Arc::ptr_eq(&a, &b), "same (fw, model, dtype) must share one minted file");
        // A corrupted clone never leaks back into the shared pristine copy.
        let mut clone = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let path = clone.dataset_paths()[0].clone();
        let before = a.dataset(&path).unwrap().bytes().to_vec();
        clone.dataset_mut(&path).unwrap().set_bits(0, 0xFF).unwrap();
        assert_eq!(a.dataset(&path).unwrap().bytes(), &before[..]);
        assert_ne!(clone.dataset(&path).unwrap().bytes(), &before[..]);
    }

    #[test]
    fn baseline_accuracy_is_cached_and_framework_independent() {
        let pre = Prebaked::new(Budget::smoke());
        let a = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        let b = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        assert_eq!(a, b);
        // Resume through a different framework's checkpoint gives the same
        // trajectory (lossless layout round-trip).
        let ck_tf = pre.checkpoint(FrameworkKind::TensorFlow, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(
            FrameworkKind::TensorFlow,
            ModelKind::AlexNet,
            &ck_tf,
            pre.budget().resume_epochs,
        );
        assert_eq!(out.final_accuracy().unwrap(), a);
    }
}
