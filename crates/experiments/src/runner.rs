//! Shared experiment plumbing: pretrained baselines, checkpoint minting,
//! and deterministic per-trial seeding.

use crate::budget::Budget;
use parking_lot::Mutex;
use sefi_data::SyntheticCifar10;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::{Dataset, Dtype, H5File};
use sefi_models::ModelKind;
use sefi_nn::{EpochRecord, StateDict};
use std::collections::HashMap;
use std::path::PathBuf;

/// Master seed of the whole experimental campaign.
const CAMPAIGN_SEED: u64 = 0x5EF1_2021;

/// Stable per-trial seed: a pure function of (framework, model, experiment
/// label, trial index), so any table cell can be recomputed in isolation.
pub fn combo_seed(fw: FrameworkKind, model: ModelKind, label: &str, trial: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fw
        .id()
        .bytes()
        .chain(model.id().bytes())
        .chain(label.bytes())
        .chain(trial.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ CAMPAIGN_SEED
}

/// Pretrained state at the restart epoch, shared by every experiment.
///
/// The paper trains each (framework, model) combination once to epoch 20
/// and then mints arbitrarily many corrupted checkpoint copies. Because
/// the three frontends share the numeric engine, one pretraining per model
/// suffices here; checkpoints are then written in any framework's layout.
/// Pretrained weights are cached on disk under `target/sefi-cache`.
pub struct Prebaked {
    budget: Budget,
    data: SyntheticCifar10,
    baselines: Mutex<HashMap<ModelKind, StateDict>>,
    baseline_curves: Mutex<HashMap<(ModelKind, u32, usize), Vec<EpochRecord>>>,
}

impl Prebaked {
    /// Generate the dataset; baselines are trained (or loaded from cache)
    /// on first use.
    pub fn new(budget: Budget) -> Self {
        Prebaked {
            data: SyntheticCifar10::generate(budget.data_config()),
            budget,
            baselines: Mutex::new(HashMap::new()),
            baseline_curves: Mutex::new(HashMap::new()),
        }
    }

    /// The budget in force.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared dataset.
    pub fn data(&self) -> &SyntheticCifar10 {
        &self.data
    }

    fn cache_path(&self, model: ModelKind) -> PathBuf {
        let dir = PathBuf::from("target/sefi-cache");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("pre_{}_{}.sefi5", model.id(), self.budget.cache_key()))
    }

    /// The engine weights of `model` at the restart epoch.
    fn baseline_weights(&self, model: ModelKind) -> StateDict {
        if let Some(sd) = self.baselines.lock().get(&model) {
            return sd.clone();
        }
        let sd = self
            .load_cached_weights(model)
            .unwrap_or_else(|| self.pretrain(model));
        self.baselines.lock().insert(model, sd.clone());
        sd
    }

    fn pretrain(&self, model: ModelKind) -> StateDict {
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let out = session.train_to(&self.data, self.budget.restart_epoch);
        assert!(
            !out.collapsed(),
            "error-free pretraining of {model:?} collapsed — harness bug"
        );
        let sd = session.network_mut().state_dict();
        self.store_cached_weights(model, &sd);
        sd
    }

    /// Neutral on-disk serialization of a state dict (engine paths under
    /// `t/` for trainable and `s/` for auxiliary state).
    fn store_cached_weights(&self, model: ModelKind, sd: &StateDict) {
        let mut f = H5File::new();
        for e in sd.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = Dataset::from_f32(e.tensor.data(), e.tensor.shape(), Dtype::F32)
                .expect("consistent tensor");
            f.create_dataset(&format!("{prefix}/{}", e.path), ds).expect("unique paths");
        }
        let _ = f.save(self.cache_path(model));
    }

    fn load_cached_weights(&self, model: ModelKind) -> Option<StateDict> {
        let f = H5File::load(self.cache_path(model)).ok()?;
        // Validate against the current architecture by shape-checking via
        // load_state_dict; on any mismatch fall back to retraining.
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let reference = session.network_mut().state_dict();
        let mut sd = StateDict::new();
        for e in reference.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = f.dataset(&format!("{prefix}/{}", e.path)).ok()?;
            if ds.len() != e.tensor.len() {
                return None;
            }
            sd.push(
                e.path.clone(),
                sefi_tensor::Tensor::from_vec(ds.to_f32_vec(), e.tensor.shape()),
                e.trainable,
            );
        }
        session.network_mut().load_state_dict(&sd).ok()?;
        Some(sd)
    }

    fn fresh_session(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut cfg = SessionConfig::new(fw, model, CAMPAIGN_SEED);
        cfg.model_config = self.budget.model_config();
        // Batch size 8: small batches give the deep, narrow scaled models
        // (especially VGG16, which has no batch norm) enough update steps
        // per epoch to converge within the budgeted epoch counts.
        cfg.train.batch_size = 8.min(self.budget.train_images.max(1));
        Session::new(cfg)
    }

    /// A session positioned at the restart epoch with the pretrained
    /// weights — as if it had just trained there.
    pub fn session_at_restart(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut session = self.fresh_session(fw, model);
        let ck = self.checkpoint(fw, model, Dtype::F64);
        session.restore(&ck).expect("pristine checkpoint restores");
        session
    }

    /// Mint a pristine checkpoint of `model` at the restart epoch in `fw`'s
    /// layout at the requested precision. Corrupt a clone of this.
    pub fn checkpoint(&self, fw: FrameworkKind, model: ModelKind, dtype: Dtype) -> H5File {
        let sd = self.baseline_weights(model);
        let mut session = self.fresh_session(fw, model);
        session
            .network_mut()
            .load_state_dict(&sd)
            .expect("baseline weights fit the architecture");
        sefi_frameworks::save_checkpoint(
            fw,
            session.network_mut(),
            self.budget.restart_epoch,
            dtype,
        )
    }

    /// Resume a (possibly corrupted) checkpoint and train `epochs` more.
    /// Returns the outcome; the session is discarded.
    pub fn resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> sefi_nn::TrainOutcome {
        let mut session = self.fresh_session(fw, model);
        session.restore(file).expect("corrupted checkpoints remain structurally valid");
        let target = session.epoch() + epochs;
        session.train_to(&self.data, target)
    }

    /// The deterministic error-free resumed trajectory for (model, dtype):
    /// restore the pristine checkpoint and train to `end_epoch`. Cached —
    /// identical across frameworks because the layout round-trip is exact.
    pub fn baseline_curve(
        &self,
        model: ModelKind,
        dtype: Dtype,
        end_epoch: usize,
    ) -> Vec<EpochRecord> {
        let key = (model, dtype.size() as u32, end_epoch);
        if let Some(c) = self.baseline_curves.lock().get(&key) {
            return c.clone();
        }
        let ck = self.checkpoint(FrameworkKind::Chainer, model, dtype);
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        session.restore(&ck).expect("pristine checkpoint restores");
        let out = session.train_to(&self.data, end_epoch);
        assert!(!out.collapsed(), "error-free baseline collapsed — harness bug");
        let hist = out.history().to_vec();
        self.baseline_curves.lock().insert(key, hist.clone());
        hist
    }

    /// Baseline final accuracy after the standard resume window.
    pub fn baseline_final_accuracy(&self, model: ModelKind, dtype: Dtype) -> f64 {
        let end = self.budget.restart_epoch + self.budget.resume_epochs;
        self.baseline_curve(model, dtype, end)
            .last()
            .map(|r| r.test_accuracy)
            .expect("resume window is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_seeds_are_stable_and_distinct() {
        let a = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        let b = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        assert_eq!(a, b);
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 1));
        assert_ne!(a, combo_seed(FrameworkKind::PyTorch, ModelKind::AlexNet, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::Vgg16, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t5", 0));
    }

    #[test]
    fn prebaked_checkpoint_and_resume_are_deterministic() {
        let pre = Prebaked::new(Budget::smoke());
        let ck1 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let ck2 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        assert_eq!(ck1.to_bytes(), ck2.to_bytes());

        let o1 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck1, 1);
        let o2 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck2, 1);
        assert_eq!(o1.history(), o2.history());
        assert!(!o1.collapsed());
    }

    #[test]
    fn baseline_accuracy_is_cached_and_framework_independent() {
        let pre = Prebaked::new(Budget::smoke());
        let a = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        let b = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        assert_eq!(a, b);
        // Resume through a different framework's checkpoint gives the same
        // trajectory (lossless layout round-trip).
        let ck_tf = pre.checkpoint(FrameworkKind::TensorFlow, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(
            FrameworkKind::TensorFlow,
            ModelKind::AlexNet,
            &ck_tf,
            pre.budget().resume_epochs,
        );
        assert_eq!(out.final_accuracy().unwrap(), a);
    }
}
