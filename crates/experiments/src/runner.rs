//! Shared experiment plumbing: pretrained baselines, checkpoint minting,
//! and deterministic per-trial seeding.

use crate::budget::Budget;
use parking_lot::Mutex;
use rayon::prelude::*;
use sefi_data::SyntheticCifar10;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::{Dataset, Dtype, H5File};
use sefi_models::ModelKind;
use sefi_nn::{EpochRecord, StateDict};
use sefi_telemetry::{digest64, Aggregator, Event, JsonlSink, Manifest, TrialOutcome, TrialRecord};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Master seed of the whole experimental campaign.
const CAMPAIGN_SEED: u64 = 0x5EF1_2021;

/// Stable per-trial seed: a pure function of (framework, model, experiment
/// label, trial index), so any table cell can be recomputed in isolation.
pub fn combo_seed(fw: FrameworkKind, model: ModelKind, label: &str, trial: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in
        fw.id().bytes().chain(model.id().bytes()).chain(label.bytes()).chain(trial.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ CAMPAIGN_SEED
}

/// How a campaign records itself: where results live and what the
/// campaign is called in its telemetry stream.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name, stamped on campaign-level telemetry events.
    pub name: String,
    /// Directory holding per-experiment manifests and the event stream
    /// (`<results_dir>/<experiment>/manifest.jsonl`,
    /// `<results_dir>/telemetry.jsonl`).
    pub results_dir: PathBuf,
}

impl CampaignConfig {
    /// A campaign writing under the conventional `results/` directory.
    pub fn new(name: &str) -> Self {
        CampaignConfig { name: name.to_string(), results_dir: PathBuf::from("results") }
    }

    /// Redirect everything the campaign writes to `dir`.
    pub fn results_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.results_dir = dir.into();
        self
    }
}

/// Live campaign state: the event sink, the summary aggregator, and one
/// lazily opened manifest per experiment.
struct Campaign {
    name: String,
    config_digest: String,
    results_dir: PathBuf,
    sink: JsonlSink,
    aggregator: Aggregator,
    manifests: Mutex<HashMap<String, Arc<Manifest>>>,
    started: Instant,
}

impl Campaign {
    fn manifest_for(&self, experiment: &str) -> Arc<Manifest> {
        let mut manifests = self.manifests.lock();
        if let Some(m) = manifests.get(experiment) {
            return Arc::clone(m);
        }
        let path = self.results_dir.join(experiment).join("manifest.jsonl");
        let m = Arc::new(
            Manifest::open(&path)
                .unwrap_or_else(|e| panic!("cannot open manifest {}: {e}", path.display())),
        );
        manifests.insert(experiment.to_string(), Arc::clone(&m));
        m
    }
}

/// Emits `PhaseStart` on creation and `PhaseEnd` (with the wall-clock
/// duration) when dropped. A no-op outside a campaign.
pub struct PhaseGuard<'a> {
    campaign: Option<&'a Campaign>,
    name: String,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.campaign {
            c.sink.emit(&Event::PhaseEnd {
                phase: self.name.clone(),
                duration_ns: self.started.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Pretrained state at the restart epoch, shared by every experiment.
///
/// The paper trains each (framework, model) combination once to epoch 20
/// and then mints arbitrarily many corrupted checkpoint copies. Because
/// the three frontends share the numeric engine, one pretraining per model
/// suffices here; checkpoints are then written in any framework's layout.
/// Pretrained weights are cached on disk under `target/sefi-cache`.
///
/// Constructed with [`Prebaked::with_campaign`], it additionally records
/// telemetry and a per-experiment completed-trial manifest, and serves
/// already-completed trials from that manifest instead of re-running them.
pub struct Prebaked {
    budget: Budget,
    data: SyntheticCifar10,
    baselines: Mutex<HashMap<ModelKind, StateDict>>,
    baseline_curves: Mutex<HashMap<(ModelKind, u32, usize), Vec<EpochRecord>>>,
    campaign: Option<Campaign>,
}

impl Prebaked {
    /// Generate the dataset; baselines are trained (or loaded from cache)
    /// on first use. No telemetry, no manifest: every trial executes.
    pub fn new(budget: Budget) -> Self {
        Prebaked {
            data: SyntheticCifar10::generate(budget.data_config()),
            budget,
            baselines: Mutex::new(HashMap::new()),
            baseline_curves: Mutex::new(HashMap::new()),
            campaign: None,
        }
    }

    /// Like [`Prebaked::new`], but with campaign recording attached: a
    /// JSONL event stream at `<results_dir>/telemetry.jsonl`, an
    /// end-of-campaign summary, and per-experiment manifests that make a
    /// re-run skip every trial already on record.
    pub fn with_campaign(budget: Budget, config: CampaignConfig) -> std::io::Result<Self> {
        let sink = JsonlSink::to_file(config.results_dir.join("telemetry.jsonl"))?;
        let config_digest = digest64(&format!("{budget:?}"));
        sink.emit(&Event::CampaignStart {
            campaign: config.name.clone(),
            budget: budget.name.to_string(),
            config_digest: config_digest.clone(),
        });
        let mut pre = Prebaked::new(budget);
        pre.campaign = Some(Campaign {
            name: config.name,
            config_digest,
            results_dir: config.results_dir,
            sink,
            aggregator: Aggregator::new(),
            manifests: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });
        Ok(pre)
    }

    /// Start a named phase (one table or figure). Keep the guard alive
    /// for the phase's duration; timing is emitted on drop.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        if let Some(c) = &self.campaign {
            c.sink.emit(&Event::PhaseStart { phase: name.to_string() });
        }
        PhaseGuard {
            campaign: self.campaign.as_ref(),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// `(run, cached)` trial totals so far. `None` without a campaign.
    pub fn campaign_totals(&self) -> Option<(u64, u64)> {
        self.campaign.as_ref().map(|c| c.aggregator.totals())
    }

    /// Close the campaign: emit `CampaignEnd` and return the rendered
    /// trial summary. `None` without a campaign.
    pub fn finish_campaign(&self) -> Option<String> {
        let c = self.campaign.as_ref()?;
        let (trials_run, trials_cached) = c.aggregator.totals();
        c.sink.emit(&Event::CampaignEnd {
            campaign: c.name.clone(),
            trials_run,
            trials_cached,
            duration_ns: c.started.elapsed().as_nanos() as u64,
        });
        Some(c.aggregator.render())
    }

    /// Run the `trials` of one experiment cell, in parallel, through the
    /// campaign machinery.
    ///
    /// Each trial's seed is `combo_seed(fw, model, cell, trial)`; the
    /// closure receives `(trial, seed)` and returns what the trial
    /// produced. Under a campaign, a trial whose seed is already in the
    /// experiment's manifest (with a matching config digest) is served
    /// from the recorded outcome; every executed trial is appended to the
    /// manifest and flushed before the cell completes, so a killed
    /// campaign resumes with zero re-execution of completed trials.
    pub fn run_trials(
        &self,
        experiment: &str,
        cell: &str,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        f: impl Fn(usize, u64) -> TrialOutcome + Sync,
    ) -> Vec<TrialOutcome> {
        let Some(c) = &self.campaign else {
            return (0..trials)
                .into_par_iter()
                .map(|t| f(t, combo_seed(fw, model, cell, t)))
                .collect();
        };
        let manifest = c.manifest_for(experiment);
        (0..trials)
            .into_par_iter()
            .map(|trial| {
                let seed = combo_seed(fw, model, cell, trial);
                if let Some(rec) = manifest.lookup(seed, &c.config_digest) {
                    c.sink.emit(&Event::TrialEnd {
                        experiment: experiment.to_string(),
                        cell: cell.to_string(),
                        trial: trial as u64,
                        seed,
                        status: rec.outcome.status.clone(),
                        duration_ns: rec.duration_ns,
                        injections: rec.outcome.injections,
                        nan_redraws: rec.outcome.nan_redraws,
                        skipped: rec.outcome.skipped,
                        cached: true,
                    });
                    c.aggregator.record(experiment, &rec.outcome.status, rec.duration_ns, true);
                    return rec.outcome;
                }
                c.sink.emit(&Event::TrialStart {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    trial: trial as u64,
                    seed,
                });
                let t0 = Instant::now();
                let outcome = f(trial, seed);
                let duration_ns = t0.elapsed().as_nanos() as u64;
                if let Err(e) = manifest.record(TrialRecord {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    framework: fw.id().to_string(),
                    model: model.id().to_string(),
                    trial: trial as u64,
                    seed,
                    config_digest: c.config_digest.clone(),
                    duration_ns,
                    outcome: outcome.clone(),
                }) {
                    eprintln!("telemetry: failed to record trial {seed:x}: {e}");
                }
                c.sink.emit(&Event::TrialEnd {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    trial: trial as u64,
                    seed,
                    status: outcome.status.clone(),
                    duration_ns,
                    injections: outcome.injections,
                    nan_redraws: outcome.nan_redraws,
                    skipped: outcome.skipped,
                    cached: false,
                });
                c.aggregator.record(experiment, &outcome.status, duration_ns, false);
                outcome
            })
            .collect()
    }

    /// The budget in force.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared dataset.
    pub fn data(&self) -> &SyntheticCifar10 {
        &self.data
    }

    fn cache_path(&self, model: ModelKind) -> PathBuf {
        let dir = PathBuf::from("target/sefi-cache");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("pre_{}_{}.sefi5", model.id(), self.budget.cache_key()))
    }

    /// The engine weights of `model` at the restart epoch.
    fn baseline_weights(&self, model: ModelKind) -> StateDict {
        if let Some(sd) = self.baselines.lock().get(&model) {
            return sd.clone();
        }
        let sd = self.load_cached_weights(model).unwrap_or_else(|| self.pretrain(model));
        self.baselines.lock().insert(model, sd.clone());
        sd
    }

    fn pretrain(&self, model: ModelKind) -> StateDict {
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let out = session.train_to(&self.data, self.budget.restart_epoch);
        assert!(!out.collapsed(), "error-free pretraining of {model:?} collapsed — harness bug");
        let sd = session.network_mut().state_dict();
        self.store_cached_weights(model, &sd);
        sd
    }

    /// Neutral on-disk serialization of a state dict (engine paths under
    /// `t/` for trainable and `s/` for auxiliary state).
    fn store_cached_weights(&self, model: ModelKind, sd: &StateDict) {
        let mut f = H5File::new();
        for e in sd.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = Dataset::from_f32(e.tensor.data(), e.tensor.shape(), Dtype::F32)
                .expect("consistent tensor");
            f.create_dataset(&format!("{prefix}/{}", e.path), ds).expect("unique paths");
        }
        let _ = f.save(self.cache_path(model));
    }

    fn load_cached_weights(&self, model: ModelKind) -> Option<StateDict> {
        let f = H5File::load(self.cache_path(model)).ok()?;
        // Validate against the current architecture by shape-checking via
        // load_state_dict; on any mismatch fall back to retraining.
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let reference = session.network_mut().state_dict();
        let mut sd = StateDict::new();
        for e in reference.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = f.dataset(&format!("{prefix}/{}", e.path)).ok()?;
            if ds.len() != e.tensor.len() {
                return None;
            }
            sd.push(
                e.path.clone(),
                sefi_tensor::Tensor::from_vec(ds.to_f32_vec(), e.tensor.shape()),
                e.trainable,
            );
        }
        session.network_mut().load_state_dict(&sd).ok()?;
        Some(sd)
    }

    fn fresh_session(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut cfg = SessionConfig::new(fw, model, CAMPAIGN_SEED);
        cfg.model_config = self.budget.model_config();
        // Batch size 8: small batches give the deep, narrow scaled models
        // (especially VGG16, which has no batch norm) enough update steps
        // per epoch to converge within the budgeted epoch counts.
        cfg.train.batch_size = 8.min(self.budget.train_images.max(1));
        Session::new(cfg)
    }

    /// A session positioned at the restart epoch with the pretrained
    /// weights — as if it had just trained there.
    pub fn session_at_restart(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut session = self.fresh_session(fw, model);
        let ck = self.checkpoint(fw, model, Dtype::F64);
        session.restore(&ck).expect("pristine checkpoint restores");
        session
    }

    /// Mint a pristine checkpoint of `model` at the restart epoch in `fw`'s
    /// layout at the requested precision. Corrupt a clone of this.
    pub fn checkpoint(&self, fw: FrameworkKind, model: ModelKind, dtype: Dtype) -> H5File {
        let sd = self.baseline_weights(model);
        let mut session = self.fresh_session(fw, model);
        session.network_mut().load_state_dict(&sd).expect("baseline weights fit the architecture");
        sefi_frameworks::save_checkpoint(
            fw,
            session.network_mut(),
            self.budget.restart_epoch,
            dtype,
        )
    }

    /// Resume a (possibly corrupted) checkpoint and train `epochs` more.
    /// Returns the outcome; the session is discarded.
    pub fn resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> sefi_nn::TrainOutcome {
        let mut session = self.fresh_session(fw, model);
        session.restore(file).expect("corrupted checkpoints remain structurally valid");
        let target = session.epoch() + epochs;
        session.train_to(&self.data, target)
    }

    /// The deterministic error-free resumed trajectory for (model, dtype):
    /// restore the pristine checkpoint and train to `end_epoch`. Cached —
    /// identical across frameworks because the layout round-trip is exact.
    pub fn baseline_curve(
        &self,
        model: ModelKind,
        dtype: Dtype,
        end_epoch: usize,
    ) -> Vec<EpochRecord> {
        let key = (model, dtype.size() as u32, end_epoch);
        if let Some(c) = self.baseline_curves.lock().get(&key) {
            return c.clone();
        }
        let ck = self.checkpoint(FrameworkKind::Chainer, model, dtype);
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        session.restore(&ck).expect("pristine checkpoint restores");
        let out = session.train_to(&self.data, end_epoch);
        assert!(!out.collapsed(), "error-free baseline collapsed — harness bug");
        let hist = out.history().to_vec();
        self.baseline_curves.lock().insert(key, hist.clone());
        hist
    }

    /// Baseline final accuracy after the standard resume window.
    pub fn baseline_final_accuracy(&self, model: ModelKind, dtype: Dtype) -> f64 {
        let end = self.budget.restart_epoch + self.budget.resume_epochs;
        self.baseline_curve(model, dtype, end)
            .last()
            .map(|r| r.test_accuracy)
            .expect("resume window is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_seeds_are_stable_and_distinct() {
        let a = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        let b = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        assert_eq!(a, b);
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 1));
        assert_ne!(a, combo_seed(FrameworkKind::PyTorch, ModelKind::AlexNet, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::Vgg16, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t5", 0));
    }

    #[test]
    fn prebaked_checkpoint_and_resume_are_deterministic() {
        let pre = Prebaked::new(Budget::smoke());
        let ck1 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let ck2 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        assert_eq!(ck1.to_bytes(), ck2.to_bytes());

        let o1 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck1, 1);
        let o2 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck2, 1);
        assert_eq!(o1.history(), o2.history());
        assert!(!o1.collapsed());
    }

    /// Unique scratch directory for campaign tests (parallel-safe).
    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sefi_runner_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn campaign_resumes_from_manifest_without_rerunning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("resume");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);
        let run = |pre: &Prebaked, trials: usize| {
            pre.run_trials("unit", "cell", fw, model, trials, |trial, seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                TrialOutcome::ok()
                    .with_accuracy((seed % 1000) as f64 / 1000.0)
                    .with_curve(vec![trial as f64, 0.5])
                    .with_counters(7, 1, 0)
            })
        };

        // First half of the campaign, then the runner is dropped — as if
        // the process had been killed after three trials.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let first = run(&pre1, 3);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(pre1.campaign_totals(), Some((3, 0)));
        drop(pre1);

        // A fresh runner over the same manifest executes only the three
        // missing trials and returns recorded outcomes for the rest.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let second = run(&pre2, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre2.campaign_totals(), Some((3, 3)));
        assert_eq!(&second[..3], &first[..]);
        drop(pre2);

        // A third, fully completed pass executes nothing at all.
        let pre3 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let third = run(&pre3, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre3.campaign_totals(), Some((0, 6)));
        assert_eq!(third, second);
        assert!(dir.join("unit/manifest.jsonl").exists());
        assert!(dir.join("telemetry.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_campaign_reproduces_byte_identical_tables() {
        let dir = scratch_dir("tables");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);

        // A real experiment cell: Table IV protocol, two trainings.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let cell1 = crate::exp_nev::nev_cell(
            &pre1,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre1.campaign_totals(), Some((2, 0)));
        drop(pre1);

        // Rerun against the same manifest: zero trials execute and the
        // cell is reproduced exactly.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let cell2 = crate::exp_nev::nev_cell(
            &pre2,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre2.campaign_totals(), Some((0, 2)));
        assert_eq!(cell2.nev, cell1.nev);
        assert_eq!(cell2.pct, cell1.pct);
        assert_eq!(cell2.trainings, cell1.trainings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_guard_emits_paired_events() {
        let dir = scratch_dir("phase");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let pre = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        {
            let _phase = pre.phase("fig2");
        }
        pre.finish_campaign();
        let stream = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        let kinds: Vec<&str> = stream
            .lines()
            .map(|l| {
                if l.contains("PhaseStart") {
                    "PhaseStart"
                } else if l.contains("PhaseEnd") {
                    "PhaseEnd"
                } else if l.contains("CampaignStart") {
                    "CampaignStart"
                } else {
                    "CampaignEnd"
                }
            })
            .collect();
        assert_eq!(kinds, vec!["CampaignStart", "PhaseStart", "PhaseEnd", "CampaignEnd"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_accuracy_is_cached_and_framework_independent() {
        let pre = Prebaked::new(Budget::smoke());
        let a = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        let b = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        assert_eq!(a, b);
        // Resume through a different framework's checkpoint gives the same
        // trajectory (lossless layout round-trip).
        let ck_tf = pre.checkpoint(FrameworkKind::TensorFlow, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(
            FrameworkKind::TensorFlow,
            ModelKind::AlexNet,
            &ck_tf,
            pre.budget().resume_epochs,
        );
        assert_eq!(out.final_accuracy().unwrap(), a);
    }
}
