//! Shared experiment plumbing: pretrained baselines, checkpoint minting,
//! and deterministic per-trial seeding.

use crate::budget::Budget;
use parking_lot::Mutex;
use rayon::prelude::*;
use sefi_data::SyntheticCifar10;
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_hdf5::{Dataset, Dtype, H5File};
use sefi_models::ModelKind;
use sefi_nn::{EpochRecord, StateDict};
use sefi_telemetry::{digest64, Aggregator, Event, JsonlSink, Manifest, TrialOutcome, TrialRecord};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Why a trial could not produce an outcome: a propagated error from the
/// corruption/restore/replay machinery, or (via the runner's panic guard)
/// the message of a panic that unwound out of the trial closure. Either
/// way the trial becomes a recorded [`TrialOutcome::failed`] instead of
/// killing the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    reason: String,
}

impl TrialError {
    /// A failure with an explicit reason.
    pub fn new(reason: impl Into<String>) -> Self {
        TrialError { reason: reason.into() }
    }

    /// The human-readable failure reason recorded in the manifest.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl From<String> for TrialError {
    fn from(reason: String) -> Self {
        TrialError::new(reason)
    }
}

impl From<&str> for TrialError {
    fn from(reason: &str) -> Self {
        TrialError::new(reason)
    }
}

impl From<sefi_core::CorruptError> for TrialError {
    fn from(e: sefi_core::CorruptError) -> Self {
        TrialError::new(e.to_string())
    }
}

impl From<sefi_hdf5::Error> for TrialError {
    fn from(e: sefi_hdf5::Error) -> Self {
        TrialError::new(e.to_string())
    }
}

impl From<std::io::Error> for TrialError {
    fn from(e: std::io::Error) -> Self {
        TrialError::new(e.to_string())
    }
}

/// What a trial closure returns: a completed outcome, or the reason it
/// could not complete.
pub type TrialResult = Result<TrialOutcome, TrialError>;

/// Panic capture for trial isolation: a process-wide hook (installed once,
/// chaining to the previous hook) that, while the current thread is inside
/// a guarded trial, records the panic message + location into a
/// thread-local slot instead of printing a backtrace to stderr.
mod panic_capture {
    use std::cell::RefCell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    thread_local! {
        // None: not capturing (delegate to the previous hook).
        // Some(None): capturing, no panic seen yet.
        // Some(Some(msg)): capturing, panic message recorded.
        static CAPTURE: RefCell<Option<Option<String>>> = const { RefCell::new(None) };
    }

    fn install_hook() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let captured = CAPTURE.with(|slot| {
                    let mut slot = slot.borrow_mut();
                    match slot.as_mut() {
                        Some(msg) => {
                            let payload = info
                                .payload()
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            *msg = Some(match info.location() {
                                Some(loc) => {
                                    format!("{payload} at {}:{}", loc.file(), loc.line())
                                }
                                None => payload,
                            });
                            true
                        }
                        None => false,
                    }
                });
                if !captured {
                    prev(info);
                }
            }));
        });
    }

    /// Run `f`, converting any panic into `Err(message)`. Panics outside
    /// `catch` (other threads, nested non-trial code) behave normally.
    pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        install_hook();
        CAPTURE.with(|slot| *slot.borrow_mut() = Some(None));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        let message = CAPTURE.with(|slot| slot.borrow_mut().take()).flatten();
        match result {
            Ok(v) => Ok(v),
            Err(payload) => Err(message.unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string())
            })),
        }
    }
}

/// Test-only fault hook: when `SEFI_FAIL_TRIAL="experiment:cell:trial"` is
/// set, the matching trial panics inside the runner's guard. Lets CI prove
/// a deliberately-failing cell is isolated without patching experiment
/// code. Parsed once; the cell itself may contain colons.
fn injected_failure(experiment: &str, cell: &str, trial: usize) -> bool {
    static TARGET: OnceLock<Option<(String, String, usize)>> = OnceLock::new();
    let target = TARGET.get_or_init(|| {
        let spec = std::env::var("SEFI_FAIL_TRIAL").ok()?;
        let (exp, rest) = spec.split_once(':')?;
        let (cell, trial) = rest.rsplit_once(':')?;
        Some((exp.to_string(), cell.to_string(), trial.parse().ok()?))
    });
    matches!(target, Some((e, c, t)) if e == experiment && c == cell && *t == trial)
}

/// Master seed of the whole experimental campaign.
const CAMPAIGN_SEED: u64 = 0x5EF1_2021;

/// Version of the manifest key-space: bumped whenever `combo_seed` or the
/// record semantics change, so records minted by an older runner are never
/// cross-served to a newer one. Mixed into the campaign config digest.
const MANIFEST_SCHEMA: u32 = 2;

/// Stable per-trial seed: a pure function of (framework, model, experiment
/// label, trial index), so any table cell can be recomputed in isolation.
pub fn combo_seed(fw: FrameworkKind, model: ModelKind, label: &str, trial: usize) -> u64 {
    combo_seed_parts(fw.id(), model.id(), label, trial)
}

/// The hash behind [`combo_seed`], over the raw id strings. Each string
/// field is hashed behind a length prefix, so the encoding is prefix-free
/// and distinct `(fw, model, label)` triples like `("ab","c")`/`("a","bc")`
/// can no longer concatenate to the same byte stream (which previously let
/// manifest-cached outcomes cross-serve between cells). Public so property
/// tests can probe injectivity over the field boundaries.
pub fn combo_seed_parts(fw: &str, model: &str, label: &str, trial: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for field in [fw, model, label] {
        mix(&(field.len() as u64).to_le_bytes());
        mix(field.as_bytes());
    }
    mix(&trial.to_le_bytes());
    h ^ CAMPAIGN_SEED
}

/// How a campaign records itself: where results live and what the
/// campaign is called in its telemetry stream.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name, stamped on campaign-level telemetry events.
    pub name: String,
    /// Directory holding per-experiment manifests and the event stream
    /// (`<results_dir>/<experiment>/manifest.jsonl`,
    /// `<results_dir>/telemetry.jsonl`).
    pub results_dir: PathBuf,
    /// Re-execute trials whose manifest record is a failure instead of
    /// serving the recorded failure. Successes are never re-executed.
    pub retry_failed: bool,
}

impl CampaignConfig {
    /// A campaign writing under the conventional `results/` directory.
    pub fn new(name: &str) -> Self {
        CampaignConfig {
            name: name.to_string(),
            results_dir: PathBuf::from("results"),
            retry_failed: false,
        }
    }

    /// Redirect everything the campaign writes to `dir`.
    pub fn results_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.results_dir = dir.into();
        self
    }

    /// Re-run manifest-recorded failures (the `--retry-failed` flag).
    pub fn retry_failed(mut self, retry: bool) -> Self {
        self.retry_failed = retry;
        self
    }
}

/// Live campaign state: the event sink, the summary aggregator, and one
/// lazily opened manifest per experiment.
struct Campaign {
    name: String,
    config_digest: String,
    results_dir: PathBuf,
    retry_failed: bool,
    sink: JsonlSink,
    aggregator: Aggregator,
    manifests: Mutex<HashMap<String, Arc<Manifest>>>,
    started: Instant,
}

impl Campaign {
    fn manifest_for(&self, experiment: &str) -> Arc<Manifest> {
        let mut manifests = self.manifests.lock();
        if let Some(m) = manifests.get(experiment) {
            return Arc::clone(m);
        }
        let path = self.results_dir.join(experiment).join("manifest.jsonl");
        let m = Arc::new(
            Manifest::open(&path)
                .unwrap_or_else(|e| panic!("cannot open manifest {}: {e}", path.display())),
        );
        manifests.insert(experiment.to_string(), Arc::clone(&m));
        m
    }
}

/// Emits `PhaseStart` on creation and `PhaseEnd` (with the wall-clock
/// duration) when dropped. A no-op outside a campaign.
pub struct PhaseGuard<'a> {
    campaign: Option<&'a Campaign>,
    name: String,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.campaign {
            c.sink.emit(&Event::PhaseEnd {
                phase: self.name.clone(),
                duration_ns: self.started.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Pretrained state at the restart epoch, shared by every experiment.
///
/// The paper trains each (framework, model) combination once to epoch 20
/// and then mints arbitrarily many corrupted checkpoint copies. Because
/// the three frontends share the numeric engine, one pretraining per model
/// suffices here; checkpoints are then written in any framework's layout.
/// Pretrained weights are cached on disk under `target/sefi-cache`.
///
/// Constructed with [`Prebaked::with_campaign`], it additionally records
/// telemetry and a per-experiment completed-trial manifest, and serves
/// already-completed trials from that manifest instead of re-running them.
pub struct Prebaked {
    budget: Budget,
    data: SyntheticCifar10,
    baselines: Mutex<HashMap<ModelKind, StateDict>>,
    baseline_curves: Mutex<HashMap<(ModelKind, u32, usize), Vec<EpochRecord>>>,
    campaign: Option<Campaign>,
}

impl Prebaked {
    /// Generate the dataset; baselines are trained (or loaded from cache)
    /// on first use. No telemetry, no manifest: every trial executes.
    pub fn new(budget: Budget) -> Self {
        Prebaked {
            data: SyntheticCifar10::generate(budget.data_config()),
            budget,
            baselines: Mutex::new(HashMap::new()),
            baseline_curves: Mutex::new(HashMap::new()),
            campaign: None,
        }
    }

    /// Like [`Prebaked::new`], but with campaign recording attached: a
    /// JSONL event stream at `<results_dir>/telemetry.jsonl`, an
    /// end-of-campaign summary, and per-experiment manifests that make a
    /// re-run skip every trial already on record.
    pub fn with_campaign(budget: Budget, config: CampaignConfig) -> std::io::Result<Self> {
        let sink = JsonlSink::to_file(config.results_dir.join("telemetry.jsonl"))?;
        // The manifest schema version scopes the digest: bumping it (e.g.
        // for the combo_seed separator fix) retires every record minted by
        // an older runner instead of silently misreading it.
        let config_digest = digest64(&format!("schema=v{MANIFEST_SCHEMA};{budget:?}"));
        sink.emit(&Event::CampaignStart {
            campaign: config.name.clone(),
            budget: budget.name.to_string(),
            config_digest: config_digest.clone(),
        });
        let mut pre = Prebaked::new(budget);
        pre.campaign = Some(Campaign {
            name: config.name,
            config_digest,
            results_dir: config.results_dir,
            retry_failed: config.retry_failed,
            sink,
            aggregator: Aggregator::new(),
            manifests: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });
        Ok(pre)
    }

    /// Start a named phase (one table or figure). Keep the guard alive
    /// for the phase's duration; timing is emitted on drop.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        if let Some(c) = &self.campaign {
            c.sink.emit(&Event::PhaseStart { phase: name.to_string() });
        }
        PhaseGuard {
            campaign: self.campaign.as_ref(),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// `(run, cached)` trial totals so far. `None` without a campaign.
    pub fn campaign_totals(&self) -> Option<(u64, u64)> {
        self.campaign.as_ref().map(|c| c.aggregator.totals())
    }

    /// Trials recorded as failed so far. `None` without a campaign.
    pub fn campaign_failed(&self) -> Option<u64> {
        self.campaign.as_ref().map(|c| c.aggregator.failed_total())
    }

    /// Close the campaign: emit `CampaignEnd` and return the rendered
    /// trial summary. `None` without a campaign.
    pub fn finish_campaign(&self) -> Option<String> {
        let c = self.campaign.as_ref()?;
        let (trials_run, trials_cached) = c.aggregator.totals();
        c.sink.emit(&Event::CampaignEnd {
            campaign: c.name.clone(),
            trials_run,
            trials_cached,
            trials_failed: c.aggregator.failed_total(),
            duration_ns: c.started.elapsed().as_nanos() as u64,
        });
        Some(c.aggregator.render())
    }

    /// Path for a campaign artifact (CSV, report) named `name`: under the
    /// campaign's results directory when one is attached, else under the
    /// conventional `results/`. Creates the directory.
    pub fn results_file(&self, name: &str) -> PathBuf {
        let dir = match &self.campaign {
            Some(c) => c.results_dir.clone(),
            None => PathBuf::from("results"),
        };
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    /// Run the `trials` of one experiment cell, in parallel, through the
    /// campaign machinery, with per-trial fault isolation.
    ///
    /// Each trial's seed is `combo_seed(fw, model, cell, trial)`; the
    /// closure receives `(trial, seed)` and returns `Ok(outcome)` or an
    /// error describing why the trial could not complete. Errors — and
    /// panics that unwind out of the closure — become recorded
    /// [`TrialOutcome::failed`] outcomes carrying the reason; the other
    /// trials of the cell (and the rest of the campaign) keep running.
    ///
    /// Under a campaign, a trial whose seed is already in the
    /// experiment's manifest (with a matching config digest) is served
    /// from the recorded outcome; every executed trial is appended to the
    /// manifest and flushed before the cell completes, so a killed
    /// campaign resumes with zero re-execution of completed trials.
    /// Recorded failures are also served (resume skips known-bad trials)
    /// unless the campaign was opened with
    /// [`CampaignConfig::retry_failed`].
    pub fn run_trials(
        &self,
        experiment: &str,
        cell: &str,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        f: impl Fn(usize, u64) -> TrialResult + Sync,
    ) -> Vec<TrialOutcome> {
        self.run_trials_validated(experiment, cell, fw, model, trials, |_| true, f)
    }

    /// [`Prebaked::run_trials`] with a validity check on manifest-cached
    /// records: a cached non-failed outcome rejected by `valid` (e.g. an
    /// old-schema record missing a field the caller needs) is re-executed
    /// instead of served.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trials_validated(
        &self,
        experiment: &str,
        cell: &str,
        fw: FrameworkKind,
        model: ModelKind,
        trials: usize,
        valid: impl Fn(&TrialOutcome) -> bool + Sync,
        f: impl Fn(usize, u64) -> TrialResult + Sync,
    ) -> Vec<TrialOutcome> {
        // Run one trial through the panic guard, yielding the outcome to
        // record: the closure's own, or a failed outcome carrying the
        // propagated error / captured panic message.
        let execute = |trial: usize, seed: u64| -> TrialOutcome {
            let guarded = panic_capture::catch(|| {
                if injected_failure(experiment, cell, trial) {
                    panic!("injected test failure (SEFI_FAIL_TRIAL)");
                }
                f(trial, seed)
            });
            let failure = match guarded {
                Ok(Ok(outcome)) => return outcome,
                Ok(Err(e)) => e.reason,
                Err(msg) => format!("panic: {msg}"),
            };
            eprintln!("trial failed: {experiment}/{cell} trial {trial} (seed {seed:x}): {failure}");
            TrialOutcome::failed(failure)
        };
        let Some(c) = &self.campaign else {
            return (0..trials)
                .into_par_iter()
                .map(|t| execute(t, combo_seed(fw, model, cell, t)))
                .collect();
        };
        let manifest = c.manifest_for(experiment);
        (0..trials)
            .into_par_iter()
            .map(|trial| {
                let seed = combo_seed(fw, model, cell, trial);
                if let Some(rec) = manifest.lookup(seed, &c.config_digest) {
                    let serve =
                        if rec.outcome.is_failed() { !c.retry_failed } else { valid(&rec.outcome) };
                    if serve {
                        c.sink.emit(&Event::TrialEnd {
                            experiment: experiment.to_string(),
                            cell: cell.to_string(),
                            trial: trial as u64,
                            seed,
                            status: rec.outcome.status.clone(),
                            duration_ns: rec.duration_ns,
                            injections: rec.outcome.injections,
                            nan_redraws: rec.outcome.nan_redraws,
                            skipped: rec.outcome.skipped,
                            cached: true,
                        });
                        c.aggregator.record(experiment, &rec.outcome.status, rec.duration_ns, true);
                        return rec.outcome;
                    }
                }
                c.sink.emit(&Event::TrialStart {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    trial: trial as u64,
                    seed,
                });
                let t0 = Instant::now();
                let outcome = execute(trial, seed);
                let duration_ns = t0.elapsed().as_nanos() as u64;
                if let Some(reason) = &outcome.failure {
                    c.sink.emit(&Event::TrialFailed {
                        experiment: experiment.to_string(),
                        cell: cell.to_string(),
                        trial: trial as u64,
                        seed,
                        reason: reason.clone(),
                        duration_ns,
                    });
                }
                if let Err(e) = manifest.record(TrialRecord {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    framework: fw.id().to_string(),
                    model: model.id().to_string(),
                    trial: trial as u64,
                    seed,
                    config_digest: c.config_digest.clone(),
                    duration_ns,
                    outcome: outcome.clone(),
                }) {
                    eprintln!("telemetry: failed to record trial {seed:x}: {e}");
                }
                c.sink.emit(&Event::TrialEnd {
                    experiment: experiment.to_string(),
                    cell: cell.to_string(),
                    trial: trial as u64,
                    seed,
                    status: outcome.status.clone(),
                    duration_ns,
                    injections: outcome.injections,
                    nan_redraws: outcome.nan_redraws,
                    skipped: outcome.skipped,
                    cached: false,
                });
                c.aggregator.record(experiment, &outcome.status, duration_ns, false);
                outcome
            })
            .collect()
    }

    /// The budget in force.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared dataset.
    pub fn data(&self) -> &SyntheticCifar10 {
        &self.data
    }

    fn cache_path(&self, model: ModelKind) -> PathBuf {
        let dir = PathBuf::from("target/sefi-cache");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("pre_{}_{}.sefi5", model.id(), self.budget.cache_key()))
    }

    /// The engine weights of `model` at the restart epoch.
    fn baseline_weights(&self, model: ModelKind) -> StateDict {
        if let Some(sd) = self.baselines.lock().get(&model) {
            return sd.clone();
        }
        let sd = self.load_cached_weights(model).unwrap_or_else(|| self.pretrain(model));
        self.baselines.lock().insert(model, sd.clone());
        sd
    }

    fn pretrain(&self, model: ModelKind) -> StateDict {
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let out = session.train_to(&self.data, self.budget.restart_epoch);
        assert!(!out.collapsed(), "error-free pretraining of {model:?} collapsed — harness bug");
        let sd = session.network_mut().state_dict();
        self.store_cached_weights(model, &sd);
        sd
    }

    /// Neutral on-disk serialization of a state dict (engine paths under
    /// `t/` for trainable and `s/` for auxiliary state).
    fn store_cached_weights(&self, model: ModelKind, sd: &StateDict) {
        let mut f = H5File::new();
        for e in sd.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = Dataset::from_f32(e.tensor.data(), e.tensor.shape(), Dtype::F32)
                .expect("consistent tensor");
            f.create_dataset(&format!("{prefix}/{}", e.path), ds).expect("unique paths");
        }
        let _ = f.save(self.cache_path(model));
    }

    fn load_cached_weights(&self, model: ModelKind) -> Option<StateDict> {
        let f = H5File::load(self.cache_path(model)).ok()?;
        // Validate against the current architecture by shape-checking via
        // load_state_dict; on any mismatch fall back to retraining.
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        let reference = session.network_mut().state_dict();
        let mut sd = StateDict::new();
        for e in reference.entries() {
            let prefix = if e.trainable { "t" } else { "s" };
            let ds = f.dataset(&format!("{prefix}/{}", e.path)).ok()?;
            if ds.len() != e.tensor.len() {
                return None;
            }
            sd.push(
                e.path.clone(),
                sefi_tensor::Tensor::from_vec(ds.to_f32_vec(), e.tensor.shape()),
                e.trainable,
            );
        }
        session.network_mut().load_state_dict(&sd).ok()?;
        Some(sd)
    }

    fn fresh_session(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut cfg = SessionConfig::new(fw, model, CAMPAIGN_SEED);
        cfg.model_config = self.budget.model_config();
        // Batch size 8: small batches give the deep, narrow scaled models
        // (especially VGG16, which has no batch norm) enough update steps
        // per epoch to converge within the budgeted epoch counts.
        cfg.train.batch_size = 8.min(self.budget.train_images.max(1));
        Session::new(cfg)
    }

    /// A session positioned at the restart epoch with the pretrained
    /// weights — as if it had just trained there.
    pub fn session_at_restart(&self, fw: FrameworkKind, model: ModelKind) -> Session {
        let mut session = self.fresh_session(fw, model);
        let ck = self.checkpoint(fw, model, Dtype::F64);
        session.restore(&ck).expect("pristine checkpoint restores");
        session
    }

    /// Mint a pristine checkpoint of `model` at the restart epoch in `fw`'s
    /// layout at the requested precision. Corrupt a clone of this.
    pub fn checkpoint(&self, fw: FrameworkKind, model: ModelKind, dtype: Dtype) -> H5File {
        let sd = self.baseline_weights(model);
        let mut session = self.fresh_session(fw, model);
        session.network_mut().load_state_dict(&sd).expect("baseline weights fit the architecture");
        sefi_frameworks::save_checkpoint(
            fw,
            session.network_mut(),
            self.budget.restart_epoch,
            dtype,
        )
    }

    /// Resume a (possibly corrupted) checkpoint and train `epochs` more.
    /// Returns the outcome; the session is discarded. Panics if the
    /// checkpoint is structurally unloadable — trial closures should use
    /// [`Prebaked::try_resume`] so that case becomes a recorded failure.
    pub fn resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> sefi_nn::TrainOutcome {
        self.try_resume(fw, model, file, epochs)
            .expect("corrupted checkpoints remain structurally valid")
    }

    /// Fallible [`Prebaked::resume`]: a checkpoint the framework cannot
    /// restore (bit flips can corrupt structure, not just values) becomes
    /// an `Err` instead of a panic.
    pub fn try_resume(
        &self,
        fw: FrameworkKind,
        model: ModelKind,
        file: &H5File,
        epochs: usize,
    ) -> Result<sefi_nn::TrainOutcome, TrialError> {
        let mut session = self.fresh_session(fw, model);
        session.restore(file).map_err(|e| TrialError::new(format!("restore failed: {e}")))?;
        let target = session.epoch() + epochs;
        Ok(session.train_to(&self.data, target))
    }

    /// The deterministic error-free resumed trajectory for (model, dtype):
    /// restore the pristine checkpoint and train to `end_epoch`. Cached —
    /// identical across frameworks because the layout round-trip is exact.
    pub fn baseline_curve(
        &self,
        model: ModelKind,
        dtype: Dtype,
        end_epoch: usize,
    ) -> Vec<EpochRecord> {
        let key = (model, dtype.size() as u32, end_epoch);
        if let Some(c) = self.baseline_curves.lock().get(&key) {
            return c.clone();
        }
        let ck = self.checkpoint(FrameworkKind::Chainer, model, dtype);
        let mut session = self.fresh_session(FrameworkKind::Chainer, model);
        session.restore(&ck).expect("pristine checkpoint restores");
        let out = session.train_to(&self.data, end_epoch);
        assert!(!out.collapsed(), "error-free baseline collapsed — harness bug");
        let hist = out.history().to_vec();
        self.baseline_curves.lock().insert(key, hist.clone());
        hist
    }

    /// Baseline final accuracy after the standard resume window.
    pub fn baseline_final_accuracy(&self, model: ModelKind, dtype: Dtype) -> f64 {
        let end = self.budget.restart_epoch + self.budget.resume_epochs;
        self.baseline_curve(model, dtype, end)
            .last()
            .map(|r| r.test_accuracy)
            .expect("resume window is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_seeds_are_stable_and_distinct() {
        let a = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        let b = combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 0);
        assert_eq!(a, b);
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t4", 1));
        assert_ne!(a, combo_seed(FrameworkKind::PyTorch, ModelKind::AlexNet, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::Vgg16, "t4", 0));
        assert_ne!(a, combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "t5", 0));
    }

    #[test]
    fn combo_seed_separates_field_boundaries() {
        // Regression: without length prefixes these concatenate to the
        // same byte stream and cross-served manifest records.
        assert_ne!(combo_seed_parts("ab", "c", "t", 0), combo_seed_parts("a", "bc", "t", 0));
        assert_ne!(combo_seed_parts("a", "bc", "t", 0), combo_seed_parts("a", "b", "ct", 0));
        assert_ne!(combo_seed_parts("", "ab", "t", 0), combo_seed_parts("ab", "", "t", 0));
    }

    #[test]
    fn prebaked_checkpoint_and_resume_are_deterministic() {
        let pre = Prebaked::new(Budget::smoke());
        let ck1 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        let ck2 = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
        assert_eq!(ck1.to_bytes(), ck2.to_bytes());

        let o1 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck1, 1);
        let o2 = pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck2, 1);
        assert_eq!(o1.history(), o2.history());
        assert!(!o1.collapsed());
    }

    /// Unique scratch directory for campaign tests (parallel-safe).
    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sefi_runner_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn campaign_resumes_from_manifest_without_rerunning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("resume");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);
        let run = |pre: &Prebaked, trials: usize| {
            pre.run_trials("unit", "cell", fw, model, trials, |trial, seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok()
                    .with_accuracy((seed % 1000) as f64 / 1000.0)
                    .with_curve(vec![trial as f64, 0.5])
                    .with_counters(7, 1, 0))
            })
        };

        // First half of the campaign, then the runner is dropped — as if
        // the process had been killed after three trials.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let first = run(&pre1, 3);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(pre1.campaign_totals(), Some((3, 0)));
        drop(pre1);

        // A fresh runner over the same manifest executes only the three
        // missing trials and returns recorded outcomes for the rest.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let second = run(&pre2, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre2.campaign_totals(), Some((3, 3)));
        assert_eq!(&second[..3], &first[..]);
        drop(pre2);

        // A third, fully completed pass executes nothing at all.
        let pre3 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let third = run(&pre3, 6);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre3.campaign_totals(), Some((0, 6)));
        assert_eq!(third, second);
        assert!(dir.join("unit/manifest.jsonl").exists());
        assert!(dir.join("telemetry.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_trial_is_isolated_recorded_and_retried_only_on_request() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("panic");
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);
        let run = |pre: &Prebaked, panic_on_2: bool| {
            pre.run_trials("unit", "cell", fw, model, 5, |trial, seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                if panic_on_2 && trial == 2 {
                    panic!("boom at trial {trial}");
                }
                Ok(TrialOutcome::ok().with_accuracy((seed % 1000) as f64 / 1000.0))
            })
        };

        // A panic on trial 2 does not stop trials 0,1,3,4; the failure is
        // recorded with the panic message and location.
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let first = run(&pre1, true);
        assert_eq!(executed.load(Ordering::Relaxed), 5);
        assert_eq!(first.len(), 5);
        assert!(first[2].is_failed());
        let reason = first[2].failure.as_deref().unwrap();
        assert!(reason.contains("boom at trial 2"), "reason: {reason}");
        assert!(reason.contains("runner.rs"), "reason lacks location: {reason}");
        assert!(first.iter().enumerate().all(|(i, o)| i == 2 || !o.is_failed()));
        assert_eq!(pre1.campaign_failed(), Some(1));
        drop(pre1);

        // The failure is in the manifest and the telemetry stream.
        let manifest = std::fs::read_to_string(dir.join("unit/manifest.jsonl")).unwrap();
        assert!(manifest.contains("boom at trial 2"));
        let stream = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        assert!(stream.contains("TrialFailed"));

        // Resume without --retry-failed: nothing executes; the recorded
        // failure is served.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let second = run(&pre2, false);
        assert_eq!(executed.load(Ordering::Relaxed), 5);
        assert_eq!(pre2.campaign_totals(), Some((0, 5)));
        assert!(second[2].is_failed());
        drop(pre2);

        // --retry-failed re-executes exactly the failed trial; with the
        // panic gone it now succeeds, and a further resume serves it.
        let pre3 =
            Prebaked::with_campaign(Budget::smoke(), cfg.clone().retry_failed(true)).unwrap();
        let third = run(&pre3, false);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre3.campaign_totals(), Some((1, 4)));
        assert!(!third[2].is_failed());
        drop(pre3);

        let pre4 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let fourth = run(&pre4, false);
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(pre4.campaign_totals(), Some((0, 5)));
        assert_eq!(fourth, third);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn err_returning_trial_is_recorded_without_panicking() {
        let pre = Prebaked::new(Budget::smoke());
        let out = pre.run_trials(
            "unit",
            "cell",
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            3,
            |trial, _seed| {
                if trial == 1 {
                    Err(TrialError::new("restore failed: truncated file"))
                } else {
                    Ok(TrialOutcome::ok())
                }
            },
        );
        assert!(!out[0].is_failed() && !out[2].is_failed());
        assert!(out[1].is_failed());
        assert_eq!(out[1].failure.as_deref(), Some("restore failed: truncated file"));
    }

    #[test]
    fn invalid_cached_records_are_reexecuted() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = scratch_dir("valid");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        let executed = AtomicUsize::new(0);

        // First pass records outcomes without an accuracy — standing in
        // for records written by an older schema.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        pre1.run_trials("unit", "cell", fw, model, 2, |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            Ok(TrialOutcome::ok())
        });
        assert_eq!(executed.load(Ordering::Relaxed), 2);
        drop(pre1);

        // A validated resume rejects them and re-runs; a plain resume of
        // the repaired records then serves from cache.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let out = pre2.run_trials_validated(
            "unit",
            "cell",
            fw,
            model,
            2,
            |o| o.final_accuracy.is_some(),
            |_, _| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok().with_accuracy(0.5))
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 4);
        assert!(out.iter().all(|o| o.final_accuracy.is_some()));
        drop(pre2);

        let pre3 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        pre3.run_trials_validated(
            "unit",
            "cell",
            fw,
            model,
            2,
            |o| o.final_accuracy.is_some(),
            |_, _| {
                executed.fetch_add(1, Ordering::Relaxed);
                Ok(TrialOutcome::ok().with_accuracy(0.5))
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 4);
        assert_eq!(pre3.campaign_totals(), Some((0, 2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_campaign_reproduces_byte_identical_tables() {
        let dir = scratch_dir("tables");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);

        // A real experiment cell: Table IV protocol, two trainings.
        let pre1 = Prebaked::with_campaign(Budget::smoke(), cfg.clone()).unwrap();
        let cell1 = crate::exp_nev::nev_cell(
            &pre1,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre1.campaign_totals(), Some((2, 0)));
        drop(pre1);

        // Rerun against the same manifest: zero trials execute and the
        // cell is reproduced exactly.
        let pre2 = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        let cell2 = crate::exp_nev::nev_cell(
            &pre2,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            sefi_float::Precision::Fp64,
            1000,
            2,
        );
        assert_eq!(pre2.campaign_totals(), Some((0, 2)));
        assert_eq!(cell2.nev, cell1.nev);
        assert_eq!(cell2.pct, cell1.pct);
        assert_eq!(cell2.trainings, cell1.trainings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_guard_emits_paired_events() {
        let dir = scratch_dir("phase");
        let cfg = CampaignConfig::new("unit").results_dir(&dir);
        let pre = Prebaked::with_campaign(Budget::smoke(), cfg).unwrap();
        {
            let _phase = pre.phase("fig2");
        }
        pre.finish_campaign();
        let stream = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        let kinds: Vec<&str> = stream
            .lines()
            .map(|l| {
                if l.contains("PhaseStart") {
                    "PhaseStart"
                } else if l.contains("PhaseEnd") {
                    "PhaseEnd"
                } else if l.contains("CampaignStart") {
                    "CampaignStart"
                } else {
                    "CampaignEnd"
                }
            })
            .collect();
        assert_eq!(kinds, vec!["CampaignStart", "PhaseStart", "PhaseEnd", "CampaignEnd"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_accuracy_is_cached_and_framework_independent() {
        let pre = Prebaked::new(Budget::smoke());
        let a = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        let b = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        assert_eq!(a, b);
        // Resume through a different framework's checkpoint gives the same
        // trajectory (lossless layout round-trip).
        let ck_tf = pre.checkpoint(FrameworkKind::TensorFlow, ModelKind::AlexNet, Dtype::F64);
        let out = pre.resume(
            FrameworkKind::TensorFlow,
            ModelKind::AlexNet,
            &ck_tf,
            pre.budget().resume_epochs,
        );
        assert_eq!(out.final_accuracy().unwrap(), a);
    }
}
