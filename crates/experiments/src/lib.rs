//! Experiment harness: one module per table/figure of the paper's
//! evaluation (Section V), plus shared plumbing.
//!
//! Every experiment follows the paper's protocol:
//!
//! 1. train a model deterministically to the restart epoch and write a
//!    checkpoint (cached and reused, exactly as the paper notes: "after a
//!    checkpoint is saved, several versions of it can be created by using
//!    different corruption configurations, and any of them can be used to
//!    restart the application");
//! 2. corrupt a copy of that checkpoint with a configured injector;
//! 3. resume training (or run inference) from the corrupted copy;
//! 4. compare against the deterministic error-free baseline.
//!
//! Scale is controlled by a [`Budget`] (`smoke` / `default` / `paper`);
//! every binary accepts `--budget <name>` and prints the same rows/series
//! the paper reports. See EXPERIMENTS.md for recorded outputs.

#![deny(missing_docs)]

pub mod adaptive;
mod budget;
pub mod chart;
pub mod exp_bitranges;
pub mod exp_curves;
pub mod exp_equivalent;
pub mod exp_forensics;
pub mod exp_guard;
pub mod exp_heatmap;
pub mod exp_layers;
pub mod exp_masks;
pub mod exp_nev;
pub mod exp_precision;
pub mod exp_predict;
pub mod exp_propagation;
pub mod exp_rwc;
pub mod exp_serving;
pub mod exp_storage;
mod runner;
pub mod stats;
pub mod table;

pub use adaptive::{
    classify_collapsed, replay, wilson_interval, AdaptiveCell, AdaptiveCellResult, CellTrace,
    ShardWorkerConfig, StoppingRule, WaveStat,
};
pub use budget::Budget;
pub use runner::{
    combo_seed, combo_seed_parts, CampaignConfig, CellPlan, PhaseGuard, Prebaked, TrialError,
    TrialResult,
};
pub use sefi_telemetry::TrialOutcome;

/// Parse `--budget <name>` (or `SEFI_BUDGET`) from a binary's args;
/// defaults to [`Budget::default_budget`].
pub fn budget_from_args() -> Budget {
    let args: Vec<String> = std::env::args().collect();
    let mut name = std::env::var("SEFI_BUDGET").unwrap_or_default();
    for i in 0..args.len() {
        if args[i] == "--budget" && i + 1 < args.len() {
            name = args[i + 1].clone();
        }
    }
    match name.as_str() {
        "" => Budget::default_budget(),
        other => Budget::by_name(other).unwrap_or_else(|| {
            eprintln!("unknown budget {other:?}; valid: smoke, default, paper");
            std::process::exit(2);
        }),
    }
}

/// Campaign configuration for a binary named `name`, honoring the shared
/// command-line flags: `--results-dir <path>` redirects everything the
/// campaign writes (default `results/`), and `--retry-failed` re-executes
/// trials whose manifest record is a failure instead of serving it.
pub fn campaign_config_from_args(name: &str) -> CampaignConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = CampaignConfig::new(name);
    for i in 0..args.len() {
        if args[i] == "--results-dir" && i + 1 < args.len() {
            cfg = cfg.results_dir(&args[i + 1]);
        }
        if args[i] == "--retry-failed" {
            cfg = cfg.retry_failed(true);
        }
    }
    cfg
}
