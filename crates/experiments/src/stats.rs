//! Small statistics helpers for experiment outputs.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Five-number summary for boxplots (Figure 6): min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute the five-number summary (linear-interpolated quantiles).
///
/// NaNs — which NEV-corrupted resumes do feed in via weight diffs — are
/// dropped before the quantiles; the second element counts how many were
/// dropped so callers can report it. Returns `(None, dropped)` when no
/// finite-or-infinite values remain.
pub fn five_number_summary(xs: &[f64]) -> (Option<FiveNum>, usize) {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    let dropped = xs.len() - sorted.len();
    if sorted.is_empty() {
        return (None, dropped);
    }
    sorted.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        if frac == 0.0 {
            // Exact-index quantile: return the element instead of blending.
            // The blend is wrong on ±infinite data (NEV weight diffs feed
            // those in): with lo == hi == inf it computes
            // `inf * 1.0 + inf * 0.0 = inf + NaN = NaN`.
            return sorted[lo];
        }
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    let summary = FiveNum {
        min: sorted[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: sorted[sorted.len() - 1],
    };
    (Some(summary), dropped)
}

/// `count / total` as a percentage.
pub fn percent(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn five_number_on_known_data() {
        let (s, dropped) = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = s.unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(five_number_summary(&[]), (None, 0));
        let (single, _) = five_number_summary(&[7.0]);
        let single = single.unwrap();
        assert_eq!(single.median, 7.0);
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
    }

    #[test]
    fn five_number_drops_nans_instead_of_panicking() {
        let (s, dropped) = five_number_summary(&[f64::NAN, 2.0, 1.0, f64::NAN, 3.0]);
        let s = s.unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        // Infinities survive the sort (total_cmp orders them).
        let (inf, dropped) = five_number_summary(&[f64::INFINITY, 0.0]);
        assert_eq!(dropped, 0);
        assert_eq!(inf.unwrap().max, f64::INFINITY);
        // All-NaN input yields no summary but reports the drops.
        assert_eq!(five_number_summary(&[f64::NAN]), (None, 1));
    }

    #[test]
    fn exact_index_quantiles_on_infinite_data_are_not_nan() {
        // Regression: five values put every quartile at an integral index,
        // where the old blend computed `inf * 1.0 + inf * 0.0 = NaN`.
        // All-infinite input — exactly what an NEV-collapsed resume's
        // weight diffs look like — must summarize as infinities.
        let (s, dropped) = five_number_summary(&[f64::INFINITY; 5]);
        let s = s.unwrap();
        assert_eq!(dropped, 0);
        for v in [s.min, s.q1, s.median, s.q3, s.max] {
            assert_eq!(v, f64::INFINITY, "summary leaked a NaN: {s:?}");
        }

        // Same for the negative side.
        let (s, _) = five_number_summary(&[f64::NEG_INFINITY; 9]);
        let s = s.unwrap();
        assert_eq!(s.median, f64::NEG_INFINITY);
        assert_eq!(s.q3, f64::NEG_INFINITY);

        // Mixed ±inf with exact-index quartiles: each quantile lands on a
        // real element, ordered by total_cmp.
        let (s, _) = five_number_summary(&[
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            0.0,
            f64::INFINITY,
            f64::INFINITY,
        ]);
        let s = s.unwrap();
        assert_eq!(s.q1, f64::NEG_INFINITY);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.q3, f64::INFINITY);

        // Fractional-index quantiles between two infinities of the same
        // sign still blend to that infinity (inf*0.75 + inf*0.25 = inf).
        let (s, _) = five_number_summary(&[f64::INFINITY, f64::INFINITY]);
        assert_eq!(s.unwrap().median, f64::INFINITY);
    }

    #[test]
    fn percent_handles_zero_total() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(249, 250), 99.6);
    }
}
