//! Small statistics helpers for experiment outputs.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Five-number summary for boxplots (Figure 6): min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute the five-number summary (linear-interpolated quantiles).
///
/// NaNs — which NEV-corrupted resumes do feed in via weight diffs — are
/// dropped before the quantiles; the second element counts how many were
/// dropped so callers can report it. Returns `(None, dropped)` when no
/// finite-or-infinite values remain.
pub fn five_number_summary(xs: &[f64]) -> (Option<FiveNum>, usize) {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    let dropped = xs.len() - sorted.len();
    if sorted.is_empty() {
        return (None, dropped);
    }
    sorted.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    let summary = FiveNum {
        min: sorted[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: sorted[sorted.len() - 1],
    };
    (Some(summary), dropped)
}

/// `count / total` as a percentage.
pub fn percent(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn five_number_on_known_data() {
        let (s, dropped) = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = s.unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(five_number_summary(&[]), (None, 0));
        let (single, _) = five_number_summary(&[7.0]);
        let single = single.unwrap();
        assert_eq!(single.median, 7.0);
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
    }

    #[test]
    fn five_number_drops_nans_instead_of_panicking() {
        let (s, dropped) = five_number_summary(&[f64::NAN, 2.0, 1.0, f64::NAN, 3.0]);
        let s = s.unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        // Infinities survive the sort (total_cmp orders them).
        let (inf, dropped) = five_number_summary(&[f64::INFINITY, 0.0]);
        assert_eq!(dropped, 0);
        assert_eq!(inf.unwrap().max, f64::INFINITY);
        // All-NaN input yields no summary but reports the drops.
        assert_eq!(five_number_summary(&[f64::NAN]), (None, 1));
    }

    #[test]
    fn percent_handles_zero_total() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(249, 250), 99.6);
    }
}
