//! Small statistics helpers for experiment outputs.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Five-number summary for boxplots (Figure 6): min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute the five-number summary (linear-interpolated quantiles).
/// Returns `None` for an empty slice.
pub fn five_number_summary(xs: &[f64]) -> Option<FiveNum> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    Some(FiveNum {
        min: sorted[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: sorted[sorted.len() - 1],
    })
}

/// `count / total` as a percentage.
pub fn percent(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn five_number_on_known_data() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert!(five_number_summary(&[]).is_none());
        let single = five_number_summary(&[7.0]).unwrap();
        assert_eq!(single.median, 7.0);
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
    }

    #[test]
    fn percent_handles_zero_total() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(249, 250), 99.6);
    }
}
