//! Experiment scale presets.

use sefi_data::DataConfig;
use sefi_models::ModelConfig;

/// How big to run each experiment. `paper` mirrors the publication's
/// counts (250 trainings per cell, restart at epoch 20, 100-epoch runs,
/// full-width models on full-size CIFAR-10 shapes) and is compute-bound on
/// CPU; `default` preserves every qualitative shape at laptop scale;
/// `smoke` exists for CI and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Preset name.
    pub name: &'static str,
    /// Trainings per table cell (paper: 250).
    pub trials: usize,
    /// Trainings averaged per accuracy curve (paper: 10).
    pub curve_trials: usize,
    /// Epoch whose checkpoint is corrupted (paper: 20).
    pub restart_epoch: usize,
    /// Epochs resumed after corruption for table-style cells (the paper
    /// trains to epoch 100; collapse and RWC are decided far earlier).
    pub resume_epochs: usize,
    /// Final epoch for accuracy curves (paper: 100).
    pub curve_end_epoch: usize,
    /// Prediction repetitions for Table VIII (paper: 10).
    pub predict_trials: usize,
    /// Images per prediction run (paper: 1 000).
    pub predict_images: usize,
    /// Trainings per bit range in the Figure 2 sweep (paper: 170).
    pub fig2_trainings: usize,
    /// Model width multiplier (paper: 1.0).
    pub model_scale: f64,
    /// Image edge length (paper: 32).
    pub image_size: usize,
    /// Training images (CIFAR-10: 50 000).
    pub train_images: usize,
    /// Test images (CIFAR-10: 10 000).
    pub test_images: usize,
    /// Pixel-noise standard deviation of the synthetic task (higher =
    /// harder; tuned per budget so accuracies land mid-range like the
    /// paper's CIFAR-10 results rather than saturating).
    pub noise: f64,
}

impl Budget {
    /// CI-scale.
    pub fn smoke() -> Self {
        Budget {
            name: "smoke",
            trials: 6,
            curve_trials: 2,
            restart_epoch: 2,
            resume_epochs: 1,
            curve_end_epoch: 4,
            predict_trials: 2,
            predict_images: 60,
            fig2_trainings: 4,
            model_scale: 0.03,
            image_size: 16,
            train_images: 120,
            test_images: 60,
            noise: 0.25,
        }
    }

    /// Laptop-scale; the numbers recorded in EXPERIMENTS.md use this.
    pub fn default_budget() -> Self {
        Budget {
            name: "default",
            trials: 25,
            curve_trials: 4,
            restart_epoch: 5,
            resume_epochs: 1,
            curve_end_epoch: 12,
            predict_trials: 5,
            predict_images: 200,
            fig2_trainings: 15,
            model_scale: 0.06,
            image_size: 16,
            train_images: 400,
            test_images: 200,
            noise: 0.45,
        }
    }

    /// Publication-scale (compute-bound on CPU; provided for completeness).
    pub fn paper() -> Self {
        Budget {
            name: "paper",
            trials: 250,
            curve_trials: 10,
            restart_epoch: 20,
            resume_epochs: 80,
            curve_end_epoch: 100,
            predict_trials: 10,
            predict_images: 1000,
            fig2_trainings: 170,
            model_scale: 1.0,
            image_size: 32,
            train_images: 50_000,
            test_images: 10_000,
            noise: 0.45,
        }
    }

    /// Look up a preset by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "default" => Some(Self::default_budget()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }

    /// The dataset this budget generates.
    pub fn data_config(&self) -> DataConfig {
        DataConfig {
            train: self.train_images,
            test: self.test_images,
            image_size: self.image_size,
            seed: 0xC1_FA10,
            noise: self.noise,
        }
    }

    /// The model sizing this budget uses.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig { scale: self.model_scale, input_size: self.image_size, num_classes: 10 }
    }

    /// The bit-flip counts of the paper's tables.
    pub fn bitflip_counts(&self) -> [u64; 4] {
        [1, 10, 100, 1000]
    }

    /// Stable fingerprint for the pretraining cache. The float fields are
    /// encoded via `f64::to_bits`, not decimal truncation: the old
    /// `(noise * 100.0) as u64` grain collided budgets like noise 0.450
    /// vs 0.4549, silently serving one's pretrained weights to the other.
    pub fn cache_key(&self) -> String {
        format!(
            "s{:016x}_i{}_tr{}_te{}_re{}_n{:016x}",
            self.model_scale.to_bits(),
            self.image_size,
            self.train_images,
            self.test_images,
            self.restart_epoch,
            self.noise.to_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Budget::by_name("smoke").unwrap().name, "smoke");
        assert_eq!(Budget::by_name("default").unwrap().name, "default");
        assert_eq!(Budget::by_name("paper").unwrap().trials, 250);
        assert!(Budget::by_name("bogus").is_none());
    }

    #[test]
    fn paper_matches_publication_counts() {
        let p = Budget::paper();
        assert_eq!(p.trials, 250);
        assert_eq!(p.restart_epoch, 20);
        assert_eq!(p.curve_end_epoch, 100);
        assert_eq!(p.predict_images, 1000);
        assert_eq!(p.fig2_trainings, 170);
        assert_eq!(p.model_scale, 1.0);
    }

    #[test]
    fn cache_keys_distinguish_budgets() {
        assert_ne!(Budget::smoke().cache_key(), Budget::default_budget().cache_key());
    }

    #[test]
    fn cache_keys_distinguish_sub_grain_float_differences() {
        // Regression: decimal truncation collapsed noise 0.450 and 0.4549
        // (both `(x * 100.0) as u64 == 45`) onto one key, so the second
        // budget silently reused the first's pretraining cache.
        let mut a = Budget::default_budget();
        let mut b = Budget::default_budget();
        a.noise = 0.450;
        b.noise = 0.4549;
        assert_ne!(a.cache_key(), b.cache_key());

        // Same class of collision on model_scale below the 1/1000 grain.
        let mut c = Budget::default_budget();
        let mut d = Budget::default_budget();
        c.model_scale = 0.0601;
        d.model_scale = 0.06049;
        assert_ne!(c.cache_key(), d.cache_key());

        // Identical budgets still share a key (the cache must still hit).
        assert_eq!(Budget::smoke().cache_key(), Budget::smoke().cache_key());
    }
}
