//! Storage-level soft errors vs the sectioned (v2) checkpoint format.
//!
//! The paper's injector corrupts *decoded values*, so every fault lands in
//! a tensor. A storage or DMA soft error has no such courtesy: it flips a
//! bit anywhere in the file — superblock, index, a checksum field, or raw
//! payload. This experiment sweeps single random file-byte flips over a v2
//! checkpoint, one structural region per cell, and classifies what each of
//! two loaders observes:
//!
//! * **verified** — [`H5File::from_bytes_with_policy`] under
//!   [`LoadPolicy::Quarantine`]: the superblock, index CRC, and per-section
//!   CRCs are all checked; a quarantined dataset counts as detection.
//! * **trusting** — [`H5File::from_bytes_unverified`]: structure is parsed
//!   but no checksum is compared, modeling a checksum-free format (or a
//!   loader that skips verification for speed).
//!
//! Outcomes follow the standard soft-error taxonomy: **masked** (the loaded
//! file equals the pristine one), **detected** (the loader errors or
//! quarantines — a DUE), **silent** (the load succeeds but the file
//! differs — an SDC).

use crate::runner::{CellPlan, Prebaked};
use crate::table::{pct, TextTable};
use sefi_core::{FileRegion, RawConfig, RawCorrupter};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::{Dtype, H5File, LoadPolicy};
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// What a loader observed after a flip, in the Beyer et al. taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Load succeeded and the result equals the pristine checkpoint.
    Masked,
    /// The loader errored or quarantined a dataset (a DUE).
    Detected,
    /// Load succeeded but the result differs from pristine (an SDC).
    Silent,
}

impl Outcome {
    /// Stable numeric code recorded as a trial metric (resume-safe).
    pub fn code(self) -> f64 {
        match self {
            Outcome::Masked => 0.0,
            Outcome::Detected => 1.0,
            Outcome::Silent => 2.0,
        }
    }

    /// Inverse of [`Outcome::code`], for replaying manifest records.
    pub fn from_code(code: f64) -> Option<Self> {
        match code as i64 {
            0 => Some(Outcome::Masked),
            1 => Some(Outcome::Detected),
            2 => Some(Outcome::Silent),
            _ => None,
        }
    }
}

/// Per-loader outcome counts: `[masked, detected, silent]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts(pub [usize; 3]);

impl Counts {
    fn bump(&mut self, o: Outcome) {
        self.0[o.code() as usize] += 1;
    }

    /// Count for one outcome class.
    pub fn get(&self, o: Outcome) -> usize {
        self.0[o.code() as usize]
    }
}

/// One region's row of the sweep.
#[derive(Debug, Clone)]
pub struct RegionRow {
    /// Structural region the flips were confined to.
    pub region: FileRegion,
    /// Flips classified (excludes failed trials).
    pub trials: usize,
    /// What the verified (CRC-checking, quarantining) loader saw.
    pub verified: Counts,
    /// What the trusting (no-checksum) loader saw.
    pub trusting: Counts,
    /// Trials that failed to complete (recorded, not classified).
    pub failed: usize,
}

/// Classify one loader's view of corrupted bytes against the pristine
/// decode. `Err` and quarantine are detections; equality is masking.
fn classify(pristine: &H5File, bytes: &[u8], policy: Option<LoadPolicy>) -> Outcome {
    let loaded = match policy {
        Some(p) => match H5File::from_bytes_with_policy(bytes, p) {
            Err(_) => return Outcome::Detected,
            Ok((_, report)) if !report.is_clean() => return Outcome::Detected,
            Ok((file, _)) => file,
        },
        None => match H5File::from_bytes_unverified(bytes) {
            Err(_) => return Outcome::Detected,
            Ok(file) => file,
        },
    };
    if &loaded == pristine {
        Outcome::Masked
    } else {
        Outcome::Silent
    }
}

/// Flips per region cell: the trials are pure decodes (no training), so we
/// run more of them than a table cell's trainings — enough that every
/// reachable outcome class appears even at smoke scale.
pub fn flips_per_region(pre: &Prebaked) -> usize {
    (pre.budget().trials * 8).max(48)
}

/// The three swept regions, in table order.
fn regions() -> [FileRegion; 3] {
    [FileRegion::Superblock, FileRegion::Index, FileRegion::Payload]
}

/// Run the sweep (Chainer/AlexNet checkpoint, one single-bit flip per
/// trial, each region swept independently). The three region cells share
/// one scheduler pool and one encoded pristine byte image.
pub fn storage_table(pre: &Prebaked) -> (Vec<RegionRow>, TextTable) {
    use std::sync::Arc;
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    let trials = flips_per_region(pre);
    let bytes = Arc::new(pre.checkpoint(fw, model, Dtype::F32).to_bytes_v2());
    // Compare against the decode of the pristine bytes (not the in-memory
    // original) so the classification measures the flip, not the encoder.
    let pristine = Arc::new(H5File::from_bytes(&bytes).expect("pristine v2 bytes decode"));

    let plans: Vec<CellPlan<'_>> = regions()
        .into_iter()
        .map(|region| {
            let bytes = Arc::clone(&bytes);
            let pristine = Arc::clone(&pristine);
            let cell = format!("storage-{}", region.label());
            CellPlan::new("storage", cell, fw, model, trials, move |_, seed| {
                let mut corrupted = (*bytes).clone();
                let report = RawCorrupter::new(RawConfig::single_flip(Some(region), seed))?
                    .corrupt_bytes(&mut corrupted)?;
                let flip = &report.flips[0];
                let verified = classify(&pristine, &corrupted, Some(LoadPolicy::Quarantine));
                let trusting = classify(&pristine, &corrupted, None);
                Ok(TrialOutcome::ok()
                    .with_metric("verified", verified.code())
                    .with_metric("trusting", trusting.code())
                    .with_metric("offset", flip.offset as f64))
            })
        })
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "Region",
        "Flips",
        "Masked(v)",
        "Detected(v)",
        "Silent(v)",
        "Masked(t)",
        "Detected(t)",
        "Silent(t)",
        "Failed",
    ]);
    for (region, outcomes) in regions().into_iter().zip(&pooled) {
        let mut row = RegionRow {
            region,
            trials: 0,
            verified: Counts::default(),
            trusting: Counts::default(),
            failed: 0,
        };
        for o in outcomes {
            let classes = o
                .metric("verified")
                .and_then(Outcome::from_code)
                .zip(o.metric("trusting").and_then(Outcome::from_code));
            match classes {
                Some((v, t)) if !o.is_failed() => {
                    row.trials += 1;
                    row.verified.bump(v);
                    row.trusting.bump(t);
                }
                _ => row.failed += 1,
            }
        }
        table.row(vec![
            region.label().to_string(),
            row.trials.to_string(),
            row.verified.get(Outcome::Masked).to_string(),
            row.verified.get(Outcome::Detected).to_string(),
            row.verified.get(Outcome::Silent).to_string(),
            row.trusting.get(Outcome::Masked).to_string(),
            row.trusting.get(Outcome::Detected).to_string(),
            row.trusting.get(Outcome::Silent).to_string(),
            row.failed.to_string(),
        ]);
        rows.push(row);
    }
    (rows, table)
}

/// The format's coverage claim: the verified loader converts *every*
/// single-bit flip into a detection — no masked luck, no silent corruption.
pub fn verified_loader_detects_everything(rows: &[RegionRow]) -> bool {
    rows.iter().all(|r| r.verified.get(Outcome::Detected) == r.trials)
}

/// True when every outcome class appears somewhere in the table — masked
/// (trusting loader over the unused-checksum superblock bytes), detected,
/// and silent (trusting loader over the payload). The CI smoke run asserts
/// this.
pub fn all_classes_observed(rows: &[RegionRow]) -> bool {
    [Outcome::Masked, Outcome::Detected, Outcome::Silent]
        .iter()
        .all(|&o| rows.iter().any(|r| r.verified.get(o) + r.trusting.get(o) > 0))
}

/// Fraction (percent) of trusting-loader outcomes that were silent — the
/// SDC rate a checksum-free format would suffer, per region.
pub fn trusting_silent_rate(row: &RegionRow) -> f64 {
    if row.trials == 0 {
        return 0.0;
    }
    100.0 * row.trusting.get(Outcome::Silent) as f64 / row.trials as f64
}

/// Render the per-region SDC-rate summary line printed by the binary.
pub fn sdc_summary(rows: &[RegionRow]) -> String {
    rows.iter()
        .map(|r| format!("{} {}%", r.region.label(), pct(trusting_silent_rate(r))))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn outcome_codes_roundtrip() {
        for o in [Outcome::Masked, Outcome::Detected, Outcome::Silent] {
            assert_eq!(Outcome::from_code(o.code()), Some(o));
        }
        assert_eq!(Outcome::from_code(7.0), None);
    }

    #[test]
    fn sweep_smoke() {
        let pre = Prebaked::new(Budget::smoke());
        let (rows, _) = storage_table(&pre);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.failed, 0, "{}", row.region.label());
            assert_eq!(row.trials, flips_per_region(&pre));
        }
        // The verified loader's CRCs cover every byte it trusts: no flip
        // is ever masked or silent.
        assert!(verified_loader_detects_everything(&rows));
        // The trusting loader: every payload flip changes a stored value
        // silently (SDC), while superblock flips that land in the checksum
        // fields it ignores are masked.
        let payload = rows.iter().find(|r| r.region == FileRegion::Payload).unwrap();
        assert_eq!(payload.trusting.get(Outcome::Silent), payload.trials);
        let superblock = rows.iter().find(|r| r.region == FileRegion::Superblock).unwrap();
        assert!(superblock.trusting.get(Outcome::Masked) > 0);
        assert!(superblock.trusting.get(Outcome::Detected) > 0);
        assert!(all_classes_observed(&rows));
    }
}
