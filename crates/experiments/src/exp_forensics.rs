//! Forensics sweep: ECC-protected vs plain containers under single-bit
//! file flips, with a four-class outcome taxonomy.
//!
//! [`crate::exp_storage`] showed that the sectioned format turns every
//! flip into *detection* — the checkpoint survives, the training run does
//! not, because a quarantined tensor falls back to its initializer. The
//! ECC parity sidecar ([`sefi_hdf5::EccSidecar`]) closes that gap: under
//! [`LoadPolicy::Correct`] a single-bit payload flip is repaired in place
//! and the load proceeds bit-exact. This experiment quantifies the upgrade
//! with four cells, one row each:
//!
//! * **plain / trusting** — no sidecar, checksum-free loader, payload
//!   flips. The PR-4 baseline: every flip is silent corruption.
//! * **plain / verified** — no sidecar, [`LoadPolicy::Quarantine`],
//!   payload flips. Every flip is detected but unrecoverable.
//! * **ecc / payload** — sidecar present, [`LoadPolicy::Correct`],
//!   payload flips. Every flip is *corrected*: the loaded file equals the
//!   pristine one and the report names the repaired dataset.
//! * **ecc / parity** — sidecar present, the flip lands in the sidecar
//!   *itself*. Parity-byte damage is masked (SEC-DED absorbs it);
//!   structural header damage is detected by sidecar validation.
//!
//! Outcomes extend the storage taxonomy with a **corrected** class: the
//! load reported (and repaired) damage, and the result is bit-exact.

use crate::runner::{CellPlan, Prebaked};
use crate::table::{pct, TextTable};
use sefi_core::{FileRegion, RawConfig, RawCorrupter};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::{Dtype, EccSidecar, H5File, LoadPolicy};
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// What a loader observed after a flip, extended with the repair class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Load succeeded untouched and the result equals the pristine file.
    Masked,
    /// The loader errored or quarantined a dataset (a DUE).
    Detected,
    /// ECC repaired the damage and the result equals the pristine file.
    Corrected,
    /// Load succeeded but the result differs from pristine (an SDC).
    Silent,
}

impl Outcome {
    /// Stable numeric code recorded as a trial metric (resume-safe).
    pub fn code(self) -> f64 {
        match self {
            Outcome::Masked => 0.0,
            Outcome::Detected => 1.0,
            Outcome::Corrected => 2.0,
            Outcome::Silent => 3.0,
        }
    }

    /// Inverse of [`Outcome::code`], for replaying manifest records.
    pub fn from_code(code: f64) -> Option<Self> {
        match code as i64 {
            0 => Some(Outcome::Masked),
            1 => Some(Outcome::Detected),
            2 => Some(Outcome::Corrected),
            3 => Some(Outcome::Silent),
            _ => None,
        }
    }

    /// All four classes, in code order.
    pub fn all() -> [Outcome; 4] {
        [Outcome::Masked, Outcome::Detected, Outcome::Corrected, Outcome::Silent]
    }
}

/// Outcome counts: `[masked, detected, corrected, silent]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts(pub [usize; 4]);

impl Counts {
    fn bump(&mut self, o: Outcome) {
        self.0[o.code() as usize] += 1;
    }

    /// Count for one outcome class.
    pub fn get(&self, o: Outcome) -> usize {
        self.0[o.code() as usize]
    }
}

/// One cell of the sweep: a container/loader/target combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Plain container, checksum-free loader, payload flips.
    PlainTrusting,
    /// Plain container, quarantining loader, payload flips.
    PlainVerified,
    /// ECC sidecar attached, correcting loader, payload flips.
    EccPayload,
    /// ECC sidecar attached, correcting loader, flips in the sidecar.
    EccParity,
}

impl Scenario {
    /// Stable table/cell label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::PlainTrusting => "plain-trusting",
            Scenario::PlainVerified => "plain-verified",
            Scenario::EccPayload => "ecc-payload",
            Scenario::EccParity => "ecc-parity",
        }
    }

    /// Region the single flip is confined to.
    fn region(self) -> FileRegion {
        match self {
            Scenario::EccParity => FileRegion::Parity,
            _ => FileRegion::Payload,
        }
    }

    /// The four swept cells, in table order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::PlainTrusting,
            Scenario::PlainVerified,
            Scenario::EccPayload,
            Scenario::EccParity,
        ]
    }
}

/// One scenario's row of the sweep.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The container/loader/target combination.
    pub scenario: Scenario,
    /// Flips classified (excludes failed trials).
    pub trials: usize,
    /// Outcome tallies.
    pub counts: Counts,
    /// Trials that failed to complete (recorded, not classified).
    pub failed: usize,
}

/// Classify a plain (sidecar-less) load of corrupted bytes against the
/// pristine decode. `None` policy models the trusting loader.
fn classify_plain(pristine: &H5File, bytes: &[u8], policy: Option<LoadPolicy>) -> Outcome {
    let loaded = match policy {
        Some(p) => match H5File::from_bytes_with_policy(bytes, p) {
            Err(_) => return Outcome::Detected,
            Ok((_, report)) if !report.is_clean() => return Outcome::Detected,
            Ok((file, _)) => file,
        },
        None => match H5File::from_bytes_unverified(bytes) {
            Err(_) => return Outcome::Detected,
            Ok(file) => file,
        },
    };
    if &loaded == pristine {
        Outcome::Masked
    } else {
        Outcome::Silent
    }
}

/// Classify an ECC-corrected load: both the checkpoint bytes *and* the
/// serialized sidecar may be damaged. A repair that restores the pristine
/// file is [`Outcome::Corrected`]; quarantine or a sidecar that no longer
/// validates/binds is [`Outcome::Detected`].
fn classify_ecc(pristine: &H5File, bytes: &[u8], sidecar_bytes: &[u8]) -> Outcome {
    let sidecar = match EccSidecar::from_bytes(sidecar_bytes) {
        Ok(sc) => sc,
        Err(_) => return Outcome::Detected,
    };
    let (loaded, report) = match H5File::from_bytes_with_ecc(bytes, LoadPolicy::Correct, &sidecar) {
        Err(_) => return Outcome::Detected,
        Ok(ok) => ok,
    };
    if !report.quarantined.is_empty() {
        return Outcome::Detected;
    }
    match (&loaded == pristine, report.corrected.is_empty()) {
        (true, false) => Outcome::Corrected,
        (true, true) => Outcome::Masked,
        (false, _) => Outcome::Silent,
    }
}

/// Flips per cell — the same decode-only scaling rule as
/// [`crate::exp_storage::flips_per_region`].
pub fn flips_per_cell(pre: &Prebaked) -> usize {
    (pre.budget().trials * 8).max(48)
}

/// Run the sweep (Chainer/AlexNet checkpoint, one single-bit flip per
/// trial). All four cells share one scheduler pool, one encoded pristine
/// byte image, and one minted sidecar.
pub fn forensics_table(pre: &Prebaked) -> (Vec<ScenarioRow>, TextTable) {
    use std::sync::Arc;
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    let trials = flips_per_cell(pre);
    let bytes = Arc::new(pre.checkpoint(fw, model, Dtype::F32).to_bytes_v2());
    let sidecar_bytes =
        Arc::new(EccSidecar::protect(&bytes).expect("pristine bytes protect").to_bytes());
    // Compare against the decode of the pristine bytes (not the in-memory
    // original) so the classification measures the flip, not the encoder.
    let pristine = Arc::new(H5File::from_bytes(&bytes).expect("pristine v2 bytes decode"));

    let plans: Vec<CellPlan<'_>> = Scenario::all()
        .into_iter()
        .map(|scenario| {
            let bytes = Arc::clone(&bytes);
            let sidecar_bytes = Arc::clone(&sidecar_bytes);
            let pristine = Arc::clone(&pristine);
            let cell = format!("forensics-{}", scenario.label());
            CellPlan::new("forensics", cell, fw, model, trials, move |_, seed| {
                let corrupter =
                    RawCorrupter::new(RawConfig::single_flip(Some(scenario.region()), seed))?;
                let mut corrupted = (*bytes).clone();
                let (outcome, offset) = match scenario {
                    Scenario::PlainTrusting | Scenario::PlainVerified => {
                        let report = corrupter.corrupt_bytes(&mut corrupted)?;
                        let policy = match scenario {
                            Scenario::PlainTrusting => None,
                            _ => Some(LoadPolicy::Quarantine),
                        };
                        (classify_plain(&pristine, &corrupted, policy), report.flips[0].offset)
                    }
                    Scenario::EccPayload | Scenario::EccParity => {
                        let mut sc = (*sidecar_bytes).clone();
                        let report = corrupter.corrupt_with_sidecar(&mut corrupted, &mut sc)?;
                        (classify_ecc(&pristine, &corrupted, &sc), report.flips[0].offset)
                    }
                };
                Ok(TrialOutcome::ok()
                    .with_metric("outcome", outcome.code())
                    .with_metric("offset", offset as f64))
            })
        })
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut rows = Vec::new();
    let mut table =
        TextTable::new(&["Cell", "Flips", "Masked", "Detected", "Corrected", "Silent", "Failed"]);
    for (scenario, outcomes) in Scenario::all().into_iter().zip(&pooled) {
        let mut row = ScenarioRow { scenario, trials: 0, counts: Counts::default(), failed: 0 };
        for o in outcomes {
            match o.metric("outcome").and_then(Outcome::from_code) {
                Some(class) if !o.is_failed() => {
                    row.trials += 1;
                    row.counts.bump(class);
                }
                _ => row.failed += 1,
            }
        }
        table.row(vec![
            scenario.label().to_string(),
            row.trials.to_string(),
            row.counts.get(Outcome::Masked).to_string(),
            row.counts.get(Outcome::Detected).to_string(),
            row.counts.get(Outcome::Corrected).to_string(),
            row.counts.get(Outcome::Silent).to_string(),
            row.failed.to_string(),
        ]);
        rows.push(row);
    }
    (rows, table)
}

/// The sidecar's coverage claim: *every* single-bit payload flip under the
/// correcting loader comes back corrected — bit-exact, nothing quarantined.
pub fn ecc_corrects_every_payload_flip(rows: &[ScenarioRow]) -> bool {
    rows.iter()
        .filter(|r| r.scenario == Scenario::EccPayload)
        .all(|r| r.counts.get(Outcome::Corrected) == r.trials)
}

/// The baseline the sidecar is measured against: the trusting loader turns
/// every payload flip into silent corruption.
pub fn plain_trusting_all_silent(rows: &[ScenarioRow]) -> bool {
    rows.iter()
        .filter(|r| r.scenario == Scenario::PlainTrusting)
        .all(|r| r.counts.get(Outcome::Silent) == r.trials)
}

/// True when every outcome class appears somewhere in the table: masked
/// (parity-byte flips the SEC-DED code absorbs), detected (quarantine),
/// corrected (ECC repair), silent (trusting loader). The CI smoke run
/// asserts this.
pub fn all_classes_observed(rows: &[ScenarioRow]) -> bool {
    Outcome::all().iter().all(|&o| rows.iter().any(|r| r.counts.get(o) > 0))
}

/// Render the per-cell corrected-rate summary line printed by the binary.
pub fn corrected_summary(rows: &[ScenarioRow]) -> String {
    rows.iter()
        .map(|r| {
            let rate = if r.trials == 0 {
                0.0
            } else {
                100.0 * r.counts.get(Outcome::Corrected) as f64 / r.trials as f64
            };
            format!("{} {}%", r.scenario.label(), pct(rate))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn outcome_codes_roundtrip() {
        for o in Outcome::all() {
            assert_eq!(Outcome::from_code(o.code()), Some(o));
        }
        assert_eq!(Outcome::from_code(9.0), None);
    }

    #[test]
    fn sweep_smoke() {
        let pre = Prebaked::new(Budget::smoke());
        let (rows, _) = forensics_table(&pre);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.failed, 0, "{}", row.scenario.label());
            assert_eq!(row.trials, flips_per_cell(&pre));
        }
        // Baseline rows reproduce the storage-sweep results exactly.
        assert!(plain_trusting_all_silent(&rows));
        let verified = rows.iter().find(|r| r.scenario == Scenario::PlainVerified).unwrap();
        assert_eq!(verified.counts.get(Outcome::Detected), verified.trials);
        // The headline: the correcting loader repairs 100% of single-bit
        // payload flips back to the pristine bytes.
        assert!(ecc_corrects_every_payload_flip(&rows));
        // Flips in the sidecar itself never corrupt a load: parity bytes
        // are absorbed (masked) and structural damage is detected.
        let parity = rows.iter().find(|r| r.scenario == Scenario::EccParity).unwrap();
        assert_eq!(parity.counts.get(Outcome::Silent), 0);
        assert_eq!(parity.counts.get(Outcome::Corrected), 0);
        assert!(parity.counts.get(Outcome::Masked) > 0);
        assert!(all_classes_observed(&rows));
    }
}
