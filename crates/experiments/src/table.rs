//! Plain-text table rendering (the experiment binaries print the same rows
//! the paper's tables report) and CSV output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a data row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting needed for our numeric content).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a percentage like the paper's tables (one decimal, no sign).
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format an accuracy in `[0,1]` as a percentage with two decimals.
pub fn acc(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Bit-flips", "N-EV", "%"]);
        t.row(vec!["1".into(), "1".into(), "0.4".into()]);
        t.row(vec!["1000".into(), "249".into(), "99.6".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Bit-flips"));
        assert!(lines[3].contains("99.6"));
        // Columns right-aligned: all rows same display width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(99.6), "99.6");
        assert_eq!(acc(0.576), "57.60");
    }
}
