//! Figure 6 — propagation of errors through a neural network
//! (TensorFlow/AlexNet).
//!
//! Protocol (Section V-F): corrupt the epoch-20 checkpoint with 1 000
//! bit-flips in layer 1 / 4 / 8, train 10 more epochs, and compare the
//! resulting weights against the error-free run at the same epoch. The
//! boxplots summarize the non-zero absolute weight differences: first-layer
//! injections alter weights the most; middle- and last-layer injections
//! are largely absorbed.

use crate::exp_layers::{locations_for, role_label, LAYER_FLIPS};
use crate::runner::{CellPlan, Prebaked};
use crate::stats::{five_number_summary, FiveNum};
use crate::table::TextTable;
use sefi_core::{Corrupter, CorrupterConfig, LocationSelection};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::{LayerRole, ModelKind};
use sefi_telemetry::TrialOutcome;

/// Propagation measurement for one injected layer.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Which layer was injected.
    pub role: LayerRole,
    /// Number of weights that differ from the error-free run.
    pub differing_weights: usize,
    /// Total weights compared.
    pub total_weights: usize,
    /// Five-number summary of the non-zero absolute differences.
    pub summary: Option<FiveNum>,
    /// NaN differences dropped from the summary (NEV-corrupted resumes).
    pub nan_dropped: usize,
    /// Whether the trial failed to complete (summary absent).
    pub failed: bool,
}

/// Weights of the error-free continuation at `restart + resume_epochs`.
fn error_free_weights(pre: &Prebaked) -> Vec<f32> {
    let budget = *pre.budget();
    let ck = pre.checkpoint(FrameworkKind::TensorFlow, ModelKind::AlexNet, Dtype::F64);
    let mut session = pre.session_at_restart(FrameworkKind::TensorFlow, ModelKind::AlexNet);
    session.restore(&ck).expect("pristine checkpoint restores");
    let out = session.train_to(pre.data(), budget.restart_epoch + budget.resume_epochs);
    assert!(!out.collapsed());
    flat_weights(session.network_mut())
}

fn flat_weights(net: &mut sefi_nn::Network) -> Vec<f32> {
    let mut out = Vec::new();
    for e in net.state_dict().entries() {
        if e.trainable {
            out.extend_from_slice(e.tensor.data());
        }
    }
    out
}

/// Declare one propagation cell (a single deterministic trial; routing it
/// through the scheduler still gets it manifest-cached like every other
/// trial).
pub fn propagation_plan<'p>(
    pre: &'p Prebaked,
    role: LayerRole,
    reference: &'p [f32],
) -> CellPlan<'p> {
    let budget = *pre.budget();
    let fw = FrameworkKind::TensorFlow;
    let model = ModelKind::AlexNet;
    let cell = format!("prop-{}", role_label(role));
    CellPlan::new("fig6", cell, fw, model, 1, move |_, seed| {
        let mut ck = pre.checkpoint(fw, model, Dtype::F64);
        let mut cfg = CorrupterConfig::bit_flips(LAYER_FLIPS, Precision::Fp64, seed);
        cfg.locations = LocationSelection::Listed(locations_for(pre, fw, model, role));
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;

        let mut session = pre.session_at_restart(fw, model);
        session.restore(&ck).map_err(|e| format!("restore failed: {e}"))?;
        let out = session.train_to(pre.data(), budget.restart_epoch + budget.resume_epochs);
        if out.collapsed() {
            return Err("exponent-MSB-excluded flips collapsed training".into());
        }
        let corrupted = flat_weights(session.network_mut());

        if reference.len() != corrupted.len() {
            return Err(format!(
                "weight count mismatch: reference {} vs corrupted {}",
                reference.len(),
                corrupted.len()
            )
            .into());
        }
        // "The propagation was calculated based on the difference between the
        // value of the error-free weights and the same weights of the
        // checkpoint injected with the bit-flips. Only weights with differences
        // are used."
        let diffs: Vec<f64> = reference
            .iter()
            .zip(&corrupted)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .filter(|&d| d > 0.0)
            .collect();
        let mut outcome = TrialOutcome::ok()
            .with_metric("differing_weights", diffs.len() as f64)
            .with_metric("total_weights", reference.len() as f64)
            .with_counters(report.injections, report.nan_redraws, report.skipped);
        let (summary, nan_dropped) = five_number_summary(&diffs);
        outcome = outcome.with_metric("nan_dropped", nan_dropped as f64);
        if let Some(s) = summary {
            outcome = outcome
                .with_metric("min", s.min)
                .with_metric("q1", s.q1)
                .with_metric("median", s.median)
                .with_metric("q3", s.q3)
                .with_metric("max", s.max);
        }
        Ok(outcome)
    })
}

/// Fold one propagation cell's outcome into the boxplot row.
fn propagation_assemble(role: LayerRole, outcomes: &[TrialOutcome]) -> Propagation {
    let o = &outcomes[0];
    Propagation {
        role,
        differing_weights: o.metric("differing_weights").unwrap_or(0.0) as usize,
        total_weights: o.metric("total_weights").unwrap_or(0.0) as usize,
        summary: o.metric("median").map(|median| FiveNum {
            min: o.metric("min").unwrap_or(median),
            q1: o.metric("q1").unwrap_or(median),
            median,
            q3: o.metric("q3").unwrap_or(median),
            max: o.metric("max").unwrap_or(median),
        }),
        nan_dropped: o.metric("nan_dropped").unwrap_or(0.0) as usize,
        failed: o.is_failed(),
    }
}

/// Measure propagation for one injected layer role.
pub fn propagation_for(pre: &Prebaked, role: LayerRole, reference: &[f32]) -> Propagation {
    let plan = propagation_plan(pre, role, reference);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    propagation_assemble(role, &outcomes)
}

/// Figure 6: all three roles through one scheduler pool. The error-free
/// reference weights are computed once, before the plans dispatch.
pub fn figure6(pre: &Prebaked) -> (Vec<Propagation>, TextTable) {
    let reference = error_free_weights(pre);
    let plans: Vec<CellPlan<'_>> = crate::exp_layers::roles()
        .into_iter()
        .map(|role| propagation_plan(pre, role, &reference))
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "Injected layer",
        "Diff weights",
        "Total",
        "Min",
        "Q1",
        "Median",
        "Q3",
        "Max",
        "NaN dropped",
        "Failed",
    ]);
    for (role, outcomes) in crate::exp_layers::roles().into_iter().zip(&pooled) {
        let p = propagation_assemble(role, outcomes);
        let s = p.summary.unwrap_or(FiveNum { min: 0.0, q1: 0.0, median: 0.0, q3: 0.0, max: 0.0 });
        table.row(vec![
            role_label(p.role).to_string(),
            p.differing_weights.to_string(),
            p.total_weights.to_string(),
            format!("{:.3e}", s.min),
            format!("{:.3e}", s.q1),
            format!("{:.3e}", s.median),
            format!("{:.3e}", s.q3),
            format!("{:.3e}", s.max),
            p.nan_dropped.to_string(),
            if p.failed { "1" } else { "0" }.to_string(),
        ]);
        rows.push(p);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn corrupted_run_diverges_from_error_free() {
        let pre = Prebaked::new(Budget::smoke());
        let reference = error_free_weights(&pre);
        let p = propagation_for(&pre, LayerRole::First, &reference);
        assert!(p.differing_weights > 0, "injection must leave a trace");
        assert!(p.summary.is_some());
        assert!(p.summary.unwrap().max > 0.0);
    }
}
