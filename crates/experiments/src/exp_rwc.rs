//! Table V — model sensitivity to a single bit-flip (RWC: "restarted with
//! no change in accuracy").
//!
//! Protocol (Section V-C1): deterministic training makes the error-free
//! resumed trajectory exactly reproducible; a trial corrupts the restart
//! checkpoint with ONE bit-flip (exponent MSB excluded so nothing
//! collapses), resumes, and compares the final accuracy against the
//! deterministic baseline. Equality means the flip was fully absorbed.

use crate::adaptive::{AdaptiveCell, StoppingRule};
use crate::runner::{CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// One Table V cell.
#[derive(Debug, Clone)]
pub struct RwcCell {
    /// Framework column.
    pub framework: FrameworkKind,
    /// Model row.
    pub model: ModelKind,
    /// Trainings run.
    pub trainings: usize,
    /// Restarts with no change in accuracy.
    pub rwc: usize,
    /// Percentage.
    pub pct: f64,
    /// Largest absolute accuracy deviation seen among changed restarts.
    pub max_deviation: f64,
    /// Trials that failed to complete (excluded from RWC/deviation).
    pub failed: usize,
}

/// Declare one cell's trials for the scheduler. The deterministic
/// baseline accuracy is precomputed here (sequentially, before the pool
/// dispatches) so trial closures never train a baseline mid-pool.
pub fn rwc_plan<'p>(
    pre: &'p Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    trials: usize,
) -> CellPlan<'p> {
    pre.baseline_final_accuracy(model, Dtype::F64);
    let pristine = pre.checkpoint_shared(fw, model, Dtype::F64);
    CellPlan::new("rwc", "rwc", fw, model, trials, move |_, seed| {
        let mut ck = (*pristine).clone();
        let cfg = CorrupterConfig::bit_flips(1, Precision::Fp64, seed);
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        let out = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?;
        let outcome = TrialOutcome::ok().with_collapsed(out.collapsed()).with_counters(
            report.injections,
            report.nan_redraws,
            report.skipped,
        );
        Ok(match out.final_accuracy() {
            Some(acc) => outcome.with_accuracy(acc),
            None => outcome, // collapsed (cannot happen with MSB excluded)
        })
    })
}

/// Fold one cell's scheduler outcomes into the table cell.
fn rwc_assemble(
    pre: &Prebaked,
    fw: FrameworkKind,
    model: ModelKind,
    outcomes: &[TrialOutcome],
) -> RwcCell {
    let baseline = pre.baseline_final_accuracy(model, Dtype::F64);
    let trials = outcomes.len();
    // Deviations are derived here, not stored: the deterministic baseline
    // is recomputable and a collapsed trial's deviation is infinite, which
    // the manifest cannot hold. Failed trials carry no accuracy and are
    // excluded — counting them as infinite deviation would conflate a
    // harness fault with a model-sensitivity result.
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let results: Vec<(bool, f64)> = outcomes
        .iter()
        .filter(|o| !o.is_failed())
        .map(|o| match o.final_accuracy {
            Some(acc) => (acc == baseline, (acc - baseline).abs()),
            None => (false, f64::INFINITY),
        })
        .collect();
    let rwc = results.iter().filter(|(same, _)| *same).count();
    let max_deviation = results.iter().map(|(_, d)| *d).fold(0.0, f64::max);
    RwcCell {
        framework: fw,
        model,
        trainings: trials,
        rwc,
        pct: percent(rwc, trials),
        max_deviation,
        failed,
    }
}

/// Measure one cell.
pub fn rwc_cell(pre: &Prebaked, fw: FrameworkKind, model: ModelKind, trials: usize) -> RwcCell {
    let plan = rwc_plan(pre, fw, model, trials);
    let outcomes = pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    rwc_assemble(pre, fw, model, &outcomes)
}

/// Full Table V: all nine cells through one scheduler pool.
pub fn table5(pre: &Prebaked) -> (Vec<RwcCell>, TextTable) {
    let trials = pre.budget().trials;
    let mut specs = Vec::new();
    for model in ModelKind::all() {
        for fw in FrameworkKind::all() {
            specs.push((model, fw));
        }
    }
    let plans: Vec<CellPlan<'_>> =
        specs.iter().map(|&(model, fw)| rwc_plan(pre, fw, model, trials)).collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table =
        TextTable::new(&["Model", "Trainings", "Framework", "RWC", "%", "MaxDev", "Failed"]);
    for (&(model, fw), outcomes) in specs.iter().zip(&pooled) {
        let cell = rwc_assemble(pre, fw, model, outcomes);
        table.row(vec![
            model.id().to_string(),
            trials.to_string(),
            fw.display().to_string(),
            cell.rwc.to_string(),
            pct(cell.pct),
            format!("{:.4}", cell.max_deviation),
            cell.failed.to_string(),
        ]);
        cells.push(cell);
    }
    (cells, table)
}

/// Table V under sequential stopping: each cell samples until its RWC-rate
/// interval reaches the rule's target width. The classifier counts a
/// non-failed trial as a success iff its final accuracy exactly equals the
/// deterministic baseline (a collapsed resume — no accuracy at all — is a
/// non-RWC observation, not an exclusion).
pub fn table5_adaptive(pre: &Prebaked, rule: StoppingRule) -> (Vec<RwcCell>, TextTable) {
    let mut specs = Vec::new();
    for model in ModelKind::all() {
        for fw in FrameworkKind::all() {
            specs.push((model, fw));
        }
    }
    let cells: Vec<AdaptiveCell<'_>> = specs
        .iter()
        .map(|&(model, fw)| {
            let baseline = pre.baseline_final_accuracy(model, Dtype::F64);
            let plan = rwc_plan(pre, fw, model, rule.max_trials);
            AdaptiveCell::new(plan, rule, move |o: &TrialOutcome| {
                if o.is_failed() {
                    None
                } else {
                    Some(o.final_accuracy == Some(baseline))
                }
            })
        })
        .collect();
    let results = pre.run_adaptive(&cells);

    let mut out = Vec::new();
    let mut table =
        TextTable::new(&["Model", "Trainings", "Framework", "RWC", "%", "MaxDev", "Failed"]);
    for (&(model, fw), result) in specs.iter().zip(&results) {
        let cell = rwc_assemble(pre, fw, model, &result.outcomes);
        table.row(vec![
            model.id().to_string(),
            cell.trainings.to_string(),
            fw.display().to_string(),
            cell.rwc.to_string(),
            pct(cell.pct),
            format!("{:.4}", cell.max_deviation),
            cell.failed.to_string(),
        ]);
        out.push(cell);
    }
    (out, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn zero_flips_is_always_rwc() {
        // Determinism sanity: resuming the pristine checkpoint twice gives
        // exactly the baseline accuracy.
        let pre = Prebaked::new(Budget::smoke());
        let baseline = pre.baseline_final_accuracy(ModelKind::AlexNet, Dtype::F64);
        let ck = pre.checkpoint(FrameworkKind::PyTorch, ModelKind::AlexNet, Dtype::F64);
        let out =
            pre.resume(FrameworkKind::PyTorch, ModelKind::AlexNet, &ck, pre.budget().resume_epochs);
        assert_eq!(out.final_accuracy().unwrap(), baseline);
    }

    #[test]
    fn single_flip_mostly_absorbed_and_never_catastrophic() {
        let pre = Prebaked::new(Budget::smoke());
        let cell = rwc_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 6);
        // Paper Table V: 46-98.8% RWC; and the non-RWC cases "only
        // correspond to minor changes in accuracy without degradation".
        assert!(cell.max_deviation < 0.5, "deviation {}", cell.max_deviation);
        assert!(cell.pct >= 0.0);
    }
}
