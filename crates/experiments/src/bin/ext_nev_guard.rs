//! Extension: N-EV detection/repair makes DL training "virtually
//! unbreakable" (paper Section VI-1).

use sefi_core::RepairPolicy;
use sefi_experiments::{budget_from_args, exp_guard, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Extension — NevGuard vs Table IV corruption (Chainer/AlexNet)");
    println!("budget: {} ({} trainings/cell, paired arms)\n", budget.name, budget.trials);
    let pre = Prebaked::new(budget);
    for repair in [RepairPolicy::Zero, RepairPolicy::ClampTo(10.0)] {
        println!("repair policy: {repair:?}");
        let (cells, table) = exp_guard::guard_table(&pre, repair);
        println!("{}", table.render());
        println!(
            "virtually unbreakable (0 guarded collapses): {}\n",
            exp_guard::virtually_unbreakable(&cells)
        );
    }
}
