//! Extension: N-EV detection/repair makes DL training "virtually
//! unbreakable" (paper Section VI-1).

use sefi_core::RepairPolicy;
use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_guard, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Extension — NevGuard vs Table IV corruption (Chainer/AlexNet)");
    println!("budget: {} ({} trainings/cell, paired arms)\n", budget.name, budget.trials);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("guard"))
        .expect("results directory is writable");
    let _phase = pre.phase("guard");
    for repair in [RepairPolicy::Zero, RepairPolicy::ClampTo(10.0)] {
        println!("repair policy: {repair:?}");
        let (cells, table) = exp_guard::guard_table(&pre, repair);
        println!("{}", table.render());
        println!(
            "virtually unbreakable (0 guarded collapses): {}\n",
            exp_guard::virtually_unbreakable(&cells)
        );
    }

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
