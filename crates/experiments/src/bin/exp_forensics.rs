//! Forensics sweep: single file-byte flips over a v2 checkpoint with and
//! without an ECC parity sidecar, classified masked / detected /
//! corrected / silent.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_forensics, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Checkpoint forensics — ECC-corrected loads vs the plain sectioned format");
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("forensics"))
        .expect("results directory is writable");
    println!("budget: {} ({} flips/cell)\n", budget.name, exp_forensics::flips_per_cell(&pre));
    let _phase = pre.phase("forensics");
    let (rows, table) = exp_forensics::forensics_table(&pre);
    println!("{}", table.render());
    println!(
        "ecc loader corrects every payload flip: {}",
        exp_forensics::ecc_corrects_every_payload_flip(&rows)
    );
    println!(
        "plain trusting loader is all-silent: {}",
        exp_forensics::plain_trusting_all_silent(&rows)
    );
    println!("all outcome classes observed: {}", exp_forensics::all_classes_observed(&rows));
    println!("corrected rate: {}", exp_forensics::corrected_summary(&rows));
    let _ = std::fs::write(pre.results_file("forensics.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("forensics.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
