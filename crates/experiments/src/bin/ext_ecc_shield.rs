//! Extension: SEC-DED ECC on checkpoints vs the paper's error models.
//!
//! Table V studies single bit-flips (the dominant real SDC); Table VI
//! studies multi-bit DRAM masks and closes by motivating "more robust
//! error detection and correction systems". This binary quantifies both
//! against an extended-Hamming(72,64) parity sidecar (`sefi-ecc`):
//! single flips are always repaired (checkpoint byte-identical to the
//! original), while the paper's 3–6-bit masks defeat correction — even-
//! weight masks are detected-uncorrectable, odd-weight masks alias into
//! miscorrections.

use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, InjectionAmount, LocationSelection};
use sefi_ecc::EccShield;
use sefi_experiments::{budget_from_args, combo_seed, table::TextTable, Prebaked};
use sefi_float::{BitMask, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Extension — SEC-DED checkpoint protection (Chainer/AlexNet)");
    println!("budget: {} ({} trials/row)\n", budget.name, budget.trials);
    let pre = Prebaked::new(budget);
    let pristine = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);
    let shield = EccShield::protect(&pristine);
    let trials = budget.trials;

    let mut table = TextTable::new(&[
        "Error model",
        "Trials",
        "Fully repaired",
        "Detected uncorrectable",
        "Miscorrected",
    ]);

    // Row set 1: single bit-flips (1 and 10 per checkpoint).
    for flips in [1u64, 10] {
        let (mut repaired, mut detected, mut miscorrected) = (0, 0, 0);
        for trial in 0..trials {
            let mut ck = pristine.clone();
            let cfg = CorrupterConfig::bit_flips_full_range(
                flips,
                Precision::Fp64,
                combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "ecc-flip", trial) ^ flips,
            );
            Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
            let report = shield.verify_and_repair(&mut ck).unwrap();
            if ck.to_bytes() == pristine.to_bytes() {
                repaired += 1;
            } else if report.uncorrectable() > 0 {
                detected += 1;
            } else {
                miscorrected += 1;
            }
        }
        table.row(vec![
            format!("{flips} random bit-flip(s)"),
            trials.to_string(),
            repaired.to_string(),
            detected.to_string(),
            miscorrected.to_string(),
        ]);
    }

    // Row set 2: the paper's multi-bit masks, 10 weights each (Table VI).
    for (bits, mask) in sefi_experiments::exp_masks::MASKS {
        let (mut repaired, mut detected, mut miscorrected) = (0, 0, 0);
        for trial in 0..trials {
            let mut ck = pristine.clone();
            let cfg = CorrupterConfig {
                injection_probability: 1.0,
                amount: InjectionAmount::Count(10),
                float_precision: Precision::Fp64,
                mode: CorruptionMode::BitMask(BitMask::parse(mask).unwrap()),
                allow_nan_values: true,
                locations: LocationSelection::AllRandom,
                seed: combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, mask, trial),
            };
            Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
            let report = shield.verify_and_repair(&mut ck).unwrap();
            if ck.to_bytes() == pristine.to_bytes() {
                repaired += 1;
            } else if report.uncorrectable() > 0 {
                detected += 1;
            } else {
                miscorrected += 1;
            }
        }
        table.row(vec![
            format!("mask {mask} ({bits} bits) x10"),
            trials.to_string(),
            repaired.to_string(),
            detected.to_string(),
            miscorrected.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "single flips repaired exactly; multi-bit masks defeat SEC-DED — the paper's\n\
         motivation for stronger codes (its refs [44]-[46]) reproduced."
    );
}
