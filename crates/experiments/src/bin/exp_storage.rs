//! Storage-level sweep: single file-byte flips over a v2 checkpoint,
//! classified masked / detected / silent per structural region, under a
//! verified (CRC-checking) and a trusting (checksum-free) loader.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_storage, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Storage soft errors — single-bit file flips vs the sectioned v2 format");
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("storage"))
        .expect("results directory is writable");
    println!(
        "budget: {} ({} flips/region; loaders: (v)erified, (t)rusting)\n",
        budget.name,
        exp_storage::flips_per_region(&pre)
    );
    let _phase = pre.phase("storage");
    let (rows, table) = exp_storage::storage_table(&pre);
    println!("{}", table.render());
    println!(
        "verified loader detects every flip: {}",
        exp_storage::verified_loader_detects_everything(&rows)
    );
    println!("all outcome classes observed: {}", exp_storage::all_classes_observed(&rows));
    println!("trusting-loader SDC rate: {}", exp_storage::sdc_summary(&rows));
    let _ = std::fs::write(pre.results_file("storage.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("storage.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
