//! Regenerates Figure 5: equivalent injection replayed on PyTorch and
//! TensorFlow from Chainer logs.

use sefi_experiments::{
    budget_from_args, campaign_config_from_args, exp_curves, exp_equivalent, exp_layers, Prebaked,
};
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Figure 5 — equivalent injection in PyTorch and TensorFlow (AlexNet)");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig5"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig5");
    // Generate the Chainer logs (the Figure 4 protocol).
    let (_, logs) = exp_layers::figure4(&pre);
    for (fw, series) in exp_equivalent::figure5(&pre, &logs) {
        let panel = exp_curves::Panel { framework: fw, model: ModelKind::AlexNet, series };
        let t = exp_curves::render_panel(&panel);
        println!(
            "panel: {} (no degradation vs error-free: {})",
            fw.display(),
            exp_curves::no_degradation(&panel, 0.10)
        );
        println!("{}", t.render());
        println!("{}", sefi_experiments::chart::render_chart(&panel.series));
        let name = pre.results_file(&format!("fig5_{}.csv", fw.id()));
        let _ = std::fs::write(&name, t.to_csv());
        println!("wrote {}\n", name.display());
    }

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
