//! Regenerates Table VI: multi-bit DRAM-study masks applied to ResNet50.

use sefi_experiments::{budget_from_args, exp_masks, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table VI — multi-bit mask corruption of ResNet50");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::new(budget);
    let (_, table) = exp_masks::table6(&pre);
    println!("{}", table.render());
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/table6.csv", table.to_csv());
    println!("wrote results/table6.csv");
}
