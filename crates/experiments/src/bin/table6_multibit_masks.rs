//! Regenerates Table VI: multi-bit DRAM-study masks applied to ResNet50.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_masks, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table VI — multi-bit mask corruption of ResNet50");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("table6"))
        .expect("results directory is writable");
    let _phase = pre.phase("table6");
    let (_, table) = exp_masks::table6(&pre);
    println!("{}", table.render());
    let _ = std::fs::write(pre.results_file("table6.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("table6.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
