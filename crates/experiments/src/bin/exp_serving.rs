//! Served-accuracy sweep: payload bit flips per replica checkpoint vs
//! what a guarded two-replica serving pool actually answers, classified
//! masked / recovered / detected / silent against the clean pool.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_serving, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Serving soft errors — guarded replica pool vs corrupted checkpoint files");
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("serving"))
        .expect("results directory is writable");
    println!(
        "budget: {} ({} trials/rate; {} replicas, {} requests, batch {})\n",
        budget.name,
        exp_serving::trials_per_rate(&pre),
        exp_serving::REPLICAS,
        exp_serving::CORPUS,
        exp_serving::BATCH,
    );
    let _phase = pre.phase("serving");
    let (rows, table) = exp_serving::serving_table(&pre);
    println!("{}", table.render());
    println!("rate-0 pool all masked: {}", exp_serving::rate_zero_all_masked(&rows));
    println!("guards fire at max rate: {}", exp_serving::guards_fire_at_max_rate(&rows));
    println!("no request lost: {}", exp_serving::no_request_lost(&rows));
    let recovered = rows
        .iter()
        .map(|r| {
            format!("{} {}%", r.rate, sefi_experiments::table::pct(exp_serving::recovered_rate(r)))
        })
        .collect::<Vec<_>>()
        .join(", ");
    println!("recovered-trial rate by flips/replica: {recovered}");
    let _ = std::fs::write(pre.results_file("serving.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("serving.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
