//! Regenerates Figure 2 / Section V-B1: which bit ranges collapse training.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_bitranges, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 2 — bit ranges that collapse a neural network (Chainer/AlexNet)");
    println!(
        "budget: {} ({} trainings/range, 1000 flips each)\n",
        budget.name, budget.fig2_trainings
    );
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig2"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig2");
    let (rows, table) = exp_bitranges::figure2(&pre);
    println!("{}", table.render());
    println!(
        "collapse occurs only when the range includes exponent MSB (bit 62): {}",
        exp_bitranges::collapse_only_with_critical_bit(&rows)
    );
    let _ = std::fs::write(pre.results_file("fig2.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("fig2.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
