//! Regenerates Figure 2 / Section V-B1: which bit ranges collapse training.

use sefi_experiments::{budget_from_args, exp_bitranges, CampaignConfig, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 2 — bit ranges that collapse a neural network (Chainer/AlexNet)");
    println!(
        "budget: {} ({} trainings/range, 1000 flips each)\n",
        budget.name, budget.fig2_trainings
    );
    let pre = Prebaked::with_campaign(budget, CampaignConfig::new("fig2"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig2");
    let (rows, table) = exp_bitranges::figure2(&pre);
    println!("{}", table.render());
    println!(
        "collapse occurs only when the range includes exponent MSB (bit 62): {}",
        exp_bitranges::collapse_only_with_critical_bit(&rows)
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig2.csv", table.to_csv());
    println!("wrote results/fig2.csv");

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
