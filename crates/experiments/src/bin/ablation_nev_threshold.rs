//! Ablation: sensitivity of the N-EV definition to the extreme-value
//! threshold (DESIGN.md §4.6).
//!
//! The paper defines extreme values operationally ("so large that it
//! causes a neural network to collapse") without a number. Our default
//! threshold is 1e30. This binary reruns a Table IV column under
//! thresholds from 1e10 to 1e300 to show the measured N-EV rate is
//! insensitive across many orders of magnitude — corrupted weights are
//! either ~benign or astronomically large, with almost nothing in between
//! (a direct consequence of exponent-bit arithmetic).

use sefi_core::{Corrupter, CorrupterConfig};
use sefi_experiments::{budget_from_args, combo_seed, table::TextTable, Prebaked};
use sefi_float::{NevPolicy, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Ablation — N-EV extreme-value threshold (Chainer/AlexNet, 100 flips)");
    println!("budget: {} ({} checkpoints/threshold)\n", budget.name, budget.trials);
    let pre = Prebaked::new(budget);
    let pristine = pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, Dtype::F64);

    // Pre-generate corrupted checkpoints once; classify under each policy.
    let corrupted: Vec<_> = (0..budget.trials)
        .map(|trial| {
            let mut ck = pristine.clone();
            let cfg = CorrupterConfig::bit_flips_full_range(
                100,
                Precision::Fp64,
                combo_seed(FrameworkKind::Chainer, ModelKind::AlexNet, "thr", trial),
            );

            Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap()
        })
        .collect();

    let mut table =
        TextTable::new(&["Threshold", "Checkpoints with N-EV", "%", "Mean N-EV values/ckpt"]);
    for exp in [10, 20, 30, 50, 100, 200, 300] {
        let policy = NevPolicy::with_threshold(10f64.powi(exp));
        let with_nev = corrupted.iter().filter(|r| r.produced_nev(&policy)).count();
        let mean: f64 = corrupted.iter().map(|r| r.nev_count(&policy) as f64).sum::<f64>()
            / corrupted.len().max(1) as f64;
        table.row(vec![
            format!("1e{exp}"),
            with_nev.to_string(),
            format!("{:.1}", 100.0 * with_nev as f64 / corrupted.len().max(1) as f64),
            format!("{mean:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "rates are flat across thresholds spanning hundreds of orders of magnitude:\n\
         a flipped exponent MSB lands the value ~2^512 away from its origin, so any\n\
         threshold in between classifies it identically."
    );
}
