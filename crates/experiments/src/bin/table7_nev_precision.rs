//! Regenerates Table VII: N-EV incidence at 16- and 32-bit precision.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_nev, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table VII — N-EV incidence at 16/32-bit precision (Chainer)");
    println!("budget: {} ({} trainings/cell)\n", budget.name, budget.trials);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("table7"))
        .expect("results directory is writable");
    let _phase = pre.phase("table7");
    let (cells, table) = exp_nev::table7(&pre);
    println!("{}", table.render());
    println!(
        "ascending N-EV pattern with bit-flip count: {}",
        exp_nev::ascending_pattern_holds(&cells)
    );
    let _ = std::fs::write(pre.results_file("table7.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("table7.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
