//! Runs every table and figure in sequence (the full campaign).
//!
//! Each phase below submits *all* of its cells as one plan to the
//! work-stealing trial scheduler ([`Prebaked::run_plan`]): the table
//! builders declare every `(cell, trial)` pair up front, the pool claims
//! trials grain-1 off a shared cursor, and outcomes are scattered back
//! per cell in trial-index order. There is no barrier between the cells
//! of a phase — a long AlexNet cell no longer idles the cores that
//! finished their LeNet cells. Trial seeds derive from
//! `(framework, model, cell, trial)` alone, so tables are byte-identical
//! at any `RAYON_NUM_THREADS`.
//!
//! The campaign records telemetry under `results/telemetry.jsonl` and a
//! per-experiment completed-trial manifest under
//! `results/<experiment>/manifest.jsonl`. Kill it at any point and re-run:
//! completed trials are served from the manifest and only the missing ones
//! execute, reproducing byte-identical tables.

use sefi_experiments::*;
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("=== full experimental campaign, budget: {} ===\n", budget.name);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("all-experiments"))
        .expect("results directory is writable");

    {
        let _phase = pre.phase("fig2");
        let (rows, t) = exp_bitranges::figure2(&pre);
        println!("--- Figure 2: bit ranges ---\n{}", t.render());
        println!(
            "collapse only with critical bit: {}\n",
            exp_bitranges::collapse_only_with_critical_bit(&rows)
        );
        let _ = std::fs::write(pre.results_file("fig2.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("table4");
        let (cells, t) = exp_nev::table4(&pre);
        println!("--- Table IV: N-EV incidence (64-bit) ---\n{}", t.render());
        println!("ascending pattern: {}\n", exp_nev::ascending_pattern_holds(&cells));
        let _ = std::fs::write(pre.results_file("table4.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("table5");
        let (_, t) = exp_rwc::table5(&pre);
        println!("--- Table V: RWC under 1 bit-flip ---\n{}", t.render());
        let _ = std::fs::write(pre.results_file("table5.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("fig3");
        for panel in exp_curves::figure3(&pre) {
            let t = exp_curves::render_panel(&panel);
            println!(
                "--- Figure 3 panel {} / {} ---\n{}",
                panel.framework.display(),
                panel.model.id(),
                t.render()
            );
            let _ = std::fs::write(
                pre.results_file(&format!(
                    "fig3_{}_{}.csv",
                    panel.framework.id(),
                    panel.model.id()
                )),
                t.to_csv(),
            );
        }
    }

    let logs = {
        let _phase = pre.phase("fig4");
        let (series, logs) = exp_layers::figure4(&pre);
        let panel = exp_curves::Panel {
            framework: FrameworkKind::Chainer,
            model: ModelKind::AlexNet,
            series,
        };
        let t = exp_curves::render_panel(&panel);
        println!("--- Figure 4: per-layer injection (Chainer/AlexNet) ---\n{}", t.render());
        let _ = std::fs::write(pre.results_file("fig4.csv"), t.to_csv());
        logs
    };

    {
        let _phase = pre.phase("fig5");
        for (fw, series) in exp_equivalent::figure5(&pre, &logs) {
            let panel = exp_curves::Panel { framework: fw, model: ModelKind::AlexNet, series };
            let t = exp_curves::render_panel(&panel);
            println!("--- Figure 5 panel {} ---\n{}", fw.display(), t.render());
            let _ = std::fs::write(pre.results_file(&format!("fig5_{}.csv", fw.id())), t.to_csv());
        }
    }

    {
        let _phase = pre.phase("table6");
        let (_, t) = exp_masks::table6(&pre);
        println!("--- Table VI: multi-bit masks (ResNet50) ---\n{}", t.render());
        let _ = std::fs::write(pre.results_file("table6.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("table7");
        let (cells, t) = exp_nev::table7(&pre);
        println!("--- Table VII: N-EV at 16/32-bit (Chainer) ---\n{}", t.render());
        println!("ascending pattern: {}\n", exp_nev::ascending_pattern_holds(&cells));
        let _ = std::fs::write(pre.results_file("table7.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("table8");
        let (_, t) = exp_predict::table8(&pre);
        println!("--- Table VIII: prediction under corruption (Chainer) ---\n{}", t.render());
        let _ = std::fs::write(pre.results_file("table8.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("fig6");
        let (_, t) = exp_propagation::figure6(&pre);
        println!("--- Figure 6: error propagation (TensorFlow/AlexNet) ---\n{}", t.render());
        let _ = std::fs::write(pre.results_file("fig6.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("fig7");
        let (cells, baseline, t) = exp_heatmap::figure7(&pre);
        println!("--- Figure 7: scaling-factor heat map (Chainer/ResNet50) ---");
        println!("baseline accuracy: {baseline:.3}\n{}", t.render());
        println!("monotone damage: {}\n", exp_heatmap::monotone_damage(&cells));
        let _ = std::fs::write(pre.results_file("fig7.csv"), t.to_csv());
    }

    {
        let _phase = pre.phase("storage");
        let (rows, t) = exp_storage::storage_table(&pre);
        println!("--- Storage: file-byte flips vs the v2 container ---\n{}", t.render());
        println!(
            "verified loader detects every flip: {}\n",
            exp_storage::verified_loader_detects_everything(&rows)
        );
        let _ = std::fs::write(pre.results_file("storage.csv"), t.to_csv());
    }

    if let Some(summary) = pre.finish_campaign() {
        println!("--- campaign summary ---\n{summary}");
    }
    println!("=== campaign complete; CSVs in results/ ===");
}
